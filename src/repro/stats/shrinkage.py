"""Covariance shrinkage for short time series.

With ``M`` interval samples of ``N`` counters and ``M`` not much larger
than ``N`` (short profiling runs), the sample covariance is noisy or
outright singular; confidence regions built from it can be degenerate in
spuriously-precise directions. Ledoit–Wolf-style shrinkage toward the
diagonal target fixes the conditioning while preserving the dominant
correlation structure CounterPoint exploits::

    Sigma* = (1 - delta) * S + delta * diag(S)

with ``delta`` estimated from the data (or supplied). This is an
implementation of the standard Ledoit–Wolf estimator specialised to the
diagonal target.
"""

import numpy as np

from repro.errors import StatsError


def ledoit_wolf_delta(samples):
    """Estimate the shrinkage intensity toward the diagonal target.

    Returns ``delta`` in [0, 1]: the ratio of the summed sampling
    variance of the off-diagonal covariance entries to their summed
    squared magnitude (clipped).
    """
    matrix = np.asarray(samples, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise StatsError("shrinkage needs an M x N matrix with M >= 2")
    m, n = matrix.shape
    if n < 2:
        return 0.0
    centered = matrix - matrix.mean(axis=0)
    sample_cov = centered.T @ centered / m

    # phi: sampling variance of each covariance entry.
    phi_matrix = np.zeros((n, n))
    for t in range(m):
        outer = np.outer(centered[t], centered[t])
        phi_matrix += (outer - sample_cov) ** 2
    phi_matrix /= m * m

    off_diagonal = ~np.eye(n, dtype=bool)
    phi = float(phi_matrix[off_diagonal].sum())
    gamma = float((sample_cov[off_diagonal] ** 2).sum())
    if gamma <= 0:
        return 1.0
    return float(np.clip(phi / gamma, 0.0, 1.0))


def shrink_covariance(samples, delta=None):
    """Shrunk covariance estimate (unbiased scale, ddof=1 equivalent).

    Parameters
    ----------
    samples:
        ``M x N`` sample matrix.
    delta:
        Shrinkage intensity; estimated via :func:`ledoit_wolf_delta`
        when ``None``.

    Returns
    -------
    ``(covariance, delta)``.
    """
    matrix = np.asarray(samples, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise StatsError("shrinkage needs an M x N matrix with M >= 2")
    if delta is None:
        delta = ledoit_wolf_delta(matrix)
    if not 0.0 <= delta <= 1.0:
        raise StatsError("shrinkage delta must be in [0, 1], got %r" % (delta,))
    sample_cov = np.cov(matrix, rowvar=False, ddof=1).reshape(
        matrix.shape[1], matrix.shape[1]
    )
    target = np.diag(np.diag(sample_cov))
    return (1.0 - delta) * sample_cov + delta * target, delta
