"""Statistics for noisy HEC measurements (Section 4 of the paper).

Multiplexing makes HEC observations approximate; CounterPoint treats
each program execution as a set of time-interval samples and summarises
them as a *counter confidence region* — a confidence ellipsoid of the
sample mean, approximated by its PCA-aligned bounding box so it can be
encoded in a linear program.

* :mod:`repro.stats.chi2` — the chi-square quantile function, written
  from scratch (regularised incomplete gamma + bracketed Newton) and
  cross-checked against scipy in the test suite,
* :mod:`repro.stats.covariance` — sample mean / covariance / Pearson
  correlation over time-series sample matrices,
* :mod:`repro.stats.confidence` — :class:`ConfidenceRegion`
  (correlated, the paper's contribution) and the independent-counter
  baseline it is compared against (Figure 3d).
"""

from repro.stats.chi2 import chi2_quantile, gammainc_lower_regularized
from repro.stats.covariance import (
    pearson_correlation_matrix,
    sample_covariance,
    sample_mean,
)
from repro.stats.confidence import ConfidenceRegion, PointRegion
from repro.stats.shrinkage import ledoit_wolf_delta, shrink_covariance

__all__ = [
    "ConfidenceRegion",
    "PointRegion",
    "chi2_quantile",
    "gammainc_lower_regularized",
    "ledoit_wolf_delta",
    "pearson_correlation_matrix",
    "sample_covariance",
    "sample_mean",
    "shrink_covariance",
]
