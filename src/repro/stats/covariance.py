"""Sample statistics over HEC time-series sample matrices.

A measurement run produces ``M`` interval samples of ``N`` counters —
an ``M x N`` matrix (rows are time slices, columns are counters,
mirroring what ``perf stat -I`` emits). These helpers compute the
summary statistics the confidence-region construction needs, plus the
Pearson correlation matrix used for the paper's Section 7.1 claim that
HECs are highly correlated.
"""

import numpy as np

from repro.errors import StatsError


def _as_sample_matrix(samples):
    matrix = np.asarray(samples, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise StatsError("samples must be a 2-D matrix (M samples x N counters)")
    if matrix.shape[0] < 2:
        raise StatsError(
            "need at least 2 samples to estimate covariance, got %d" % matrix.shape[0]
        )
    return matrix


def sample_mean(samples):
    """Column means of the sample matrix (the HEC vector ``Y-bar``)."""
    return _as_sample_matrix(samples).mean(axis=0)


def sample_covariance(samples):
    """Unbiased (``ddof=1``) sample covariance matrix ``Sigma_Y``.

    The *sample-mean* covariance the confidence region needs is the
    plug-in estimate ``Sigma_Y / M`` (Section 4); that division happens
    in :class:`repro.stats.ConfidenceRegion`.
    """
    matrix = _as_sample_matrix(samples)
    return np.cov(matrix, rowvar=False, ddof=1).reshape(
        matrix.shape[1], matrix.shape[1]
    )


def pearson_correlation_matrix(samples):
    """Pearson correlation coefficients between counter pairs.

    Constant columns (zero variance) correlate as 0 with everything and
    1 with themselves, rather than propagating NaNs.
    """
    matrix = _as_sample_matrix(samples)
    n = matrix.shape[1]
    covariance = sample_covariance(samples)
    stddev = np.sqrt(np.diag(covariance))
    correlation = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            if stddev[i] == 0 or stddev[j] == 0:
                value = 0.0
            else:
                value = covariance[i, j] / (stddev[i] * stddev[j])
                value = float(np.clip(value, -1.0, 1.0))
            correlation[i, j] = value
            correlation[j, i] = value
    return correlation


def highly_correlated_fraction(samples, threshold=0.9):
    """Fraction of distinct counter pairs with ``|r| > threshold``.

    Reproduces the paper's Section 7.1 statistic ("over 25% of counter
    pairs have a Pearson correlation coefficient that exceeds 0.9").
    """
    correlation = pearson_correlation_matrix(samples)
    n = correlation.shape[0]
    if n < 2:
        raise StatsError("need at least 2 counters to correlate")
    pairs = 0
    hot = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            if abs(correlation[i, j]) > threshold:
                hot += 1
    return hot / pairs
