"""Counter confidence regions (Section 4, Figure 5c).

The sample mean of interval samples is approximately Gaussian (CLT), so
the set of plausible true counter vectors is a confidence ellipsoid
determined by the sample mean and the sample-mean covariance::

    { v : (v - mean)^T  Sigma_mean^{-1}  (v - mean) <= chi2_{N, conf} }

The ellipsoid cannot be encoded in a linear program, so CounterPoint
approximates it by its bounding box aligned with the ellipsoid's
principal axes: for each unit eigenvector ``e_k`` with eigenvalue
``lambda_k`` of ``Sigma_mean``,

    | e_k . (v - mean) |  <=  sqrt( lambda_k * chi2_{N, conf} ).

:class:`ConfidenceRegion` implements both the **correlated** construction
(the paper's contribution — eigenvectors of the full covariance) and the
**independent** baseline (diagonal covariance, axis-aligned box) that it
is compared against in Figure 3d and Section 7.1.
"""

import numpy as np

from repro.errors import StatsError
from repro.stats.chi2 import chi2_quantile
from repro.stats.covariance import sample_covariance, sample_mean


class ConfidenceRegion:
    """A PCA-aligned bounding box of the sample-mean confidence ellipsoid.

    Build with :meth:`from_samples` (the normal route) or directly from
    a mean vector and sample-mean covariance matrix.
    """

    def __init__(self, mean, mean_covariance, confidence=0.99, correlated=True):
        mean = np.asarray(mean, dtype=float)
        covariance = np.asarray(mean_covariance, dtype=float)
        if mean.ndim != 1:
            raise StatsError("mean must be a vector")
        n = mean.shape[0]
        if covariance.shape != (n, n):
            raise StatsError(
                "covariance shape %r does not match %d counters"
                % (covariance.shape, n)
            )
        if not 0.0 < confidence < 1.0:
            raise StatsError("confidence must be in (0, 1)")
        self.mean = mean
        self.confidence = confidence
        self.correlated = correlated
        if correlated:
            working = (covariance + covariance.T) / 2.0
        else:
            working = np.diag(np.diag(covariance))
        eigenvalues, eigenvectors = np.linalg.eigh(working)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        self.eigenvalues = eigenvalues
        self.eigenvectors = eigenvectors  # columns are unit eigenvectors
        scale = chi2_quantile(confidence, n)
        self.half_lengths = np.sqrt(eigenvalues * scale)

    @classmethod
    def from_samples(cls, samples, confidence=0.99, correlated=True, shrinkage=None):
        """Build from an ``M x N`` time-series sample matrix.

        Uses the plug-in sample-mean covariance ``Sigma_Y / M``.
        ``shrinkage`` optionally regularises the covariance toward its
        diagonal: ``"auto"`` estimates the Ledoit–Wolf intensity, a
        float in [0, 1] fixes it (useful when M is not much larger than
        the counter count).
        """
        samples = np.asarray(samples, dtype=float)
        mean = sample_mean(samples)
        if shrinkage is None:
            covariance = sample_covariance(samples)
        else:
            from repro.stats.shrinkage import shrink_covariance

            delta = None if shrinkage == "auto" else float(shrinkage)
            covariance, _ = shrink_covariance(samples, delta=delta)
        covariance = covariance / samples.shape[0]
        return cls(mean, covariance, confidence=confidence, correlated=correlated)

    # -- protocol used by the feasibility layer ---------------------------
    @property
    def dim(self):
        return self.mean.shape[0]

    def center(self):
        """The region's centre (the sample mean)."""
        return [float(value) for value in self.mean]

    def box_constraints(self):
        """Yield ``(direction, lower, upper)`` triples: for each
        principal direction ``e``, ``lower <= e . v <= upper``."""
        for k in range(self.dim):
            direction = self.eigenvectors[:, k]
            projection = float(direction @ self.mean)
            half = float(self.half_lengths[k])
            yield [float(value) for value in direction], projection - half, projection + half

    # -- conveniences ------------------------------------------------------
    def contains(self, point):
        """Whether ``point`` lies within the bounding box."""
        point = np.asarray(point, dtype=float)
        if point.shape != self.mean.shape:
            raise StatsError("point dimension mismatch")
        for direction, lower, upper in self.box_constraints():
            value = float(np.dot(direction, point))
            if value < lower - 1e-12 or value > upper + 1e-12:
                return False
        return True

    def volume(self):
        """Box volume — the tightness proxy used to compare correlated
        vs independent regions (smaller is tighter)."""
        return float(np.prod(2.0 * self.half_lengths))

    def __repr__(self):
        return "ConfidenceRegion(dim=%d, confidence=%.3g, correlated=%r)" % (
            self.dim,
            self.confidence,
            self.correlated,
        )


class PointRegion:
    """A degenerate region for noise-free observations.

    Lets exact simulator counts flow through the same region-based
    feasibility API used for noisy measurements.
    """

    def __init__(self, point):
        self.point = [float(value) for value in point]

    @property
    def dim(self):
        return len(self.point)

    def center(self):
        return list(self.point)

    def box_constraints(self):
        for k in range(self.dim):
            direction = [1.0 if i == k else 0.0 for i in range(self.dim)]
            value = self.point[k]
            yield direction, value, value

    def contains(self, point):
        return all(abs(a - b) < 1e-12 for a, b in zip(self.point, point))

    def __repr__(self):
        return "PointRegion(dim=%d)" % (self.dim,)
