"""Chi-square quantiles from first principles.

The confidence-region construction needs the chi-square quantile
``chi2_quantile(confidence, dof)`` (the paper's ``chi^2_{N, alpha}``).
We implement it from scratch — the regularised lower incomplete gamma
function via its series and continued-fraction expansions (the classic
`gammp` construction) and quantile inversion by a bisection-safeguarded
Newton iteration — and cross-check against ``scipy.stats.chi2.ppf`` in
the test suite.
"""

import math

from repro.errors import StatsError

_MAX_ITERATIONS = 500
_EPSILON = 3.0e-15


def _gamma_series(a, x):
    """Series representation of the regularised lower incomplete gamma."""
    gln = math.lgamma(a)
    term = 1.0 / a
    total = term
    ap = a
    for _ in range(_MAX_ITERATIONS):
        ap += 1.0
        term *= x / ap
        total += term
        if abs(term) < abs(total) * _EPSILON:
            return total * math.exp(-x + a * math.log(x) - gln)
    raise StatsError("gamma series failed to converge (a=%r, x=%r)" % (a, x))


def _gamma_continued_fraction(a, x):
    """Continued-fraction representation of the regularised *upper*
    incomplete gamma (modified Lentz)."""
    gln = math.lgamma(a)
    tiny = 1.0e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            return h * math.exp(-x + a * math.log(x) - gln)
    raise StatsError("gamma continued fraction failed to converge (a=%r, x=%r)" % (a, x))


def gammainc_lower_regularized(a, x):
    """Regularised lower incomplete gamma ``P(a, x)`` for ``a > 0``."""
    if a <= 0:
        raise StatsError("gammainc requires a > 0, got %r" % (a,))
    if x < 0:
        raise StatsError("gammainc requires x >= 0, got %r" % (x,))
    if x == 0:
        return 0.0
    if x < a + 1.0:
        return _gamma_series(a, x)
    return 1.0 - _gamma_continued_fraction(a, x)


def chi2_cdf(x, dof):
    """CDF of the chi-square distribution with ``dof`` degrees of freedom."""
    if dof <= 0:
        raise StatsError("chi2 dof must be positive, got %r" % (dof,))
    if x <= 0:
        return 0.0
    return gammainc_lower_regularized(dof / 2.0, x / 2.0)


def chi2_pdf(x, dof):
    """Density of the chi-square distribution (used by Newton steps)."""
    if x <= 0:
        return 0.0
    half = dof / 2.0
    return math.exp(
        (half - 1.0) * math.log(x) - x / 2.0 - half * math.log(2.0) - math.lgamma(half)
    )


def chi2_quantile(confidence, dof):
    """Quantile ``x`` with ``P(chi2_dof <= x) == confidence``.

    Uses the Wilson–Hilferty approximation as a starting point and a
    bisection-safeguarded Newton iteration on the CDF.
    """
    if not 0.0 < confidence < 1.0:
        raise StatsError("confidence must be in (0, 1), got %r" % (confidence,))
    if dof <= 0:
        raise StatsError("chi2 dof must be positive, got %r" % (dof,))

    # Wilson–Hilferty initial guess.
    z = _normal_quantile(confidence)
    guess = dof * (1.0 - 2.0 / (9.0 * dof) + z * math.sqrt(2.0 / (9.0 * dof))) ** 3
    guess = max(guess, 1e-10)

    # Bracket the root.
    low, high = 0.0, max(guess * 2.0, 1.0)
    for _ in range(200):
        if chi2_cdf(high, dof) >= confidence:
            break
        high *= 2.0
    else:
        raise StatsError("failed to bracket chi2 quantile")

    x = min(max(guess, low + 1e-12), high)
    for _ in range(100):
        cdf = chi2_cdf(x, dof)
        error = cdf - confidence
        if abs(error) < 1e-13:
            return x
        if error > 0:
            high = x
        else:
            low = x
        pdf = chi2_pdf(x, dof)
        if pdf > 0:
            step = x - error / pdf
        else:
            step = (low + high) / 2.0
        if not low < step < high:
            step = (low + high) / 2.0
        x = step
    return x


def _normal_quantile(p):
    """Standard normal quantile (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise StatsError("normal quantile requires p in (0, 1)")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
