"""Exact matrix and vector operations over :class:`fractions.Fraction`.

All functions are pure: they never mutate their arguments. Matrices are
lists of rows; each row is a list of :class:`~fractions.Fraction`. The
module is deliberately free of numpy so that every result is exact.

The hot entry points :func:`rank` and :func:`solve` are conversion shims
over the integer fast path in :mod:`repro.linalg.intkernel`: rows are
normalised to gcd-reduced int tuples (a positive rational row scaling,
which preserves rank and solution sets) and eliminated fraction-free
with the Bareiss scheme. Results are bit-for-bit identical to the
Fraction reference implementations (:func:`rref` and friends), which
remain here both as the specification and for the equivalence tests.
"""

from fractions import Fraction

from repro.errors import LinalgError
from repro.linalg.intkernel import (
    as_int_rows,
    bareiss_rank,
    bareiss_rref,
    bareiss_solve,
    int_row,
)


def as_fraction_vector(values):
    """Convert an iterable of numbers into a list of Fractions.

    Floats are converted *exactly*: ``Fraction(float)`` reproduces the
    binary value bit for bit (``Fraction(0.1)`` is
    ``3602879701896397/36028797018963968``, not ``1/10``). This is
    deliberate — confidence-region bounds computed in floating point are
    fed into the exact LP solver, and the verdict must be an exact
    consequence of the numbers actually measured, not of a prettier
    decimal re-reading. Callers that *want* decimal semantics should
    pass ``Fraction(str(x))`` themselves.
    """
    return [value if isinstance(value, Fraction) else Fraction(value) for value in values]


def as_fraction_matrix(rows):
    """Convert an iterable of row iterables into a Fraction matrix.

    Raises :class:`LinalgError` if the rows are ragged.
    """
    matrix = [as_fraction_vector(row) for row in rows]
    if matrix:
        width = len(matrix[0])
        for row in matrix:
            if len(row) != width:
                raise LinalgError("ragged matrix: expected width %d, got %d" % (width, len(row)))
    return matrix


def identity(n):
    """Return the ``n``-by-``n`` identity matrix."""
    return [[Fraction(1) if i == j else Fraction(0) for j in range(n)] for i in range(n)]


def transpose(matrix):
    """Return the transpose of ``matrix``."""
    if not matrix:
        return []
    return [list(column) for column in zip(*matrix)]


def dot(u, v):
    """Exact dot product of two equal-length vectors."""
    if len(u) != len(v):
        raise LinalgError("dot: length mismatch (%d vs %d)" % (len(u), len(v)))
    return sum((a * b for a, b in zip(u, v)), Fraction(0))


def vector_sub(u, v):
    """Return ``u - v`` elementwise."""
    if len(u) != len(v):
        raise LinalgError("vector_sub: length mismatch (%d vs %d)" % (len(u), len(v)))
    return [a - b for a, b in zip(u, v)]


def matvec(matrix, vector):
    """Exact matrix-vector product."""
    return [dot(row, vector) for row in matrix]


def matmul(a, b):
    """Exact matrix-matrix product."""
    if a and b and len(a[0]) != len(b):
        raise LinalgError("matmul: inner dimension mismatch (%d vs %d)" % (len(a[0]), len(b)))
    bt = transpose(b)
    return [[dot(row, col) for col in bt] for row in a]


def is_zero_vector(vector):
    """True if every component is zero."""
    return all(value == 0 for value in vector)


def rref(matrix):
    """Reduced row echelon form.

    Returns a pair ``(reduced, pivot_columns)`` where ``reduced`` is a new
    matrix in RREF and ``pivot_columns`` lists the column index of each
    pivot in row order. Zero rows sink to the bottom of ``reduced``.
    """
    reduced = [list(row) for row in as_fraction_matrix(matrix)]
    if not reduced:
        return [], []
    n_rows = len(reduced)
    n_cols = len(reduced[0])
    pivot_columns = []
    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        # Find a row at or below pivot_row with a nonzero entry in col.
        target = None
        for row in range(pivot_row, n_rows):
            if reduced[row][col] != 0:
                target = row
                break
        if target is None:
            continue
        reduced[pivot_row], reduced[target] = reduced[target], reduced[pivot_row]
        pivot_value = reduced[pivot_row][col]
        reduced[pivot_row] = [entry / pivot_value for entry in reduced[pivot_row]]
        for row in range(n_rows):
            if row != pivot_row and reduced[row][col] != 0:
                factor = reduced[row][col]
                reduced[row] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(reduced[row], reduced[pivot_row])
                ]
        pivot_columns.append(col)
        pivot_row += 1
    return reduced, pivot_columns


def rref_fast(matrix):
    """Reduced row echelon form via the fraction-free integer kernel.

    Output is identical to :func:`rref` (RREF is invariant under the row
    scaling the kernel applies), computed without intermediate Fraction
    arithmetic.
    """
    return bareiss_rref(as_int_rows(matrix))


def rank(matrix):
    """Exact rank of ``matrix``.

    Routed through the fraction-free integer kernel
    (:func:`repro.linalg.intkernel.bareiss_rank`); equivalent to (but
    much faster than) counting the pivots of :func:`rref`.
    """
    return bareiss_rank(as_int_rows(matrix))


def row_space_basis(matrix):
    """Return a basis (list of vectors) for the row space of ``matrix``.

    The basis vectors are the nonzero rows of the RREF, so they are in a
    canonical form: comparisons between row spaces can be done by
    comparing bases directly.
    """
    reduced, pivots = rref_fast(matrix)
    return [row for row in reduced[: len(pivots)]]


def nullspace(matrix):
    """Return a basis for the (right) nullspace of ``matrix``.

    Each basis vector ``v`` satisfies ``matrix @ v == 0`` exactly. The
    basis is produced by the standard free-variable construction from the
    RREF, so it is canonical for a given input.
    """
    reduced, pivots = rref_fast(matrix)
    if not reduced:
        return []
    n_cols = len(reduced[0])
    pivot_set = set(pivots)
    free_columns = [col for col in range(n_cols) if col not in pivot_set]
    basis = []
    for free in free_columns:
        vector = [Fraction(0)] * n_cols
        vector[free] = Fraction(1)
        for row_index, pivot_col in enumerate(pivots):
            vector[pivot_col] = -reduced[row_index][free]
        basis.append(vector)
    return basis


def solve(matrix, rhs):
    """Solve ``matrix @ x == rhs`` exactly for square, nonsingular systems.

    Raises :class:`LinalgError` when the system is singular or the shapes
    do not match.
    """
    matrix = [list(row) for row in matrix]
    rhs = list(rhs)
    n = len(matrix)
    if n == 0:
        return []
    if len(matrix[0]) != n:
        raise LinalgError("solve: matrix must be square")
    if len(rhs) != n:
        raise LinalgError("solve: rhs length %d does not match matrix size %d" % (len(rhs), n))
    # Scaling each augmented row to coprime integers preserves the
    # solution set; the Bareiss kernel then solves fraction-free.
    augmented = as_int_rows(
        list(row) + [value] for row, value in zip(matrix, rhs)
    )
    return bareiss_solve(augmented)


def scale_to_integers(vector):
    """Scale a rational vector by a positive rational so all entries are
    coprime plain ints.

    The zero vector maps to a zero vector. The sign of the vector is
    preserved: only a *positive* multiple is applied, so halfspace
    normals keep their orientation. Float entries are taken at their
    exact binary value (via ``Fraction(float)``, which is lossless), so
    the scaling loses no precision — but note that e.g. ``0.1`` scales
    by its true denominator ``2**55``, not by 10; convert through
    ``Fraction(str(x))`` first if decimal semantics are intended.
    """
    return list(int_row(vector))


def normalize_integer_vector(vector):
    """Canonical form of a direction vector: integer, coprime entries and
    the first nonzero entry positive.

    Used for deduplicating counter signatures and facet normals. Unlike
    :func:`scale_to_integers`, this may flip the sign, so it must only be
    used where direction-up-to-sign is the identity of interest.
    """
    scaled = scale_to_integers(vector)
    for value in scaled:
        if value > 0:
            return scaled
        if value < 0:
            return [-entry for entry in scaled]
    return scaled
