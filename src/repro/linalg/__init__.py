"""Exact rational linear algebra over :class:`fractions.Fraction`.

The constraint-deduction pipeline of CounterPoint (Section 6 of the paper)
requires *exact* arithmetic: counter signatures are small integer vectors,
and the paper notes that standard floating-point methods (e.g. QR
factorisation) are ill-conditioned for deducing equality constraints and
facets. This subpackage provides the small exact toolkit the rest of the
library builds on:

* :func:`rref` — reduced row echelon form with pivot bookkeeping,
* :func:`rank`, :func:`nullspace`, :func:`row_space_basis`,
* :func:`solve` — exact solution of square systems,
* assorted vector helpers (:func:`dot`, :func:`normalize_integer_vector`).

Matrices are plain lists of lists of :class:`~fractions.Fraction`; vectors
are lists of Fractions. This keeps the data model transparent and avoids
any dependency on numpy for the exact path.

:mod:`repro.linalg.intkernel` is the integer fast path underneath
:func:`rank` and :func:`solve`: rows gcd-normalised to int tuples and
eliminated fraction-free (Bareiss), exploiting Python's
arbitrary-precision ints. The Fraction implementations remain the
reference; both produce identical exact results.
"""

from repro.linalg.intkernel import (
    as_int_rows,
    bareiss_rank,
    bareiss_rref,
    bareiss_solve,
    int_dot,
    int_row,
)
from repro.linalg.matrix import (
    as_fraction_matrix,
    as_fraction_vector,
    dot,
    identity,
    is_zero_vector,
    matmul,
    matvec,
    normalize_integer_vector,
    nullspace,
    rank,
    row_space_basis,
    rref,
    rref_fast,
    scale_to_integers,
    solve,
    transpose,
    vector_sub,
)

__all__ = [
    "as_fraction_matrix",
    "as_fraction_vector",
    "as_int_rows",
    "bareiss_rank",
    "bareiss_rref",
    "bareiss_solve",
    "int_dot",
    "int_row",
    "dot",
    "identity",
    "is_zero_vector",
    "matmul",
    "matvec",
    "normalize_integer_vector",
    "nullspace",
    "rank",
    "row_space_basis",
    "rref",
    "rref_fast",
    "scale_to_integers",
    "solve",
    "transpose",
    "vector_sub",
]
