"""Fraction-free integer linear-algebra kernels (Bareiss elimination).

The exact pipeline's hot operations — rank tests inside the double
description method, solves for simplicial rays and facet lifting — do
not need :class:`~fractions.Fraction` arithmetic at all: every row of a
rational matrix can be scaled by a positive rational into coprime
integers without changing its rank, nullspace, or (for augmented
systems) solution set. Plain Python ints are arbitrary precision, so the
scaled computation stays exact while avoiding per-operation Fraction
object allocation and gcd normalisation — in practice 10-50× cheaper.

The kernels here implement fraction-free Gaussian elimination in the
Bareiss form: the two-step determinant identity guarantees every interior
division is exact, so intermediate entries stay integers and grow only
linearly in bit length (instead of exponentially, as naive integer
cross-multiplication would).

:mod:`repro.linalg.matrix` keeps the Fraction-based implementations
(`rref` and friends) as the reference path; its public ``rank`` and
``solve`` route through these kernels via conversion shims, so callers
are untouched.
"""

from fractions import Fraction
from math import gcd

from repro.errors import LinalgError


def int_row(values):
    """Normalise one row of numbers to a gcd-reduced tuple of ints.

    The row is multiplied by the positive LCM of its denominators and
    divided by the positive GCD of the results, so the returned tuple is
    a *positive* rational multiple of the input: signs and direction are
    preserved exactly. Floats pass through ``Fraction(float)``, which is
    lossless (the binary expansion, not the decimal literal).
    """
    ints = []
    exact = True
    for value in values:
        if isinstance(value, int):
            ints.append(value)
        elif isinstance(value, Fraction) and value.denominator == 1:
            ints.append(value.numerator)
        else:
            exact = False
            break
    if not exact:
        fracs = [
            value if isinstance(value, Fraction) else Fraction(value)
            for value in values
        ]
        lcm = 1
        for value in fracs:
            d = value.denominator
            lcm = lcm * d // gcd(lcm, d)
        ints = [int(value * lcm) for value in fracs]
    common = 0
    for value in ints:
        common = gcd(common, value)
    if common > 1:
        ints = [value // common for value in ints]
    return tuple(ints)


def as_int_rows(rows):
    """Row-normalise a matrix to gcd-reduced int tuples.

    Row scaling preserves rank and nullspace, so the result is a valid
    stand-in for the original in the Bareiss kernels. Raises
    :class:`LinalgError` on ragged input.
    """
    normalized = [int_row(row) for row in rows]
    if normalized:
        width = len(normalized[0])
        for row in normalized:
            if len(row) != width:
                raise LinalgError(
                    "ragged matrix: expected width %d, got %d" % (width, len(row))
                )
    return normalized


def bareiss_rank(int_rows):
    """Exact rank of an integer matrix by fraction-free elimination.

    Every division is exact (Bareiss two-step identity), so the
    computation never leaves the integers.
    """
    matrix = [list(row) for row in int_rows]
    if not matrix:
        return 0
    n_rows = len(matrix)
    n_cols = len(matrix[0])
    row = 0
    prev = 1
    for col in range(n_cols):
        if row >= n_rows:
            break
        pivot_row = None
        for r in range(row, n_rows):
            if matrix[r][col]:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        if pivot_row != row:
            matrix[row], matrix[pivot_row] = matrix[pivot_row], matrix[row]
        pivot = matrix[row][col]
        base = matrix[row]
        for r in range(row + 1, n_rows):
            target = matrix[r]
            factor = target[col]
            if factor:
                for c in range(col + 1, n_cols):
                    target[c] = (pivot * target[c] - factor * base[c]) // prev
                target[col] = 0
            else:
                # The pivot multiplication applies to zero-factor rows
                # too — the Bareiss exact-division invariant (entries are
                # minors of the original matrix) depends on it.
                for c in range(col + 1, n_cols):
                    target[c] = (pivot * target[c]) // prev
        prev = pivot
        row += 1
    return row


def bareiss_solve(int_augmented):
    """Solve the square system encoded by an ``n x (n+1)`` integer
    augmented matrix ``[A | b]`` exactly.

    Forward elimination is fraction-free (Bareiss); back substitution
    produces :class:`~fractions.Fraction` results identical to the
    RREF-based reference solver. Raises :class:`LinalgError` when the
    system is singular.
    """
    matrix = [list(row) for row in int_augmented]
    n = len(matrix)
    if n == 0:
        return []
    if any(len(row) != n + 1 for row in matrix):
        raise LinalgError("bareiss_solve expects an n x (n+1) augmented matrix")
    prev = 1
    for col in range(n):
        pivot_row = None
        for r in range(col, n):
            if matrix[r][col]:
                pivot_row = r
                break
        if pivot_row is None:
            raise LinalgError("solve: singular or inconsistent system")
        if pivot_row != col:
            matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        pivot = matrix[col][col]
        base = matrix[col]
        for r in range(col + 1, n):
            target = matrix[r]
            factor = target[col]
            if factor:
                for c in range(col + 1, n + 1):
                    target[c] = (pivot * target[c] - factor * base[c]) // prev
                target[col] = 0
            else:
                for c in range(col + 1, n + 1):
                    target[c] = (pivot * target[c]) // prev
        prev = pivot
    solution = [Fraction(0)] * n
    for i in range(n - 1, -1, -1):
        accumulated = Fraction(matrix[i][n])
        for j in range(i + 1, n):
            if matrix[i][j]:
                accumulated -= matrix[i][j] * solution[j]
        solution[i] = accumulated / matrix[i][i]
    return solution


def bareiss_rref(int_rows):
    """Reduced row echelon form of an integer matrix, fraction-free.

    One-pass fraction-free Gauss-Jordan (Bareiss one-step): rows above
    *and* below the pivot are cross-eliminated with exact integer
    division by the previous pivot. On completion every pivot entry
    equals the final pivot value, so the rational RREF is obtained by a
    single division per entry at the end.

    Returns ``(reduced, pivot_columns)`` exactly like
    :func:`repro.linalg.matrix.rref` (zero rows sink to the bottom);
    since RREF is invariant under row scaling, feeding gcd-normalised
    rows produces the RREF of the original matrix.
    """
    matrix = [list(row) for row in int_rows]
    if not matrix:
        return [], []
    n_rows = len(matrix)
    n_cols = len(matrix[0])
    pivots = []
    pivot_row = 0
    prev = 1
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        target = None
        for r in range(pivot_row, n_rows):
            if matrix[r][col]:
                target = r
                break
        if target is None:
            continue
        if target != pivot_row:
            matrix[pivot_row], matrix[target] = matrix[target], matrix[pivot_row]
        pivot = matrix[pivot_row][col]
        base = matrix[pivot_row]
        for r in range(n_rows):
            if r == pivot_row:
                continue
            row = matrix[r]
            factor = row[col]
            if factor:
                for c in range(n_cols):
                    if c != col:
                        row[c] = (pivot * row[c] - factor * base[c]) // prev
                row[col] = 0
            else:
                for c in range(n_cols):
                    if c != col:
                        row[c] = (pivot * row[c]) // prev
        prev = pivot
        pivots.append(col)
        pivot_row += 1
    n_pivots = len(pivots)
    reduced = [
        [Fraction(value, prev) for value in matrix[r]] for r in range(n_pivots)
    ]
    zero_row = [Fraction(0)] * n_cols
    reduced.extend(list(zero_row) for _ in range(n_rows - n_pivots))
    return reduced, pivots


def int_dot(u, v):
    """Plain integer dot product (no length check — hot path)."""
    total = 0
    for a, b in zip(u, v):
        total += a * b
    return total


__all__ = [
    "as_int_rows",
    "bareiss_rank",
    "bareiss_solve",
    "int_dot",
    "int_row",
]
