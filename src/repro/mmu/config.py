"""MMU configuration: geometry and feature toggles."""

from repro.errors import ConfigurationError


class PageSize:
    """Symbolic page sizes with their byte widths and walk depths."""

    SIZE_4K = "4k"
    SIZE_2M = "2m"
    SIZE_1G = "1g"

    BYTES = {SIZE_4K: 4 * 1024, SIZE_2M: 2 * 1024 * 1024, SIZE_1G: 1024 * 1024 * 1024}

    # Number of page-table levels a *full* walk reads for each size:
    # 4K: PML4E, PDPTE, PDE, PTE -> 4 loads; 2M stops at the PDE (3);
    # 1G stops at the PDPTE (2).
    FULL_WALK_REFS = {SIZE_4K: 4, SIZE_2M: 3, SIZE_1G: 2}

    @classmethod
    def validate(cls, page_size):
        if page_size not in cls.BYTES:
            raise ConfigurationError("unknown page size %r" % (page_size,))
        return page_size


PAGE_SIZES = (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G)


class MMUConfig:
    """Geometry and feature set of the simulated MMU.

    The default configuration is "full Haswell" — every feature the
    paper discovered is enabled. Feature toggles exist so ablation
    experiments can generate counterfactual hardware.

    Parameters (features)
    ---------------------
    prefetcher:
        LSQ-side TLB prefetcher (Section 7.1, "Address translation
        prefetchers").
    merging:
        MSHR-based page-table-walk merging ("Page table walk merging").
    early_psc:
        Paging-structure caches probed before MSHR allocation / walk
        start (the pipelining discovery). When disabled, merged requests
        skip the PDE cache and only walk-starting requests probe it.
    pml4e_cache:
        Root-level MMU cache ("Root-level MMU cache").
    walk_replay:
        Walk replays: a speculative walk that finds the leaf accessed
        bit unset is replayed non-speculatively at retirement, so it
        completes without visible ``walk_ref`` accesses ("Page table
        walk replays" / the m-series Walk Bypass feature, Appendix C.4).
    """

    def __init__(
        self,
        # geometry
        l1_tlb_entries_4k=64,
        l1_tlb_ways_4k=4,
        l1_tlb_entries_2m=32,
        l1_tlb_ways_2m=4,
        l1_tlb_entries_1g=4,
        l1_tlb_ways_1g=4,
        stlb_entries=1024,
        stlb_ways=8,
        pde_cache_entries=32,
        pdpte_cache_entries=16,
        pml4e_cache_entries=4,
        walk_latency_ops=12,
        mshr_entries=8,
        # features
        prefetcher=True,
        merging=True,
        early_psc=True,
        pml4e_cache=True,
        walk_replay=True,
        smt_enabled=False,
        seed=0,
    ):
        values = {
            "l1_tlb_entries_4k": l1_tlb_entries_4k,
            "stlb_entries": stlb_entries,
            "pde_cache_entries": pde_cache_entries,
            "pdpte_cache_entries": pdpte_cache_entries,
            "walk_latency_ops": walk_latency_ops,
            "mshr_entries": mshr_entries,
        }
        for name, value in values.items():
            if value <= 0:
                raise ConfigurationError("%s must be positive, got %r" % (name, value))
        if pml4e_cache and pml4e_cache_entries <= 0:
            raise ConfigurationError("pml4e_cache enabled with no entries")

        self.l1_tlb_entries_4k = l1_tlb_entries_4k
        self.l1_tlb_ways_4k = l1_tlb_ways_4k
        self.l1_tlb_entries_2m = l1_tlb_entries_2m
        self.l1_tlb_ways_2m = l1_tlb_ways_2m
        self.l1_tlb_entries_1g = l1_tlb_entries_1g
        self.l1_tlb_ways_1g = l1_tlb_ways_1g
        self.stlb_entries = stlb_entries
        self.stlb_ways = stlb_ways
        self.pde_cache_entries = pde_cache_entries
        self.pdpte_cache_entries = pdpte_cache_entries
        self.pml4e_cache_entries = pml4e_cache_entries
        self.walk_latency_ops = walk_latency_ops
        self.mshr_entries = mshr_entries

        self.prefetcher = prefetcher
        self.merging = merging
        self.early_psc = early_psc
        self.pml4e_cache = pml4e_cache
        self.walk_replay = walk_replay
        # SMT triggers the HSD29/HSM30 mem_uops_retired overcount errata
        # (see repro.counters.errata); the paper's setup disables it.
        self.smt_enabled = smt_enabled
        self.seed = seed

    @classmethod
    def full_haswell(cls, **overrides):
        """The ground-truth configuration used for dataset generation."""
        return cls(**overrides)

    @classmethod
    def textbook(cls, **overrides):
        """The conventional-wisdom MMU (model m0's feature set): no
        prefetcher, no merging, late PSC probe, no root cache, no
        replays."""
        options = dict(
            prefetcher=False,
            merging=False,
            early_psc=False,
            pml4e_cache=False,
            walk_replay=False,
        )
        options.update(overrides)
        return cls(**options)

    def feature_set(self):
        """The Table 3 feature vector of this configuration."""
        return {
            "TlbPf": self.prefetcher,
            "EarlyPsc": self.early_psc,
            "Merging": self.merging,
            "Pml4eCache": self.pml4e_cache,
            "WalkBypass": self.walk_replay,
        }

    def __repr__(self):
        flags = ", ".join(
            "%s=%s" % (key, "on" if value else "off")
            for key, value in self.feature_set().items()
        )
        return "MMUConfig(%s)" % flags
