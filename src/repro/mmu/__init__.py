"""The Haswell data-side MMU simulator — the "hardware" substrate.

The paper measures a real Intel Haswell Xeon; this subpackage is the
substitution: a µop-granularity functional simulator implementing the
feature set the paper reverse-engineers, emitting ground-truth values
for all 26 Table 2 HECs. Because feasibility testing is exact, what
matters is that the *counting semantics* of each mechanism match the
paper's discovered behaviour:

* two-level TLB hierarchy (per-page-size L1 DTLB arrays + shared STLB),
* four-level page table with 4 KB / 2 MB / 1 GB pages and accessed bits,
* paging-structure caches: PDE cache, PDPTE cache and the discovered
  root-level PML4E cache,
* a page-table walker whose PTE loads traverse a real cache hierarchy
  (producing ``walk_ref.{l1,l2,l3,mem}``),
* MSHR-based page-table-walk merging, with the PDE cache probed *before*
  MSHR allocation (the paper's pipelining discovery),
* an LSQ-side TLB prefetcher triggered by consecutive loads to cache
  lines 51/52 (ascending) or 8/7 (descending) before a predicted page
  boundary; prefetch-induced walks inject real walker loads and abort on
  PTE accessed bits that are unset,
* walk replays ("walk bypassing"): some walks complete without visible
  walker references.

Every feature is individually toggleable (:class:`MMUConfig`) so
ablation benchmarks can compare against feature-less baselines.
"""

from repro.mmu.config import MMUConfig, PAGE_SIZES, PageSize
from repro.mmu.core import MemoryOp, MMUSimulator
from repro.mmu.ablation import (
    config_without,
    counter_delta,
    feature_ablations,
    run_ablations,
)

__all__ = [
    "MMUConfig",
    "MMUSimulator",
    "MemoryOp",
    "PAGE_SIZES",
    "PageSize",
    "config_without",
    "counter_delta",
    "feature_ablations",
    "run_ablations",
]
