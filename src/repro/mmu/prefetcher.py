"""The LSQ-side TLB prefetcher (Section 7.1 discovery).

The paper establishes that Haswell's MMU watches virtual page numbers in
the load/store queue — *before* any TLB lookup — and triggers a
translation prefetch when consecutive **load** accesses are predicted to
cross a page boundary:

* ascending addresses: consecutive accesses to cache lines 51 then 52 of
  the final 4 KB frame of a page trigger a prefetch for the next page;
* descending addresses: lines 8 then 7 of the first frame trigger a
  prefetch for the previous page;
* no other line pairs trigger.

The prefetch is resolved by the page-table walker (injecting real walker
loads) and aborts when the target PTE's accessed bit is unset.
:class:`PrefetchTrigger` detects trigger conditions; the walker-side
consequences live in :mod:`repro.mmu.core`.
"""

LINE_BYTES = 64
FRAME_BYTES = 4096
LINES_PER_FRAME = FRAME_BYTES // LINE_BYTES

ASCENDING_TRIGGER = (51, 52)
DESCENDING_TRIGGER = (8, 7)


class PrefetchTrigger:
    """Detects the load/store-queue trigger condition.

    ``observe(vaddr, page_bytes)`` is called for every *load* in program
    order and returns the virtual page number to prefetch (at the
    workload's page size), or ``None``.
    """

    def __init__(self):
        self._last_frame = None
        self._last_line = None
        self._last_triggered_target = None

    def observe(self, vaddr, page_bytes):
        frame = vaddr // FRAME_BYTES
        line = (vaddr % FRAME_BYTES) // LINE_BYTES
        previous_frame, previous_line = self._last_frame, self._last_line
        self._last_frame, self._last_line = frame, line

        if previous_frame != frame or previous_line is None:
            return None

        page = vaddr // page_bytes
        frames_per_page = page_bytes // FRAME_BYTES

        if (previous_line, line) == ASCENDING_TRIGGER:
            # Only the *last* frame of the page predicts a page crossing.
            if frame % frames_per_page != frames_per_page - 1:
                return None
            target = page + 1
        elif (previous_line, line) == DESCENDING_TRIGGER:
            if frame % frames_per_page != 0:
                return None
            target = page - 1
            if target < 0:
                return None
        else:
            return None

        if target == self._last_triggered_target:
            return None  # one prefetch per crossing prediction
        self._last_triggered_target = target
        return target

    def reset(self):
        self._last_frame = None
        self._last_line = None
        self._last_triggered_target = None
