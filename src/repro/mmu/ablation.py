"""Hardware-side ablations: counterfactual MMUs.

The paper ablates *models* against fixed hardware. The simulator
substrate also supports the converse — running the same workload on
feature-ablated *hardware* — which yields a powerful consistency check
of the whole methodology: data produced by hardware-without-feature-F
must be feasible for the model-without-F (and the counter deltas show
each feature's performance signature directly).

:func:`run_ablations` executes a workload across a set of configurations
and returns per-configuration counter totals; :func:`feature_ablations`
builds the standard one-feature-removed configuration set.
"""

from repro.errors import ConfigurationError
from repro.mmu.config import MMUConfig
from repro.mmu.core import MMUSimulator

_FEATURE_TO_OPTION = {
    "TlbPf": "prefetcher",
    "EarlyPsc": "early_psc",
    "Merging": "merging",
    "Pml4eCache": "pml4e_cache",
    "WalkBypass": "walk_replay",
}


def config_without(feature, **overrides):
    """Full-Haswell configuration with one Table 4 feature disabled."""
    option = _FEATURE_TO_OPTION.get(feature)
    if option is None:
        raise ConfigurationError("unknown ablatable feature %r" % (feature,))
    options = {option: False}
    options.update(overrides)
    return MMUConfig.full_haswell(**options)


def feature_ablations(**overrides):
    """``{label: MMUConfig}`` for full hardware plus each single-feature
    ablation."""
    configurations = {"full": MMUConfig.full_haswell(**overrides)}
    for feature in _FEATURE_TO_OPTION:
        configurations["no-%s" % feature] = config_without(feature, **overrides)
    return configurations


def run_ablations(workload, n_ops, configurations=None, page_size="4k"):
    """Run one workload across hardware configurations.

    Returns ``{label: counter_totals}``. Workload generators are
    deterministic, so differences between configurations are exactly the
    ablated feature's counter signature.
    """
    configurations = configurations or feature_ablations()
    results = {}
    for label, config in configurations.items():
        simulator = MMUSimulator(config, page_size=page_size)
        simulator.run(workload.ops(n_ops))
        results[label] = simulator.snapshot()
    return results


def counter_delta(baseline, variant):
    """Per-counter difference ``variant - baseline`` (non-zero only)."""
    return {
        name: variant[name] - baseline[name]
        for name in baseline
        if variant[name] != baseline[name]
    }
