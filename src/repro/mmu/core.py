"""The MMU simulator main loop and HEC emission.

:class:`MMUSimulator` processes a program-order stream of
:class:`MemoryOp` (loads/stores with virtual addresses and a
retires-or-not flag) and maintains ground-truth values for all 26
Table 2 HECs. See :mod:`repro.mmu` for the feature inventory and
:mod:`repro.counters.events` for counter semantics.

Counting semantics implemented here (aligned with the paper's final
feasible model m4 — the point of the reproduction is that these
mechanisms, not hand-tuned counts, produce the observation dataset):

* ``T.ret`` / ``T.ret_stlb_miss`` — incremented when a µop retires; STLB
  missers (walk initiators *and* merged waiters) count the latter.
* ``T.stlb_hit*`` — L1-TLB-miss, STLB-hit lookups, speculative included.
* ``T.pde$_miss`` — every PDE-cache probe that misses. With early PSC
  probing, merged and prefetch requests probe too — the mechanism behind
  ``pde$_miss > causes_walk``.
* ``T.causes_walk`` — demand translation requests that start a walk
  (merged requests and prefetches do not count).
* ``T.walk_done*`` — demand walks completing (replayed walks included;
  prefetch walks never count).
* ``walk_ref.*`` — page-walker loads classified by the data-cache level
  serving them; replayed walks emit none; prefetch-induced walker loads
  count (they are real pipeline loads).
"""

from repro.errors import SimulationError
from repro.cache import CacheHierarchy
from repro.counters.events import HASWELL_MMU_EVENTS
from repro.mmu.config import MMUConfig, PageSize
from repro.mmu.paging import PageTable, PagingStructureCache
from repro.mmu.prefetcher import PrefetchTrigger
from repro.mmu.tlb import L1DTLB, STLB


class MemoryOp:
    """One memory µop in program order."""

    __slots__ = ("kind", "vaddr", "retires")

    def __init__(self, kind, vaddr, retires=True):
        if kind not in ("load", "store"):
            raise SimulationError("MemoryOp kind must be 'load' or 'store'")
        if vaddr < 0:
            raise SimulationError("negative virtual address")
        self.kind = kind
        self.vaddr = vaddr
        self.retires = retires

    def __repr__(self):
        return "MemoryOp(%s, 0x%x, retires=%r)" % (self.kind, self.vaddr, self.retires)


class _OutstandingWalk:
    """An in-flight page-table walk held in an MSHR."""

    __slots__ = ("vpn", "completes_at", "initiator_kind", "page_size", "waiters", "replayed")

    def __init__(self, vpn, completes_at, initiator_kind, page_size, replayed):
        self.vpn = vpn
        self.completes_at = completes_at
        self.initiator_kind = initiator_kind
        self.page_size = page_size
        self.replayed = replayed
        # (kind, retires) per µop waiting on this walk, initiator first.
        self.waiters = []


class MMUSimulator:
    """Functional simulator of the Haswell data-side MMU.

    Parameters
    ----------
    config:
        :class:`MMUConfig`; defaults to full Haswell.
    page_size:
        Page size backing the workload's address space (one size per
        run, matching the paper's per-configuration experiments).
    cache_hierarchy:
        Optional pre-built :class:`CacheHierarchy` for walker loads.
    """

    def __init__(self, config=None, page_size=PageSize.SIZE_4K, cache_hierarchy=None):
        self.config = config or MMUConfig.full_haswell()
        self.page_size = PageSize.validate(page_size)
        self.page_table = PageTable(page_size)
        self.l1_tlb = L1DTLB(self.config)
        self.stlb = STLB(self.config)
        self.pde_cache = PagingStructureCache("pd", self.config.pde_cache_entries)
        self.pdpte_cache = PagingStructureCache("pdpt", self.config.pdpte_cache_entries)
        self.pml4e_cache = PagingStructureCache(
            "pml4", self.config.pml4e_cache_entries, enabled=self.config.pml4e_cache
        )
        self.caches = cache_hierarchy or CacheHierarchy()
        self.prefetch_trigger = PrefetchTrigger()

        self.tick = 0
        self._walk_count = 0
        self._smt_overcount = 0
        self._outstanding = {}  # vpn -> _OutstandingWalk
        self.counters = {event.name: 0 for event in HASWELL_MMU_EVENTS}

    # -- counter helpers ---------------------------------------------------
    def _incr(self, name, amount=1):
        self.counters[name] += amount

    def snapshot(self):
        """A copy of the cumulative counter values."""
        return dict(self.counters)

    # -- main loop -----------------------------------------------------------
    def access(self, op):
        """Process one µop in program order."""
        self.tick += 1
        self._complete_due_walks()

        if op.kind == "load" and self.config.prefetcher:
            target_vpn = self.prefetch_trigger.observe(
                op.vaddr, self.page_table.page_bytes
            )
            if target_vpn is not None:
                self._issue_prefetch(target_vpn)

        vpn = self.page_table.vpn(op.vaddr)
        if self.l1_tlb.lookup(vpn, self.page_size):
            self.page_table.set_accessed(vpn)
            self._retire(op.kind, op.retires, stlb_missed=False)
            return

        if self.stlb.lookup(vpn, self.page_size):
            self._incr("%s.stlb_hit" % op.kind)
            self._incr("%s.stlb_hit_%s" % (op.kind, self.page_size))
            self.l1_tlb.insert(vpn, self.page_size)
            self.page_table.set_accessed(vpn)
            self._retire(op.kind, op.retires, stlb_missed=False)
            return

        self._demand_translation(op, vpn)

    def run(self, ops):
        """Process an iterable of µops, then drain outstanding walks."""
        for op in ops:
            self.access(op)
        self.drain()

    def run_intervals(self, ops, ops_per_interval):
        """Process µops and yield per-interval counter deltas — the
        perf-style time series the analysis consumes.

        ``ops_per_interval`` is either a positive int (fixed-size
        intervals) or an iterable of positive ints (a schedule — e.g.
        fixed *wall-clock* intervals whose µop counts vary with the
        program's throughput phases). A finite schedule is cycled.
        """
        if isinstance(ops_per_interval, int):
            if ops_per_interval <= 0:
                raise SimulationError("ops_per_interval must be positive")
            schedule = [ops_per_interval]
        else:
            schedule = [int(size) for size in ops_per_interval]
            if not schedule or any(size <= 0 for size in schedule):
                raise SimulationError("interval schedule must be positive ints")
        previous = self.snapshot()
        in_interval = 0
        slot = 0
        target = schedule[0]
        for op in ops:
            self.access(op)
            in_interval += 1
            if in_interval == target:
                current = self.snapshot()
                yield {name: current[name] - previous[name] for name in current}
                previous = current
                in_interval = 0
                slot += 1
                target = schedule[slot % len(schedule)]
        self.drain()
        if in_interval:
            current = self.snapshot()
            yield {name: current[name] - previous[name] for name in current}

    def drain(self):
        """Complete every outstanding walk (end of program)."""
        while self._outstanding:
            self.tick += self.config.walk_latency_ops
            self._complete_due_walks()

    # -- demand translation ---------------------------------------------------
    def _demand_translation(self, op, vpn):
        kind = op.kind
        entry_level = None
        probed_early = False
        if self.config.early_psc:
            entry_level = self._probe_pscs(op.vaddr, kind)
            probed_early = True

        walk = self._outstanding.get(vpn)
        if walk is not None:
            if self.config.merging:
                walk.waiters.append((kind, op.retires))
                return
            # No MSHR merging: hardware would run a second, independent
            # walk. Complete the old one now so both are accounted.
            self._complete_walk(self._outstanding.pop(vpn))

        if not probed_early:
            entry_level = self._probe_pscs(op.vaddr, kind)

        self._start_walk(op.vaddr, vpn, kind, op.retires, entry_level)

    def _start_walk(self, vaddr, vpn, kind, retires, entry_level):
        self._incr("%s.causes_walk" % kind)
        self._walk_count += 1
        # Walk replay ("walk bypassing"): a speculative walk that finds
        # the leaf accessed bit unset must set it non-speculatively, so
        # the walk is replayed at retirement; the replay's references are
        # not captured by the walk_ref counters (Appendix C.4).
        replayed = self.config.walk_replay and not self.page_table.is_accessed(vpn)
        # Replayed walks still read the page table (non-speculatively, at
        # retirement) — they warm the caches and PSCs — but their loads
        # carry attributes the walk_ref counters do not capture.
        self._do_walk_references(vaddr, entry_level, count_refs=not replayed)
        if len(self._outstanding) >= self.config.mshr_entries:
            # MSHRs full: complete the oldest walk immediately.
            oldest_vpn = min(
                self._outstanding, key=lambda key: self._outstanding[key].completes_at
            )
            self._complete_walk(self._outstanding.pop(oldest_vpn))
        walk = _OutstandingWalk(
            vpn,
            self.tick + self.config.walk_latency_ops,
            kind,
            self.page_size,
            replayed,
        )
        walk.waiters.append((kind, retires))
        self._outstanding[vpn] = walk

    def _complete_due_walks(self):
        if not self._outstanding:
            return
        due = [vpn for vpn, walk in self._outstanding.items() if walk.completes_at <= self.tick]
        for vpn in due:
            self._complete_walk(self._outstanding.pop(vpn))

    def _complete_walk(self, walk):
        self._incr("%s.walk_done" % walk.initiator_kind)
        self._incr("%s.walk_done_%s" % (walk.initiator_kind, walk.page_size))
        self.page_table.set_accessed(walk.vpn)
        self.l1_tlb.insert(walk.vpn, walk.page_size)
        self.stlb.insert(walk.vpn, walk.page_size)
        for kind, retires in walk.waiters:
            self._retire(kind, retires, stlb_missed=True)

    def _retire(self, kind, retires, stlb_missed):
        if not retires:
            return
        self._incr("%s.ret" % kind)
        if stlb_missed:
            self._incr("%s.ret_stlb_miss" % kind)
            # Erratum HSD29/HSM30: with SMT enabled the
            # mem_uops_retired.stlb_miss_* events may overcount; the
            # corrupted data violates ret_stlb_miss <= ret, which every
            # µDD implies — the reason the paper disables SMT.
            if self.config.smt_enabled:
                self._smt_overcount += 1
                if self._smt_overcount % 4 == 0:
                    self._incr("%s.ret_stlb_miss" % kind)

    # -- paging-structure caches -------------------------------------------------
    def _probe_pscs(self, vaddr, attributed_kind):
        """Probe PSCs deepest-first; returns the entry level supplied by
        the deepest hit (``None`` = full walk). Always counts PDE-cache
        misses for the attributing access type."""
        pde_hit = self.pde_cache.lookup(vaddr, self.page_size)
        if not pde_hit:
            self._incr("%s.pde$_miss" % attributed_kind)
        if pde_hit:
            return "pd"
        if self.pdpte_cache.lookup(vaddr, self.page_size):
            return "pdpt"
        if self.pml4e_cache.lookup(vaddr, self.page_size):
            return "pml4"
        return None

    def _do_walk_references(self, vaddr, entry_level, count_refs=True):
        """Perform the walker's PTE loads and fill the PSCs.

        ``count_refs=False`` models replayed walks: the loads happen (and
        warm the cache hierarchy and PSCs) but are not visible to the
        ``walk_ref`` counters.
        """
        levels = self.page_table.walk_levels(entry_level)
        for level in levels:
            address = self.page_table.entry_address(level, vaddr)
            served_by = self.caches.access(address)
            if count_refs:
                self._incr("walk_ref.%s" % served_by)
        self._fill_pscs(vaddr, levels)

    def _fill_pscs(self, vaddr, levels_read):
        """Reading a non-leaf entry installs it in its PSC."""
        leaf = {
            PageSize.SIZE_4K: "pt",
            PageSize.SIZE_2M: "pd",
            PageSize.SIZE_1G: "pdpt",
        }[self.page_size]
        for level in levels_read:
            if level == leaf:
                continue
            if level == "pd":
                self.pde_cache.insert(vaddr)
            elif level == "pdpt":
                self.pdpte_cache.insert(vaddr)
            elif level == "pml4":
                self.pml4e_cache.insert(vaddr)

    # -- prefetch ------------------------------------------------------------------
    def _issue_prefetch(self, target_vpn):
        """A translation prefetch injected from the load/store queue.

        Probes the PSCs (misses attributed to loads — the triggering µop
        type), injects real walker loads, aborts on an unset accessed
        bit, and on success fills both TLB levels. Never increments
        ``causes_walk`` or ``walk_done``.
        """
        if self.l1_tlb.lookup(target_vpn, self.page_size) or self.stlb.lookup(
            target_vpn, self.page_size
        ):
            return
        if target_vpn in self._outstanding:
            return
        vaddr = target_vpn * self.page_table.page_bytes
        entry_level = self._probe_pscs(vaddr, "load")
        self._do_walk_references(vaddr, entry_level)
        if not self.page_table.is_accessed(target_vpn):
            return  # abort: accessed bit unset; no fill, no completion
        self.l1_tlb.insert(target_vpn, self.page_size)
        self.stlb.insert(target_vpn, self.page_size)
