"""TLB structures: per-page-size L1 DTLB arrays and the shared STLB.

Haswell's first-level data TLB has separate arrays per page size; the
second-level (shared) TLB holds 4 KB and 2 MB translations but not 1 GB
ones — 1 GB STLB lookups always miss and go straight to the walker,
which is why Table 2 has ``stlb_hit_4k``/``stlb_hit_2m`` counters but no
``stlb_hit_1g``.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.mmu.config import PageSize


class TLBArray:
    """A set-associative TLB for one page size (LRU replacement)."""

    def __init__(self, entries, ways, name="tlb"):
        if entries <= 0 or ways <= 0 or entries % ways != 0:
            raise ConfigurationError(
                "TLB %s: %d entries not divisible into %d ways" % (name, entries, ways)
            )
        self.name = name
        self.ways = ways
        self.n_sets = entries // ways
        self._sets = [OrderedDict() for _ in range(self.n_sets)]

    def _locate(self, vpn):
        return vpn % self.n_sets, vpn // self.n_sets

    def lookup(self, vpn):
        """Probe for a virtual page number; hit refreshes LRU state."""
        index, tag = self._locate(vpn)
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            return True
        return False

    def insert(self, vpn):
        index, tag = self._locate(vpn)
        entries = self._sets[index]
        entries[tag] = None
        entries.move_to_end(tag)
        if len(entries) > self.ways:
            entries.popitem(last=False)

    def invalidate_all(self):
        for entries in self._sets:
            entries.clear()

    def __repr__(self):
        return "TLBArray(%s: %d sets x %d ways)" % (self.name, self.n_sets, self.ways)


class L1DTLB:
    """First-level data TLB: separate arrays per page size."""

    def __init__(self, config):
        self.arrays = {
            PageSize.SIZE_4K: TLBArray(
                config.l1_tlb_entries_4k, config.l1_tlb_ways_4k, name="L1D-4K"
            ),
            PageSize.SIZE_2M: TLBArray(
                config.l1_tlb_entries_2m, config.l1_tlb_ways_2m, name="L1D-2M"
            ),
            PageSize.SIZE_1G: TLBArray(
                config.l1_tlb_entries_1g, config.l1_tlb_ways_1g, name="L1D-1G"
            ),
        }

    def lookup(self, vpn, page_size):
        return self.arrays[page_size].lookup(vpn)

    def insert(self, vpn, page_size):
        self.arrays[page_size].insert(vpn)

    def invalidate_all(self):
        for array in self.arrays.values():
            array.invalidate_all()


class STLB:
    """Second-level (shared) TLB: holds 4 KB and 2 MB translations.

    1 GB translations are not cached here; their lookups miss
    unconditionally (and do not increment ``stlb_hit``).
    """

    CACHEABLE = (PageSize.SIZE_4K, PageSize.SIZE_2M)

    def __init__(self, config):
        self.array = TLBArray(config.stlb_entries, config.stlb_ways, name="STLB")

    def lookup(self, vpn, page_size):
        if page_size not in self.CACHEABLE:
            return False
        # Tag the entry with its page size so 4K/2M entries cannot alias.
        return self.array.lookup(self._key(vpn, page_size))

    def insert(self, vpn, page_size):
        if page_size not in self.CACHEABLE:
            return
        self.array.insert(self._key(vpn, page_size))

    def invalidate_all(self):
        self.array.invalidate_all()

    @staticmethod
    def _key(vpn, page_size):
        return vpn * 2 + (0 if page_size == PageSize.SIZE_4K else 1)
