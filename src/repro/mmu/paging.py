"""The four-level x86-64 page table and paging-structure caches.

The simulator does not store real page-table contents; it synthesises
deterministic physical addresses for the page-table entries a walk would
read, so that walker loads exercise the data-cache hierarchy exactly as
often (and with exactly the locality) a real radix table would. Accessed
bits are tracked per leaf entry — the state the TLB prefetcher's
abort-on-unset-accessed-bit behaviour depends on.

Paging-structure caches (PSCs) cache *non-leaf* entries:

* the PDE cache holds page-directory entries that point to page tables —
  a hit lets a 4 KB walk skip straight to the PTE read (1 load). Because
  only pointers-to-PT are cached, 2 MB and 1 GB translations (whose PDE /
  PDPTE is the leaf) always miss it — the subtlety behind Table 1's
  Constraint 2.
* the PDPTE cache holds page-directory-pointer entries (skip to the PDE
  read),
* the PML4E cache holds root entries (skip the root read) — the cache
  whose existence the paper establishes via 1 GB workloads.
"""

from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.mmu.config import PageSize

# Bit positions of the level indices within a 48-bit virtual address.
PT_SHIFT = 12
PD_SHIFT = 21
PDPT_SHIFT = 30
PML4_SHIFT = 39

# Synthetic physical regions for each level's entries (disjoint).
_LEVEL_BASES = {
    "pml4": 1 << 40,
    "pdpt": 1 << 41,
    "pd": 1 << 42,
    "pt": 1 << 43,
}

ENTRY_BYTES = 8


class PageTable:
    """Synthetic 4-level page table with accessed-bit tracking."""

    def __init__(self, page_size):
        self.page_size = PageSize.validate(page_size)
        self.page_bytes = PageSize.BYTES[page_size]
        self._accessed = set()

    # -- address helpers ---------------------------------------------------
    def vpn(self, vaddr):
        """Virtual page number at this table's page size."""
        return vaddr // self.page_bytes

    def entry_address(self, level, vaddr):
        """Physical address of the page-table entry read at ``level``
        (``"pml4" | "pdpt" | "pd" | "pt"``) for ``vaddr``."""
        shift = {
            "pml4": PML4_SHIFT,
            "pdpt": PDPT_SHIFT,
            "pd": PD_SHIFT,
            "pt": PT_SHIFT,
        }[level]
        index = vaddr >> shift
        return _LEVEL_BASES[level] + index * ENTRY_BYTES

    def walk_levels(self, entry_level=None):
        """The levels a walk reads, outermost first.

        ``entry_level`` names the level *provided by* a PSC hit; the walk
        then reads strictly deeper levels. ``None`` means a full walk.
        """
        all_levels = {
            PageSize.SIZE_4K: ["pml4", "pdpt", "pd", "pt"],
            PageSize.SIZE_2M: ["pml4", "pdpt", "pd"],
            PageSize.SIZE_1G: ["pml4", "pdpt"],
        }[self.page_size]
        if entry_level is None:
            return list(all_levels)
        if entry_level not in all_levels[:-1]:
            raise ConfigurationError(
                "entry level %r invalid for %s walks" % (entry_level, self.page_size)
            )
        position = all_levels.index(entry_level)
        return all_levels[position + 1 :]

    # -- accessed bits ----------------------------------------------------
    def is_accessed(self, vpn):
        return vpn in self._accessed

    def set_accessed(self, vpn):
        self._accessed.add(vpn)

    def clear_accessed_bits(self):
        self._accessed.clear()


class PagingStructureCache:
    """A small fully-associative LRU cache of non-leaf entries.

    ``covers(page_size)`` says whether a hit is *useful* for walks of a
    page size: the cached entry must point strictly above the leaf.
    """

    def __init__(self, level, entries, enabled=True):
        if level not in ("pd", "pdpt", "pml4"):
            raise ConfigurationError("unknown PSC level %r" % (level,))
        if enabled and entries <= 0:
            raise ConfigurationError("enabled PSC needs a positive entry count")
        self.level = level
        self.entries = entries
        self.enabled = enabled
        self._cache = OrderedDict()

    # Index bits of the *covered region*: a PDE cache entry covers one
    # 2MB region (the page table it points to), etc.
    _REGION_SHIFT = {"pd": PD_SHIFT, "pdpt": PDPT_SHIFT, "pml4": PML4_SHIFT}

    # A cached entry at `level` is only a pointer (non-leaf) when the
    # translation's leaf lies strictly below it.
    _USEFUL_FOR = {
        "pd": (PageSize.SIZE_4K,),
        "pdpt": (PageSize.SIZE_4K, PageSize.SIZE_2M),
        "pml4": (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G),
    }

    def covers(self, page_size):
        return page_size in self._USEFUL_FOR[self.level]

    def _key(self, vaddr):
        return vaddr >> self._REGION_SHIFT[self.level]

    def lookup(self, vaddr, page_size):
        """Probe; a hit refreshes LRU. Misses for uncovered page sizes
        are unconditional (the leaf-entry subtlety above)."""
        if not self.enabled or not self.covers(page_size):
            return False
        key = self._key(vaddr)
        if key in self._cache:
            self._cache.move_to_end(key)
            return True
        return False

    def insert(self, vaddr):
        if not self.enabled:
            return
        key = self._key(vaddr)
        self._cache[key] = None
        self._cache.move_to_end(key)
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)

    def invalidate_all(self):
        self._cache.clear()

    def __repr__(self):
        return "PagingStructureCache(%s, %d entries, enabled=%r)" % (
            self.level,
            self.entries,
            self.enabled,
        )
