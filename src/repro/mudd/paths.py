"""µpath enumeration and counter signatures.

A *µpath* (Section 3) is one complete walk from START to an END node,
together with the property assignments that selected its branches. Its
*counter signature* records how many times each HEC is incremented along
the walk — the vectors that generate the model cone.

Enumeration follows the paper's traversal rule: at a decision node whose
property was already assigned earlier on the path, the matching branch is
followed; otherwise each labelled branch spawns a separate µpath.
"""

from repro.errors import MuDDError
from repro.mudd.graph import COUNTER, DECISION, END, MuDD


class MuPath:
    """One microarchitectural execution path through a µDD."""

    __slots__ = ("node_ids", "assignments", "counter_counts")

    def __init__(self, node_ids, assignments, counter_counts):
        self.node_ids = tuple(node_ids)
        self.assignments = dict(assignments)
        self.counter_counts = dict(counter_counts)

    def signature(self, counters):
        """Counter signature as a tuple aligned with ``counters``.

        Per-path convenience only: bulk callers use
        :func:`signature_matrix`, which maps counters to indices once
        for the whole traversal and never materialises :class:`MuPath`
        objects.
        """
        return tuple(self.counter_counts.get(name, 0) for name in counters)

    def events(self, mudd):
        """Event and counter labels along the path, in order."""
        labels = []
        for node_id in self.node_ids:
            node = mudd.nodes[node_id]
            if node.label is not None:
                labels.append(node.label)
        return labels

    def __repr__(self):
        return "MuPath(%d nodes, assignments=%r)" % (len(self.node_ids), self.assignments)


def enumerate_mupaths(mudd, max_paths=100000):
    """Enumerate every µpath of ``mudd``.

    Raises :class:`MuDDError` when a decision is reached whose property
    was assigned a value with no matching branch (a modelling bug), or
    when the number of paths exceeds ``max_paths``.
    """
    if not isinstance(mudd, MuDD):
        raise MuDDError("enumerate_mupaths expects a MuDD")
    start = mudd.start_node()
    paths = []
    # Depth-first with explicit stack: (node_id, path_nodes, assignments, counts)
    stack = [(start.node_id, [start.node_id], {}, {})]
    while stack:
        node_id, path_nodes, assignments, counts = stack.pop()
        node = mudd.nodes[node_id]
        if node.kind == END:
            paths.append(MuPath(path_nodes, assignments, counts))
            if len(paths) > max_paths:
                raise MuDDError("µDD has more than %d µpaths" % (max_paths,))
            continue
        out = mudd.out_edges(node_id)
        if node.kind == DECISION:
            assigned = assignments.get(node.label)
            if assigned is not None:
                matching = [edge for edge in out if edge.value == assigned]
                if not matching:
                    raise MuDDError(
                        "decision %r has no branch for value %r assigned earlier"
                        % (node.label, assigned)
                    )
                edges_to_follow = [(matching[0], assignments)]
            else:
                edges_to_follow = []
                for edge in out:
                    branch_assignments = dict(assignments)
                    branch_assignments[node.label] = edge.value
                    edges_to_follow.append((edge, branch_assignments))
        else:
            if len(out) != 1:
                raise MuDDError(
                    "non-decision node %r must have exactly one outgoing edge" % (node_id,)
                )
            edges_to_follow = [(out[0], assignments)]

        for edge, branch_assignments in edges_to_follow:
            target = mudd.nodes[edge.target]
            branch_counts = counts
            if target.kind == COUNTER:
                branch_counts = dict(counts)
                branch_counts[target.label] = branch_counts.get(target.label, 0) + 1
            stack.append(
                (
                    edge.target,
                    path_nodes + [edge.target],
                    branch_assignments,
                    branch_counts,
                )
            )
    return paths


def iter_signatures(mudd, counters, max_paths=2000000):
    """Yield the counter signature of every µpath, without materialising
    node lists — the fast path for large models (the full Haswell µDDs
    enumerate tens of thousands of raw paths before deduplication).
    """
    if not isinstance(mudd, MuDD):
        raise MuDDError("iter_signatures expects a MuDD")
    index = {name: position for position, name in enumerate(counters)}
    start = mudd.start_node()
    produced = 0
    stack = [(start.node_id, {}, (0,) * len(counters))]
    while stack:
        node_id, assignments, signature = stack.pop()
        node = mudd.nodes[node_id]
        if node.kind == END:
            produced += 1
            if produced > max_paths:
                raise MuDDError("µDD has more than %d µpaths" % (max_paths,))
            yield signature
            continue
        out = mudd.out_edges(node_id)
        if node.kind == DECISION:
            assigned = assignments.get(node.label)
            if assigned is not None:
                matching = [edge for edge in out if edge.value == assigned]
                if not matching:
                    raise MuDDError(
                        "decision %r has no branch for value %r assigned earlier"
                        % (node.label, assigned)
                    )
                follow = [(matching[0], assignments)]
            else:
                follow = []
                for edge in out:
                    branch = dict(assignments)
                    branch[node.label] = edge.value
                    follow.append((edge, branch))
        else:
            if len(out) != 1:
                raise MuDDError(
                    "non-decision node %r must have exactly one outgoing edge" % (node_id,)
                )
            follow = [(out[0], assignments)]
        for edge, branch_assignments in follow:
            target = mudd.nodes[edge.target]
            branch_signature = signature
            if target.kind == COUNTER:
                position = index.get(target.label)
                if position is not None:
                    updated = list(signature)
                    updated[position] += 1
                    branch_signature = tuple(updated)
            stack.append((edge.target, branch_assignments, branch_signature))


def signature_matrix(
    mudd, counters=None, max_paths=2000000, deduplicate=True, with_multiplicity=False
):
    """Counter signatures of every µpath.

    Signatures are produced in one traversal with a counter-index map
    (:func:`iter_signatures`) — never via per-path
    :meth:`MuPath.signature` dict lookups — and deduplicated *before*
    cone construction, so µDDs whose many µpaths collapse onto few
    distinct signatures (the common case for the full Haswell models)
    do not inflate the double description input.

    Parameters
    ----------
    mudd:
        The µDD to analyse.
    counters:
        Counter-name ordering for the signature vectors. Defaults to the
        µDD's own counters. Names absent from the µDD yield a zero column
        — a deliberate modelling statement that the µDD claims the
        counter never increments.
    deduplicate:
        Merge µpaths with identical signatures (they generate the same
        ray of the model cone).
    with_multiplicity:
        Additionally return the number of µpaths that collapsed onto
        each signature (all ones when ``deduplicate`` is false).

    Returns
    -------
    ``(counters, signatures)`` where ``signatures`` is a list of integer
    tuples, one per (deduplicated) µpath — plus a parallel
    ``multiplicities`` list when ``with_multiplicity`` is true.
    """
    if counters is None:
        counters = mudd.counters
    if deduplicate:
        counts = {}
        for signature in iter_signatures(mudd, counters, max_paths=max_paths):
            counts[signature] = counts.get(signature, 0) + 1
        signatures = list(counts)
        if with_multiplicity:
            return list(counters), signatures, [counts[s] for s in signatures]
        return list(counters), signatures
    signatures = list(iter_signatures(mudd, counters, max_paths=max_paths))
    if with_multiplicity:
        return list(counters), signatures, [1] * len(signatures)
    return list(counters), signatures
