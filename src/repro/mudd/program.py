"""Combinator AST for µDD construction.

The paper's DSL (Section 6) and our programmatic model builders (the
Haswell model library) both need to describe "what a µop does": increment
counters, raise events, branch on microarchitectural properties,
terminate. This module is the shared intermediate representation:

* :class:`Incr` — increment a hardware event counter,
* :class:`Do` — a plain microarchitectural event,
* :class:`Switch` — branch on a property (C-style switch in the DSL),
* :class:`Pass` — no-op branch body,
* :class:`Done` — terminate the µpath (connect to END),
* :class:`Seq` — sequential composition.

:func:`compile_program` lowers a program to a validated :class:`MuDD`.
Branches of a :class:`Switch` that do not terminate with :class:`Done`
re-join the continuation, so models read like structured code while the
µDD remains a DAG.
"""

from repro.errors import MuDDError
from repro.mudd.graph import COUNTER, DECISION, END, EVENT, START, MuDD


class Statement:
    """Base class for program statements (useful for isinstance checks)."""

    __slots__ = ()


class Incr(Statement):
    """Increment counter ``counter_name`` once."""

    __slots__ = ("counter_name",)

    def __init__(self, counter_name):
        if not counter_name:
            raise MuDDError("Incr requires a counter name")
        self.counter_name = counter_name

    def __repr__(self):
        return "Incr(%r)" % (self.counter_name,)


class Do(Statement):
    """A standard (non-counter) microarchitectural event."""

    __slots__ = ("event_name",)

    def __init__(self, event_name):
        if not event_name:
            raise MuDDError("Do requires an event name")
        self.event_name = event_name

    def __repr__(self):
        return "Do(%r)" % (self.event_name,)


class Pass(Statement):
    """No-op (used for empty switch branches)."""

    __slots__ = ()

    def __repr__(self):
        return "Pass()"


class Done(Statement):
    """Terminate the µpath here."""

    __slots__ = ()

    def __repr__(self):
        return "Done()"


class Seq(Statement):
    """Sequential composition of statements."""

    __slots__ = ("statements",)

    def __init__(self, statements):
        self.statements = list(statements)
        for statement in self.statements:
            if not isinstance(statement, Statement):
                raise MuDDError("Seq items must be Statements, got %r" % (statement,))

    def __repr__(self):
        return "Seq(%r)" % (self.statements,)


class Switch(Statement):
    """Branch on microarchitectural property ``property_name``.

    ``branches`` maps each property value (string) to a Statement. At
    µpath-enumeration time, if the property was already assigned earlier
    on the path only the matching branch is followed; otherwise each
    branch spawns a distinct µpath (Section 3's traversal rule).
    """

    __slots__ = ("property_name", "branches")

    def __init__(self, property_name, branches):
        if not property_name:
            raise MuDDError("Switch requires a property name")
        if not branches:
            raise MuDDError("Switch %r has no branches" % (property_name,))
        self.property_name = property_name
        self.branches = dict(branches)
        for value, body in self.branches.items():
            if not isinstance(body, Statement):
                raise MuDDError(
                    "branch %r of switch %r must be a Statement" % (value, property_name)
                )

    def __repr__(self):
        return "Switch(%r, %r)" % (self.property_name, self.branches)


def compile_program(program, name="model"):
    """Lower a program AST to a validated :class:`MuDD`.

    A single shared END node collects every terminating path (both
    explicit :class:`Done` statements and the natural end of the
    program).
    """
    if not isinstance(program, Statement):
        raise MuDDError("compile_program expects a Statement")
    mudd = MuDD(name=name)
    start_id = mudd.add_node(START)
    end_id = mudd.add_node(END)

    def connect(sources, target):
        """Connect every open tail in ``sources`` to ``target``."""
        for source_id, value in sources:
            mudd.add_edge(source_id, target, value=value)

    def emit(statement, open_tails):
        """Compile ``statement`` with the given incoming open tails.

        ``open_tails`` is a list of ``(node_id, edge_value)`` pairs that
        should be connected to whatever node the statement starts with.
        Returns the new open tails after the statement (empty when every
        path terminated with Done).
        """
        if not open_tails:
            raise MuDDError("unreachable statement after done: %r" % (statement,))
        if isinstance(statement, Pass):
            return open_tails
        if isinstance(statement, Done):
            connect(open_tails, end_id)
            return []
        if isinstance(statement, Incr):
            node_id = mudd.add_node(COUNTER, label=statement.counter_name)
            connect(open_tails, node_id)
            return [(node_id, None)]
        if isinstance(statement, Do):
            node_id = mudd.add_node(EVENT, label=statement.event_name)
            connect(open_tails, node_id)
            return [(node_id, None)]
        if isinstance(statement, Seq):
            tails = open_tails
            for index, inner in enumerate(statement.statements):
                if not tails:
                    raise MuDDError(
                        "statement %d of Seq is unreachable (all paths done)" % index
                    )
                tails = emit(inner, tails)
            return tails
        if isinstance(statement, Switch):
            node_id = mudd.add_node(DECISION, label=statement.property_name)
            connect(open_tails, node_id)
            tails = []
            for value, body in statement.branches.items():
                tails.extend(emit(body, [(node_id, value)]))
            return tails
        raise MuDDError("unknown statement type %r" % (statement,))

    remaining = emit(program, [(start_id, None)])
    if remaining:
        connect(remaining, end_id)
    mudd.validate()
    return mudd
