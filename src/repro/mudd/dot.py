"""Graphviz export for µDDs (the paper's Figure 4 drawings).

:func:`to_dot` renders a µDD in Graphviz ``dot`` syntax using the
paper's visual vocabulary: green boxes for events, blue pills for
counters, diamonds for decisions, labelled edges for decision values
and dashed edges for happens-before ordering.
"""

from repro.errors import MuDDError
from repro.mudd.graph import COUNTER, DECISION, END, EVENT, START, MuDD

_SHAPES = {
    START: ('shape=circle, label="START"', None),
    END: ('shape=doublecircle, label="END"', None),
    EVENT: ("shape=box, style=filled, fillcolor=palegreen", "label"),
    COUNTER: ("shape=box, style='rounded,filled', fillcolor=lightblue", "label"),
    DECISION: ("shape=diamond, style=filled, fillcolor=lightyellow", "label"),
}


def _escape(text):
    return str(text).replace('"', '\\"')


def to_dot(mudd, graph_name=None):
    """Render a µDD as Graphviz dot text."""
    if not isinstance(mudd, MuDD):
        raise MuDDError("to_dot expects a MuDD")
    graph_name = graph_name or mudd.name or "mudd"
    lines = ['digraph "%s" {' % _escape(graph_name)]
    lines.append("  rankdir=TB;")
    for node_id in sorted(mudd.nodes):
        node = mudd.nodes[node_id]
        attributes, label_kind = _SHAPES[node.kind]
        if label_kind == "label":
            attributes = '%s, label="%s"' % (attributes, _escape(node.label))
        lines.append('  "%s" [%s];' % (_escape(node_id), attributes))
    for edge in mudd.edges:
        if edge.value is not None:
            lines.append(
                '  "%s" -> "%s" [label="%s"];'
                % (_escape(edge.source), _escape(edge.target), _escape(edge.value))
            )
        else:
            lines.append('  "%s" -> "%s";' % (_escape(edge.source), _escape(edge.target)))
    for earlier, later in mudd.happens_before:
        lines.append(
            '  "%s" -> "%s" [style=dashed, color=gray, constraint=false];'
            % (_escape(earlier), _escape(later))
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(mudd, path, graph_name=None):
    """Write :func:`to_dot` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(mudd, graph_name=graph_name))
