"""µpath Decision Diagrams (µDDs) — the paper's model representation.

A µDD (Section 3) is a DAG describing the microarchitectural execution
paths (*µpaths*) a µop may take, and which hardware event counters each
path increments. This subpackage provides:

* :mod:`repro.mudd.graph` — the node/edge data structure
  (:class:`MuDD`) with structural validation,
* :mod:`repro.mudd.program` — a combinator AST (:class:`Seq`,
  :class:`Incr`, :class:`Do`, :class:`Switch`, :class:`Done`,
  :class:`Pass`) shared by the DSL compiler and the programmatic model
  builders in :mod:`repro.models`, plus :func:`compile_program`,
* :mod:`repro.mudd.paths` — µpath enumeration and counter-signature
  extraction (:func:`enumerate_mupaths`, :func:`signature_matrix`).
"""

from repro.mudd.graph import (
    COUNTER,
    DECISION,
    END,
    EVENT,
    START,
    Edge,
    MuDD,
    Node,
)
from repro.mudd.program import (
    Do,
    Done,
    Incr,
    Pass,
    Seq,
    Switch,
    compile_program,
)
from repro.mudd.paths import MuPath, enumerate_mupaths, signature_matrix

__all__ = [
    "COUNTER",
    "DECISION",
    "Do",
    "Done",
    "Edge",
    "END",
    "EVENT",
    "Incr",
    "MuDD",
    "MuPath",
    "Node",
    "Pass",
    "Seq",
    "START",
    "Switch",
    "compile_program",
    "enumerate_mupaths",
    "signature_matrix",
]
