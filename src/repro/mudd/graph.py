"""The µDD graph data structure.

Node kinds follow Figure 4 of the paper:

* ``START`` / ``END`` — path endpoints,
* ``EVENT`` — a standard microarchitectural event (green box),
* ``COUNTER`` — an event recorded by a hardware event counter (blue pill),
* ``DECISION`` — a microarchitectural property whose value selects the
  outgoing *causality* edge (diamond).

Causality edges carry an optional property-value label (used only on
edges leaving a decision node). Happens-before edges constrain event
ordering within a µpath; they do not affect counter signatures but are
validated for acyclicity together with causality edges.

Structural rules enforced by :meth:`MuDD.validate`:

* exactly one START node, at least one END node,
* non-decision nodes have at most one outgoing causality edge
  (branching happens only at decisions),
* every decision's outgoing edges carry distinct value labels,
* the causality graph is acyclic and every node is reachable from START,
* every maximal causality walk ends at an END node.
"""

from repro.errors import MuDDError

START = "start"
END = "end"
EVENT = "event"
COUNTER = "counter"
DECISION = "decision"

_KINDS = (START, END, EVENT, COUNTER, DECISION)


class Node:
    """A µDD node.

    ``label`` is the event name for EVENT nodes, the counter name for
    COUNTER nodes and the property name for DECISION nodes.
    """

    __slots__ = ("node_id", "kind", "label")

    def __init__(self, node_id, kind, label=None):
        if kind not in _KINDS:
            raise MuDDError("unknown node kind %r" % (kind,))
        if kind in (EVENT, COUNTER, DECISION) and not label:
            raise MuDDError("%s nodes require a label" % kind)
        self.node_id = node_id
        self.kind = kind
        self.label = label

    def __repr__(self):
        return "Node(%r, %s, label=%r)" % (self.node_id, self.kind, self.label)


class Edge:
    """A causality edge, optionally labelled with a decision value."""

    __slots__ = ("source", "target", "value")

    def __init__(self, source, target, value=None):
        self.source = source
        self.target = target
        self.value = value

    def __repr__(self):
        return "Edge(%r -> %r, value=%r)" % (self.source, self.target, self.value)


class MuDD:
    """A µpath Decision Diagram.

    Build with :meth:`add_node` / :meth:`add_edge` /
    :meth:`add_happens_before`, or — far more conveniently — compile a
    :mod:`repro.mudd.program` AST with
    :func:`repro.mudd.program.compile_program`.
    """

    def __init__(self, name="model"):
        self.name = name
        self.nodes = {}
        self.edges = []
        self.happens_before = []
        self._out_edges = {}
        self._next_id = 0

    # -- construction ---------------------------------------------------
    def new_node_id(self):
        node_id = "n%d" % self._next_id
        self._next_id += 1
        return node_id

    def add_node(self, kind, label=None, node_id=None):
        """Create and register a node; returns its id."""
        if node_id is None:
            node_id = self.new_node_id()
        if node_id in self.nodes:
            raise MuDDError("duplicate node id %r" % (node_id,))
        self.nodes[node_id] = Node(node_id, kind, label)
        self._out_edges[node_id] = []
        return node_id

    def add_edge(self, source, target, value=None):
        """Add a causality edge (``value`` labels decision branches)."""
        for node_id in (source, target):
            if node_id not in self.nodes:
                raise MuDDError("edge references unknown node %r" % (node_id,))
        source_node = self.nodes[source]
        if source_node.kind == END:
            raise MuDDError("END nodes cannot have outgoing edges")
        if source_node.kind == DECISION:
            if value is None:
                raise MuDDError(
                    "edges leaving decision %r must carry a value label" % (source,)
                )
            if any(edge.value == value for edge in self._out_edges[source]):
                raise MuDDError(
                    "decision %r already has a branch for value %r" % (source, value)
                )
        else:
            if value is not None:
                raise MuDDError("value labels are only allowed on decision edges")
            if self._out_edges[source]:
                raise MuDDError(
                    "non-decision node %r already has an outgoing edge" % (source,)
                )
        edge = Edge(source, target, value)
        self.edges.append(edge)
        self._out_edges[source].append(edge)
        return edge

    def add_happens_before(self, earlier, later):
        """Record that ``earlier`` must precede ``later`` in any µpath
        containing both nodes."""
        for node_id in (earlier, later):
            if node_id not in self.nodes:
                raise MuDDError("happens-before references unknown node %r" % (node_id,))
        self.happens_before.append((earlier, later))

    # -- queries ----------------------------------------------------------
    def out_edges(self, node_id):
        return list(self._out_edges[node_id])

    def start_node(self):
        starts = [n for n in self.nodes.values() if n.kind == START]
        if len(starts) != 1:
            raise MuDDError("µDD must have exactly one START node, found %d" % len(starts))
        return starts[0]

    def end_nodes(self):
        return [n for n in self.nodes.values() if n.kind == END]

    @property
    def counters(self):
        """Counter names in first-appearance order (deterministic)."""
        seen = []
        for node_id in sorted(self.nodes, key=_node_order_key):
            node = self.nodes[node_id]
            if node.kind == COUNTER and node.label not in seen:
                seen.append(node.label)
        return seen

    @property
    def properties(self):
        """Decision property names in first-appearance order."""
        seen = []
        for node_id in sorted(self.nodes, key=_node_order_key):
            node = self.nodes[node_id]
            if node.kind == DECISION and node.label not in seen:
                seen.append(node.label)
        return seen

    # -- validation ---------------------------------------------------------
    def validate(self):
        """Check all structural rules; raises :class:`MuDDError`."""
        start = self.start_node()
        if not self.end_nodes():
            raise MuDDError("µDD must have at least one END node")

        # Acyclicity of causality+happens-before via DFS colouring.
        adjacency = {node_id: [] for node_id in self.nodes}
        for edge in self.edges:
            adjacency[edge.source].append(edge.target)
        for earlier, later in self.happens_before:
            adjacency[earlier].append(later)
        state = {}
        stack = [(start.node_id, iter(adjacency[start.node_id]))]
        state[start.node_id] = "active"
        while stack:
            node_id, successors = stack[-1]
            advanced = False
            for successor in successors:
                if state.get(successor) == "active":
                    raise MuDDError("cycle detected through node %r" % (successor,))
                if successor not in state:
                    state[successor] = "active"
                    stack.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
            if not advanced:
                state[node_id] = "done"
                stack.pop()

        # Reachability (over causality edges only).
        reachable = set()
        frontier = [start.node_id]
        while frontier:
            node_id = frontier.pop()
            if node_id in reachable:
                continue
            reachable.add(node_id)
            for edge in self._out_edges[node_id]:
                frontier.append(edge.target)
        unreachable = set(self.nodes) - reachable
        if unreachable:
            raise MuDDError(
                "unreachable nodes: %s" % ", ".join(sorted(unreachable))
            )

        # Every walk must terminate at END: no dangling non-END sinks.
        for node_id, node in self.nodes.items():
            if node.kind != END and not self._out_edges[node_id]:
                raise MuDDError(
                    "node %r (%s) has no outgoing edge and is not END"
                    % (node_id, node.kind)
                )
        return True

    def __repr__(self):
        return "MuDD(%r, %d nodes, %d edges)" % (
            self.name,
            len(self.nodes),
            len(self.edges),
        )


def _node_order_key(node_id):
    """Sort ids of the form 'n<k>' numerically, others lexically."""
    if node_id.startswith("n") and node_id[1:].isdigit():
        return (0, int(node_id[1:]), node_id)
    return (1, 0, node_id)
