"""Content-addressed model-cone cache.

Building a :class:`~repro.cone.model_cone.ModelCone` from a µDD means
enumerating every µpath, and asking it for constraints means running the
exponential Section 6 deduction — yet `analyze`/`sweep`/`compare`/
`cross_refute` and the simulation scenarios routinely revisit the same
model many times. This module provides an LRU cache keyed by a
*canonical fingerprint* of the µDD (node structure and labels, decision
branch values, and the counter ordering — node ids are relabelled by a
deterministic traversal, so structurally identical µDDs hit the same
entry regardless of how their ids were allocated).

Caching the :class:`ModelCone` object transitively caches everything it
memoises: the signature matrix, the float fast-path arrays, and —
because :meth:`ModelCone.constraints` is itself cached per instance —
the deduced facets. A model's constraints are therefore computed at most
once per process regardless of how many pipeline calls touch it.

:class:`CounterPoint` instances hold their own cache by default (opt out
with ``CounterPoint(cache=False)``); the module-level
:func:`get_model_cone` serves callers outside a pipeline instance, such
as :func:`repro.sim.scenarios.closed_loop`.
"""

import hashlib
import threading
from collections import OrderedDict

from repro.cone.model_cone import ModelCone
from repro.errors import AnalysisError
from repro.mudd import DECISION, MuDD


def mudd_fingerprint(mudd, counters=None):
    """Canonical content hash of a µDD (plus counter ordering).

    Node ids are replaced by visit order of a deterministic DFS that
    sorts branches by their value labels, so the fingerprint depends
    only on structure, labels, and branch values — not on id allocation
    or insertion order. Two µDDs with equal fingerprints generate the
    same µpath signatures over the same counter ordering.

    When ``counters`` is ``None`` the µDD's own counter ordering is
    folded into the key: ``mudd.counters`` depends on node-id
    allocation, so two structurally identical µDDs can disagree on it —
    they must then not share a cache entry, or observations aligned to
    one ordering would be read against the other.
    """
    if not isinstance(mudd, MuDD):
        raise AnalysisError("mudd_fingerprint expects a MuDD")
    if counters is None:
        counters = mudd.counters
    start = mudd.start_node()
    order = {}
    pieces = []
    stack = [start.node_id]
    while stack:
        node_id = stack.pop()
        if node_id in order:
            continue
        order[node_id] = len(order)
        edges = mudd.out_edges(node_id)
        if mudd.nodes[node_id].kind == DECISION:
            edges.sort(key=lambda edge: str(edge.value))
        # Push in reverse so the first branch is visited first.
        for edge in reversed(edges):
            stack.append(edge.target)
    for node_id, position in sorted(order.items(), key=lambda item: item[1]):
        node = mudd.nodes[node_id]
        edges = mudd.out_edges(node_id)
        if node.kind == DECISION:
            edges.sort(key=lambda edge: str(edge.value))
        pieces.append(
            (
                node.kind,
                node.label,
                tuple((str(edge.value), order[edge.target]) for edge in edges),
            )
        )
    payload = repr((mudd.name, tuple(pieces), tuple(counters)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ModelConeCache:
    """An LRU of :class:`ModelCone` objects keyed by µDD content, with
    an optional persistent on-disk tier behind it.

    :meth:`get` is serialized by a lock so the cache may be shared
    between threads (the serve daemon runs concurrent jobs against one
    pipeline); sharing across :class:`CounterPoint` instances is safe
    because cached cones are treated as immutable by all callers. The
    *disk* tier (:class:`repro.cone.diskcache.DiskConeCache`) is safe
    to share between concurrent processes — pool workers warming one
    directory each publish entries atomically.

    Parameters
    ----------
    maxsize:
        In-memory LRU entry cap.
    disk:
        Persistent tier: a :class:`~repro.cone.diskcache.DiskConeCache`,
        or a directory path to build one over, or ``None`` (memory
        only). Lookup order is memory → disk → build; builds and
        memory-tier misses that hit disk both populate the memory tier,
        and builds are published to disk.
    """

    def __init__(self, maxsize=128, disk=None):
        if maxsize <= 0:
            raise AnalysisError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        if disk is not None and not hasattr(disk, "get"):
            from repro.cone.diskcache import DiskConeCache

            disk = DiskConeCache(disk)
        self.disk = disk
        # Keys whose disk copy was written before constraint deduction
        # ran; rewritten on a later hit so the deduction persists too.
        self._undeduced = set()

    def __len__(self):
        return len(self._entries)

    @property
    def disk_hits(self):
        """Hits served by the persistent tier (0 without one)."""
        return self.disk.hits if self.disk is not None else 0

    def _remember(self, key, cone):
        self._entries[key] = cone
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _write_back(self, key, cone):
        """Persist ``cone``; track whether its deduction is still due."""
        if self.disk is None:
            return
        self.disk.put(key, cone)
        if cone.has_deduced_constraints():
            self._undeduced.discard(key)
        else:
            self._undeduced.add(key)

    def get(self, mudd, counters=None, max_paths=2000000):
        """The model cone of ``mudd``, built at most once per content.

        With a disk tier the "at most once" extends across processes
        and runs: a build is published to disk, and later processes
        (or concurrent pool workers) load it instead of rebuilding.
        """
        key = (mudd_fingerprint(mudd, counters=counters), max_paths)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                # Constraint deduction ran after the disk copy was
                # written: rewrite so no future process ever deduces
                # this model again.
                if key in self._undeduced and entry.has_deduced_constraints():
                    self._write_back(key, entry)
                return entry
            self.misses += 1
            cone = None
            if self.disk is not None:
                cone = self.disk.get(key)
                if cone is not None and not cone.has_deduced_constraints():
                    # The disk copy predates deduction; if this process
                    # (or a later one through us) deduces, persist that
                    # too.
                    self._undeduced.add(key)
            if cone is None:
                cone = ModelCone.from_mudd(
                    mudd, counters=counters, max_paths=max_paths
                )
                self.builds += 1
                self._write_back(key, cone)
            self._remember(key, cone)
            return cone

    def clear(self):
        """Drop the memory tier and reset counters (disk entries stay)."""
        with self._lock:
            self._entries.clear()
            self._undeduced.clear()
            self.hits = 0
            self.misses = 0
            self.builds = 0

    def __repr__(self):
        return "ModelConeCache(%d/%d entries, %d hits, %d misses, %d builds%s)" % (
            len(self._entries),
            self.maxsize,
            self.hits,
            self.misses,
            self.builds,
            ", disk=%r" % (self.disk.cache_dir,) if self.disk is not None else "",
        )


_default_cache = ModelConeCache()
_dir_caches = {}


def get_model_cone(mudd, counters=None, max_paths=2000000, cache_dir=None):
    """Fetch ``mudd``'s model cone from the process-wide default cache.

    With ``cache_dir`` the lookup goes through a disk-backed cache over
    that directory instead (one shared instance per directory per
    process), so cones persist across runs and processes.
    """
    if cache_dir is not None:
        return shared_cache(cache_dir).get(
            mudd, counters=counters, max_paths=max_paths
        )
    return _default_cache.get(mudd, counters=counters, max_paths=max_paths)


def shared_cache(cache_dir):
    """The process-wide disk-backed :class:`ModelConeCache` over
    ``cache_dir`` (one instance per normalised directory path)."""
    import os

    key = os.path.abspath(os.fspath(cache_dir))
    cache = _dir_caches.get(key)
    if cache is None:
        cache = _dir_caches[key] = ModelConeCache(disk=key)
    return cache


def default_cache():
    """The process-wide :class:`ModelConeCache` behind
    :func:`get_model_cone` (exposed for stats and explicit clearing)."""
    return _default_cache


__all__ = [
    "ModelConeCache",
    "default_cache",
    "get_model_cone",
    "mudd_fingerprint",
    "shared_cache",
]
