"""Identification of violated model constraints.

When an observation is infeasible, CounterPoint reports *which* model
constraints it breaks — the feedback an expert uses to refine the µDD
(Section 5). For point observations this is direct evaluation; for
counter confidence regions a constraint is **definitely** violated when
the entire region lies strictly on the infeasible side (computed as the
region's support value in the constraint-normal direction via a small
LP), and violated **at the mean** when the region's centre fails it.
"""

from fractions import Fraction

from repro.errors import AnalysisError
from repro.lp import GE, LE, MAXIMIZE, LinearProgram, Status, solve
from repro.linalg import as_fraction_vector
from repro.geometry.halfspace import EQUALITY


class Violation:
    """A violated model constraint with diagnostic detail.

    Attributes
    ----------
    constraint:
        The :class:`repro.cone.ModelConstraint` that failed.
    margin:
        For points: the (negative) constraint value at the observation.
        For regions: the region's maximum achievable constraint value —
        below zero means no point of the region satisfies the
        constraint.
    definite:
        True when the entire confidence region violates the constraint
        (always True for point observations).
    """

    __slots__ = ("constraint", "margin", "definite")

    def __init__(self, constraint, margin, definite):
        self.constraint = constraint
        self.margin = margin
        self.definite = definite

    def render(self):
        tag = "definite" if self.definite else "at-mean"
        return "[%s] %s (margin %s)" % (tag, self.constraint.render(), self.margin)

    # -- serialisation (repro.results schema) ---------------------------
    def to_dict(self):
        """Stable JSON record: the constraint, the margin (exactness
        tier preserved), and whether the violation is definite."""
        from repro.results.base import encode_number

        return {
            "constraint": self.constraint.to_dict(),
            "margin": encode_number(self.margin),
            "definite": bool(self.definite),
        }

    @classmethod
    def from_dict(cls, data):
        from repro.cone.constraints import ModelConstraint
        from repro.results.base import decode_number

        return cls(
            ModelConstraint.from_dict(data["constraint"]),
            decode_number(data["margin"]),
            bool(data["definite"]),
        )

    def __eq__(self, other):
        if not isinstance(other, Violation):
            return NotImplemented
        return (
            self.constraint == other.constraint
            and self.margin == other.margin
            and self.definite == other.definite
        )

    def __repr__(self):
        return "Violation(%s)" % (self.render(),)


def _region_support(region, normal, sense, backend="exact"):
    """Max (sense=max) or min of ``normal . v`` over the region box with
    ``v >= 0`` (Appendix A treats counters as non-negative).

    Returns ``None`` when the LP is unbounded (degenerate region) or the
    region itself is empty.
    """
    boxes = list(region.box_constraints())
    if not boxes:
        raise AnalysisError("region provided no box constraints")
    n = len(normal)
    lp = LinearProgram()
    names = ["v_%d" % i for i in range(n)]
    for name in names:
        lp.add_variable(name)
    for direction, lower, upper in boxes:
        direction = as_fraction_vector(direction)
        coefficients = {
            names[i]: direction[i] for i in range(n) if direction[i] != 0
        }
        if not coefficients:
            continue
        lp.add_constraint(coefficients, GE, Fraction(lower))
        lp.add_constraint(coefficients, LE, Fraction(upper))
    objective = {names[i]: Fraction(normal[i]) for i in range(n) if normal[i] != 0}
    lp.set_objective(objective, MAXIMIZE if sense == "max" else "min")
    result = solve(lp, backend=backend)
    if result.status != Status.OPTIMAL:
        return None
    return result.objective


def identify_violations(model_cone, observation, backend="exact"):
    """List the model constraints violated by ``observation``.

    ``observation`` is either a point (mapping/sequence of counter
    values) or a confidence region (an object with ``box_constraints()``
    and ``center()``). Returns a list of :class:`Violation`, definite
    violations first.
    """
    constraints = model_cone.constraints()
    if hasattr(observation, "box_constraints"):
        return _region_violations(model_cone, constraints, observation, backend)
    vector = model_cone.vector_from_observation(observation)
    violations = []
    for constraint in constraints:
        if not constraint.is_satisfied_by(vector):
            margin = constraint.evaluate(vector)
            if constraint.kind == EQUALITY:
                margin = -abs(margin)
            violations.append(Violation(constraint, margin, definite=True))
    return violations


def _region_violations(model_cone, constraints, region, backend):
    center = as_fraction_vector(region.center())
    if len(center) != len(model_cone.counters):
        raise AnalysisError(
            "region center has %d components for %d counters"
            % (len(center), len(model_cone.counters))
        )
    violations = []
    for constraint in constraints:
        at_mean = not constraint.is_satisfied_by(center)
        if not at_mean:
            # A constraint satisfied at the mean may still be definitely
            # violated only if the whole region is infeasible for it —
            # impossible when the centre satisfies it. Skip early.
            continue
        upper = _region_support(region, constraint.normal, "max", backend=backend)
        if constraint.kind == EQUALITY:
            lower = _region_support(region, constraint.normal, "min", backend=backend)
            definite = (
                upper is not None
                and lower is not None
                and (upper < 0 or lower > 0)
            )
            margin = upper if upper is not None else constraint.evaluate(center)
        else:
            definite = upper is not None and upper < 0
            margin = upper if upper is not None else constraint.evaluate(center)
        violations.append(Violation(constraint, margin, definite=definite))
    violations.sort(key=lambda v: (not v.definite, str(v.constraint.render())))
    return violations
