"""Persistent on-disk tier for the model-cone cache.

The in-process :class:`~repro.cone.cache.ModelConeCache` dies with the
process, so every fresh run — a new CLI invocation, a new CI job, a new
pool worker — pays µpath enumeration and (worse) constraint deduction
again. This module stores pickled :class:`~repro.cone.model_cone.
ModelCone` objects in a directory, content-addressed by the same
canonical µDD fingerprint the memory tier uses, so a cone is computed
once per model *ever* and shared between concurrent processes.

Design points:

* **Atomic writes.** Entries are written to a temporary file in the
  cache directory and published with :func:`os.replace`, which is atomic
  on POSIX and Windows within one filesystem. Two processes warming the
  same directory concurrently can only ever race whole files — a reader
  sees either nothing or a complete entry, never a torn one.
* **Version-stamped entries.** Each payload records
  :data:`CACHE_FORMAT_VERSION` and the entry's own key. A mismatch (an
  old cache directory read by a newer repro, or vice versa) is treated
  as a miss and the stale file is removed — never a crash.
* **Corruption tolerance.** Any unpickling failure — truncated file,
  foreign bytes, a class that moved — degrades to a miss and recompute.
* **LRU size cap.** File mtimes double as recency; after each write the
  directory is pruned oldest-first down to ``max_bytes``. Recency
  stamps are ratcheted per instance (never below the last stamp this
  process wrote), so a backwards wall-clock step cannot reorder this
  process's own recency and evict the wrong entries.
"""

import os
import pickle
import tempfile
import time

from repro.errors import AnalysisError
from repro.obs.trace import get_tracer

#: Bump when the on-disk payload layout or the pickled classes change
#: incompatibly; old entries are then recomputed instead of trusted.
CACHE_FORMAT_VERSION = 1

_ENTRY_SUFFIX = ".conepkl"

#: Unpublished temp files older than this are garbage from a process
#: that died mid-write; prune() sweeps them.
_STALE_TMP_SECONDS = 600.0


class DiskConeCache:
    """Content-addressed directory of pickled model cones.

    Parameters
    ----------
    cache_dir:
        Directory to store entries in (created if missing). Safe to
        share between concurrent processes and across runs.
    max_bytes:
        LRU size cap for the directory; pruned after each write.
        ``None`` disables pruning.
    version:
        Format stamp for entries (overridable for tests); entries
        carrying any other stamp are recomputed.
    """

    def __init__(self, cache_dir, max_bytes=256 * 1024 * 1024,
                 version=CACHE_FORMAT_VERSION):
        if max_bytes is not None and max_bytes <= 0:
            raise AnalysisError("disk cache max_bytes must be positive")
        self.cache_dir = os.fspath(cache_dir)
        self.max_bytes = max_bytes
        self.version = version
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Highest recency stamp this instance has written; _touch
        # ratchets against it so recency stays strictly increasing even
        # if the wall clock steps backwards (NTP, VM migration).
        self._recency_clock = 0.0
        os.makedirs(self.cache_dir, exist_ok=True)

    # -- key/path plumbing -------------------------------------------------
    def _path(self, key):
        fingerprint, max_paths = key
        return os.path.join(
            self.cache_dir, "%s-%d%s" % (fingerprint, max_paths, _ENTRY_SUFFIX)
        )

    # -- entry I/O ---------------------------------------------------------
    def get(self, key):
        """The cached cone for ``key``, or ``None``.

        Every failure mode — missing file, version mismatch, truncated
        or corrupt pickle — counts as a miss so callers always fall back
        to recomputing. The mtime of a hit entry is refreshed so LRU
        pruning tracks use, not just creation.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            # Torn write from a dead process, foreign bytes, moved
            # classes: recompute rather than crash, and drop the file.
            self._discard(path)
            self._miss()
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != tuple(key)
        ):
            self._discard(path)
            self._miss()
            return None
        self._touch(path)
        self.hits += 1
        tracer = get_tracer()
        if tracer.enabled:
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            tracer.event("cache.hit", tier="cone", bytes=size)
            tracer.metrics.counter("cache.cone.hits").inc()
            tracer.metrics.counter("cache.cone.bytes_read").inc(size)
        return payload["cone"]

    def _miss(self):
        self.misses += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.miss", tier="cone")
            tracer.metrics.counter("cache.cone.misses").inc()

    def put(self, key, cone):
        """Atomically publish ``cone`` under ``key`` and prune to cap."""
        payload = {"version": self.version, "key": tuple(key), "cone": cone}
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, self._path(key))
        except BaseException:
            self._discard(temp_path)
            raise
        self._touch(self._path(key))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.write", tier="cone", bytes=len(data))
            tracer.metrics.counter("cache.cone.writes").inc()
            tracer.metrics.counter("cache.cone.bytes_written").inc(len(data))
        self.prune()

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        return len(self._entries())

    # -- maintenance -------------------------------------------------------
    def _entries(self):
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return []
        return [
            os.path.join(self.cache_dir, name)
            for name in names
            if name.endswith(_ENTRY_SUFFIX)
        ]

    def total_bytes(self):
        """Bytes currently used by cache entries."""
        total = 0
        for path in self._entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def _temp_files(self):
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return []
        return [
            os.path.join(self.cache_dir, name)
            for name in names
            if name.endswith(".tmp")
        ]

    def _sweep_stale_temps(self, max_age=_STALE_TMP_SECONDS):
        """Remove temp files abandoned by processes killed mid-write.

        Only files older than ``max_age`` go: a *young* temp file may
        belong to a concurrent writer that is about to publish it.
        """
        now = time.time()
        for path in self._temp_files():
            try:
                if now - os.stat(path).st_mtime >= max_age:
                    self._discard(path)
            except OSError:
                continue

    def prune(self):
        """Evict least-recently-used entries until under ``max_bytes``
        (and sweep temp files orphaned by dead writers)."""
        self._sweep_stale_temps()
        if self.max_bytes is None:
            return
        stats = []
        for path in self._entries():
            try:
                info = os.stat(path)
            except OSError:
                continue
            stats.append((info.st_mtime, info.st_size, path))
        total = sum(size for _, size, _ in stats)
        if total <= self.max_bytes:
            return
        stats.sort()  # oldest mtime first
        tracer = get_tracer()
        for _, size, path in stats:
            if total <= self.max_bytes:
                break
            if self._discard(path):
                self.evictions += 1
                total -= size
                if tracer.enabled:
                    tracer.event(
                        "cache.evict", tier="cone",
                        entry=os.path.basename(path), bytes=size,
                    )
                    tracer.metrics.counter("cache.cone.evictions").inc()

    def clear(self):
        """Remove every entry and temp file (counters are kept)."""
        for path in self._entries():
            self._discard(path)
        self._sweep_stale_temps(max_age=0.0)

    def _touch(self, path):
        # Recency must be monotonic within this instance: a plain
        # os.utime uses the wall clock, which can step backwards and
        # make a just-used entry look LRU-oldest. Ratchet the stamp so
        # every touch/publish orders after the previous one.
        stamp = max(time.time(), self._recency_clock + 1e-6)
        self._recency_clock = stamp
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def __repr__(self):
        return "DiskConeCache(%r, %d entries, %d hits, %d misses)" % (
            self.cache_dir,
            len(self),
            self.hits,
            self.misses,
        )


__all__ = ["CACHE_FORMAT_VERSION", "DiskConeCache"]
