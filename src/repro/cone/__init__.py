"""Model-cone analysis — CounterPoint's primary contribution.

Given a µDD, this subpackage:

* builds the **model cone** (:class:`ModelCone`) — the set of HEC value
  vectors producible by non-negative µop flows through the µDD's µpaths
  (the Counter Flow Equation of Section 3),
* tests **feasibility** of point observations and of counter confidence
  regions against the cone with a linear program
  (:func:`test_point_feasibility`, :func:`test_region_feasibility`;
  Appendix A) — batched with an exact facet pre-screen in
  :func:`test_points_feasibility`,
* **caches model cones by µDD content** (:mod:`repro.cone.cache`), so
  signature enumeration and constraint deduction run once per model per
  process,
* **deduces the model constraints** — the cone's H-representation — via
  the exact pipeline of Section 6 (:func:`deduce_constraints`), and
* **identifies which constraints an infeasible observation violates**
  (:func:`identify_violations`), the feedback that drives guided model
  refinement (Section 5).
"""

from repro.cone.model_cone import ModelCone
from repro.cone.cache import (
    ModelConeCache,
    default_cache,
    get_model_cone,
    mudd_fingerprint,
    shared_cache,
)
from repro.cone.diskcache import CACHE_FORMAT_VERSION, DiskConeCache
from repro.cone.constraints import ConstraintSet, ModelConstraint, deduce_constraints
from repro.cone.feasibility import (
    FeasibilityResult,
    test_point_feasibility,
    test_points_feasibility,
    test_region_feasibility,
)
from repro.cone.violations import Violation, identify_violations
from repro.cone.certificates import separating_constraint

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ConstraintSet",
    "DiskConeCache",
    "FeasibilityResult",
    "ModelCone",
    "ModelConeCache",
    "ModelConstraint",
    "Violation",
    "deduce_constraints",
    "default_cache",
    "get_model_cone",
    "identify_violations",
    "mudd_fingerprint",
    "separating_constraint",
    "shared_cache",
    "test_point_feasibility",
    "test_points_feasibility",
    "test_region_feasibility",
]
