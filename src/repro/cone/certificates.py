"""Farkas certificates: one violated constraint, without full deduction.

Full constraint deduction is exponential (Figure 9b), so CounterPoint
only runs it for refinement feedback. But by LP duality (Farkas' lemma),
*any* infeasible observation admits a cheap certificate: a vector ``y``
with ``y . S(p) >= 0`` for every µpath signature and ``y . v < 0`` for
the observation — i.e. a valid model constraint that the observation
violates, found with a single LP. This gives interactive workflows an
immediate "here is a constraint you broke" answer at feasibility-test
cost rather than deduction cost.
"""

from fractions import Fraction

from repro.errors import AnalysisError
from repro.cone.constraints import ModelConstraint
from repro.geometry.halfspace import INEQUALITY, ConeConstraint
from repro.linalg import as_fraction_vector, dot, scale_to_integers
from repro.lp import GE, MINIMIZE, LinearProgram, Status, solve


def separating_constraint(model_cone, observation, backend="exact"):
    """A single model constraint violated by ``observation``.

    Solves ``min y . v`` subject to ``y . S(p) >= 0`` for every µpath
    signature and ``-1 <= y_i <= 1`` (normalisation). A negative optimum
    certifies infeasibility; the optimal ``y`` *is* a valid model
    constraint (every point of the cone satisfies ``y . x >= 0``) that
    the observation breaks.

    Returns a :class:`ModelConstraint`, or ``None`` when the observation
    is feasible. With ``backend="scipy"`` the float certificate is
    rationalised and exactness is re-verified against every signature;
    if verification fails the exact backend is used instead.
    """
    vector = model_cone.vector_from_observation(observation)
    n = len(model_cone.counters)

    lp = LinearProgram()
    names = []
    for index in range(n):
        name = "y_%d" % index
        lp.add_variable(name, lower=Fraction(-1), upper=Fraction(1))
        names.append(name)
    for signature in model_cone.signatures:
        coefficients = {
            names[coord]: Fraction(signature[coord])
            for coord in range(n)
            if signature[coord] != 0
        }
        if coefficients:
            lp.add_constraint(coefficients, GE, 0)
    lp.set_objective(
        {names[coord]: vector[coord] for coord in range(n)}, MINIMIZE
    )
    result = solve(lp, backend=backend)
    if result.status != Status.OPTIMAL:
        raise AnalysisError("certificate LP did not solve: %s" % (result.status,))
    if result.objective >= 0:
        return None  # no separating hyperplane: observation is feasible

    normal = [result.assignment[name] for name in names]
    if backend == "scipy":
        normal = _rationalize(normal)
        if normal is None or not _is_valid_certificate(model_cone, normal, vector):
            return separating_constraint(model_cone, observation, backend="exact")
    constraint = ConeConstraint(scale_to_integers(normal), INEQUALITY)
    return ModelConstraint(constraint, model_cone.counters)


def _rationalize(normal, max_denominator=10**6):
    rational = []
    for value in normal:
        fraction = Fraction(value).limit_denominator(max_denominator)
        rational.append(fraction)
    if all(value == 0 for value in rational):
        return None
    return rational


def _is_valid_certificate(model_cone, normal, vector):
    """Exact re-verification of a (possibly rounded) certificate."""
    normal = as_fraction_vector(normal)
    if dot(normal, vector) >= 0:
        return False
    for signature in model_cone.signatures:
        if dot(normal, as_fraction_vector(signature)) < 0:
            return False
    return True
