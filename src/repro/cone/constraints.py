"""Model-constraint deduction (Section 6 of the paper).

The pipeline mirrors the paper's four steps exactly:

1. **Normalise** each µpath counter signature by its GCD and remove
   duplicates (handled by :class:`repro.geometry.Cone` construction).
2. **Gaussian elimination** identifies equality constraints — the
   orthogonal complement of the signatures' span (e.g.
   ``load.stlb_hit == load.stlb_hit_4k + load.stlb_hit_2m``).
3. **Interior-signature removal**: signatures expressible as non-negative
   combinations of the others are dropped via LP membership tests.
4. **Conic hull**: facet inequalities are computed exactly — for us, as
   extreme rays of the dual cone via the double description method
   (equivalent to the paper's convex hull of ``{0} ∪ signatures``).

Everything runs over exact rational arithmetic; deduction time grows
exponentially with counter count (the paper's Figure 9b), which is why
feasibility testing never calls this code.
"""

from repro.errors import AnalysisError
from repro.geometry import Cone, EQUALITY, INEQUALITY
from repro.obs.trace import get_tracer

# Generator counts at or below this skip the LP interior-removal screen:
# the per-LP fixed cost exceeds what double description saves on inputs
# this small. Purely a performance knob — the deduced constraints are
# identical either way.
_REMOVAL_THRESHOLD = 16


class ModelConstraint:
    """A deduced model constraint with counter-name rendering.

    Wraps a :class:`repro.geometry.ConeConstraint` (exact integer
    normal) together with the counter ordering, so it can print in the
    paper's ``lhs <= rhs`` style and report which HECs it involves.
    """

    __slots__ = ("cone_constraint", "counters")

    def __init__(self, cone_constraint, counters):
        if len(counters) != len(cone_constraint.normal):
            raise AnalysisError(
                "constraint over %d axes given %d counter names"
                % (len(cone_constraint.normal), len(counters))
            )
        self.cone_constraint = cone_constraint
        self.counters = list(counters)

    @property
    def normal(self):
        return self.cone_constraint.normal

    @property
    def kind(self):
        return self.cone_constraint.kind

    @property
    def is_equality(self):
        return self.cone_constraint.kind == EQUALITY

    @property
    def involved_counters(self):
        """Counter names with nonzero coefficient — the HECs an expert
        should inspect when this constraint is violated."""
        return [
            name
            for name, coeff in zip(self.counters, self.cone_constraint.normal)
            if coeff != 0
        ]

    def evaluate(self, vector):
        return self.cone_constraint.evaluate(vector)

    def is_satisfied_by(self, vector, slack=0):
        return self.cone_constraint.is_satisfied_by(vector, slack=slack)

    def violation(self, vector):
        return self.cone_constraint.violation(vector)

    def render(self):
        return self.cone_constraint.render(self.counters)

    # -- serialisation (repro.results schema) ---------------------------
    def to_dict(self):
        """Stable JSON record: exact integer normal, kind, counters."""
        return {
            "normal": [int(value) for value in self.cone_constraint.normal],
            "kind": "eq" if self.is_equality else "ge",
            "counters": list(self.counters),
        }

    @classmethod
    def from_dict(cls, data):
        from repro.geometry.halfspace import ConeConstraint

        kind = EQUALITY if data["kind"] == "eq" else INEQUALITY
        return cls(ConeConstraint(data["normal"], kind), data["counters"])

    def __eq__(self, other):
        if not isinstance(other, ModelConstraint):
            return NotImplemented
        return (
            self.cone_constraint == other.cone_constraint
            and self.counters == other.counters
        )

    def __hash__(self):
        return hash((self.cone_constraint, tuple(self.counters)))

    def __repr__(self):
        return "ModelConstraint(%s)" % (self.render(),)


class ConstraintSet:
    """The complete H-representation of a model cone."""

    def __init__(self, constraints, counters):
        self.constraints = list(constraints)
        self.counters = list(counters)

    @property
    def equalities(self):
        return [c for c in self.constraints if c.is_equality]

    @property
    def inequalities(self):
        return [c for c in self.constraints if not c.is_equality]

    def satisfied_by(self, vector):
        """True iff every constraint holds for ``vector``."""
        return all(c.is_satisfied_by(vector) for c in self.constraints)

    def violated_by(self, vector):
        """Constraints that ``vector`` fails."""
        return [c for c in self.constraints if not c.is_satisfied_by(vector)]

    def render(self):
        return [c.render() for c in self.constraints]

    def __len__(self):
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __getitem__(self, index):
        return self.constraints[index]

    def __repr__(self):
        return "ConstraintSet(%d equalities, %d inequalities)" % (
            len(self.equalities),
            len(self.inequalities),
        )


def deduce_constraints(signatures, counters, remove_interior=True, lp_backend="scipy"):
    """Run the Section 6 deduction pipeline.

    Parameters
    ----------
    signatures:
        µpath counter signatures (non-negative integer vectors).
    counters:
        Counter names, one per signature component.
    remove_interior:
        Apply the LP-based interior-signature removal step before facet
        enumeration (step 3). Disabling it changes performance only; the
        resulting constraint set is identical. Small generator sets skip
        the LP screen automatically — per-LP fixed costs dominate there
        and the double description method handles a handful of interior
        generators at no measurable cost.
    lp_backend:
        Backend for the interior-removal LPs. The default float backend
        is fast; exactness is restored afterwards by verifying every
        original signature against the deduced facets (exact rational
        dot products) and recomputing with any wrongly-pruned signature
        restored. The facet enumeration itself is always exact.

    Returns
    -------
    :class:`ConstraintSet` with equalities first, then facet
    inequalities.
    """
    tracer = get_tracer()
    with tracer.span(
        "cone.deduce", signatures=len(signatures), counters=len(counters)
    ) as span:
        full_cone = Cone(signatures, ambient_dim=len(counters))
        if remove_interior and len(full_cone.generators) > _REMOVAL_THRESHOLD:
            with tracer.span("cone.interior_removal"):
                kept = full_cone.irredundant_generators(backend=lp_backend)
            facets = _facets_with_verification(full_cone, kept, len(counters))
        else:
            facets = full_cone.facet_constraints()
        ordered = [f for f in facets if f.kind == EQUALITY] + [
            f for f in facets if f.kind == INEQUALITY
        ]
        span.set(constraints=len(ordered))
        return ConstraintSet(
            [ModelConstraint(f, counters) for f in ordered],
            counters,
        )


def _facets_with_verification(full_cone, kept, ambient_dim):
    """Facets of ``cone(kept)``, exact-verified against every original
    generator; wrongly pruned generators are restored and the hull is
    recomputed until the H-representation covers all of them."""
    kept = list(kept)
    while True:
        facets = Cone(kept, ambient_dim=ambient_dim).facet_constraints()
        offenders = [
            generator
            for generator in full_cone.generators
            if not all(facet.is_satisfied_by(generator) for facet in facets)
        ]
        if not offenders:
            return facets
        kept.extend(offenders)
