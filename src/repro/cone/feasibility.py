"""Feasibility testing of observations against a model cone.

Implements the linear program of Appendix A. The LP instantiates:

* a non-negative flow variable per µpath signature,
* a non-negative counter variable per HEC, related to flows by the
  Counter Flow Equation (equality rows), and
* for noisy observations, the counter confidence region encoded as its
  PCA-aligned bounding box: ``|e_i . (v - mean)| <= sqrt(lambda_i *
  chi2)`` for each principal direction ``e_i``.

A point observation is the degenerate case where the box has zero
half-lengths in every direction.

Feasibility answers come from the exact rational simplex by default, so
"infeasible" verdicts are exact consequences of the inputs.
"""

from fractions import Fraction

from repro.errors import AnalysisError
from repro.lp import EQ, GE, LE, LinearProgram, Status, solve
from repro.linalg import as_fraction_vector


class FeasibilityResult:
    """Outcome of a feasibility test.

    Attributes
    ----------
    feasible:
        Whether the observation/region intersects the model cone.
    flows:
        When feasible, one witness assignment of µop flow per µpath
        signature (list aligned with the model cone's signatures).
    witness:
        When feasible, the counter vector inside both the region and the
        cone.
    """

    __slots__ = ("feasible", "flows", "witness")

    def __init__(self, feasible, flows=None, witness=None):
        self.feasible = feasible
        self.flows = flows
        self.witness = witness

    def __bool__(self):
        return self.feasible

    def __repr__(self):
        return "FeasibilityResult(feasible=%r)" % (self.feasible,)


def _flow_lp(model_cone):
    """LP skeleton with flow variables and counter variables linked by
    the Counter Flow Equation."""
    lp = LinearProgram()
    flow_names = []
    for index in range(len(model_cone.signatures)):
        name = "flow_%d" % index
        lp.add_variable(name)
        flow_names.append(name)
    counter_names = []
    for index in range(len(model_cone.counters)):
        name = "v_%d" % index
        lp.add_variable(name)  # counters are non-negative (Appendix A)
        counter_names.append(name)
    for coord, v_name in enumerate(counter_names):
        coefficients = {v_name: Fraction(-1)}
        for index, signature in enumerate(model_cone.signatures):
            if signature[coord] != 0:
                coefficients[flow_names[index]] = Fraction(signature[coord])
        lp.add_constraint(coefficients, EQ, 0, name="flow_eq_%d" % coord)
    return lp, flow_names, counter_names


def test_point_feasibility(model_cone, observation, backend="exact"):
    """Is a noise-free observation inside the model cone?

    ``observation`` is a counter-name mapping or an ordered sequence.
    """
    vector = model_cone.vector_from_observation(observation)
    lp, flow_names, counter_names = _flow_lp(model_cone)
    for coord, v_name in enumerate(counter_names):
        lp.add_constraint({v_name: 1}, EQ, vector[coord])
    result = solve(lp, backend=backend)
    if result.status != Status.OPTIMAL:
        return FeasibilityResult(False)
    flows = [result.assignment[name] for name in flow_names]
    witness = [result.assignment[name] for name in counter_names]
    return FeasibilityResult(True, flows=flows, witness=witness)


def test_region_feasibility(model_cone, region, backend="exact"):
    """Does a counter confidence region intersect the model cone?

    ``region`` must provide ``box_constraints()`` yielding
    ``(direction, lower, upper)`` triples: for each principal direction
    ``e`` of the confidence ellipsoid, ``lower <= e . v <= upper`` (see
    :class:`repro.stats.ConfidenceRegion`). The region's dimension must
    match the model cone's counter count.
    """
    boxes = list(region.box_constraints())
    if not boxes:
        raise AnalysisError("region provided no box constraints")
    lp, flow_names, counter_names = _flow_lp(model_cone)
    n = len(model_cone.counters)
    for direction, lower, upper in boxes:
        direction = as_fraction_vector(direction)
        if len(direction) != n:
            raise AnalysisError(
                "region direction has %d components for %d counters"
                % (len(direction), n)
            )
        coefficients = {
            counter_names[coord]: direction[coord]
            for coord in range(n)
            if direction[coord] != 0
        }
        if not coefficients:
            continue
        lp.add_constraint(coefficients, GE, Fraction(lower))
        lp.add_constraint(coefficients, LE, Fraction(upper))
    result = solve(lp, backend=backend)
    if result.status != Status.OPTIMAL:
        return FeasibilityResult(False)
    flows = [result.assignment[name] for name in flow_names]
    witness = [result.assignment[name] for name in counter_names]
    return FeasibilityResult(True, flows=flows, witness=witness)
