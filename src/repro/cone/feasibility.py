"""Feasibility testing of observations against a model cone.

Implements the linear program of Appendix A. The LP instantiates:

* a non-negative flow variable per µpath signature,
* a non-negative counter variable per HEC, related to flows by the
  Counter Flow Equation (equality rows), and
* for noisy observations, the counter confidence region encoded as its
  PCA-aligned bounding box: ``|e_i . (v - mean)| <= sqrt(lambda_i *
  chi2)`` for each principal direction ``e_i``.

A point observation is the degenerate case where the box has zero
half-lengths in every direction — and degenerates further: the counter
variables are pinned to the observed values, so
:func:`test_point_feasibility` eliminates them and solves the reduced
flow system ``S^T f = v, f >= 0`` directly. On the ``"scipy"`` backend
the reduced system goes straight to ``scipy.optimize.linprog`` against a
float signature matrix cached on the model cone, bypassing the LP
modelling layer entirely.

:func:`test_points_feasibility` is the batched entry point: when the
model's facet constraints have already been deduced, every observation
is first screened against them with exact integer dot products — a facet
violation is an exact refutation certificate, no LP needed — and only
the survivors run the flow LP.

Feasibility answers come from the exact rational simplex by default, so
"infeasible" verdicts are exact consequences of the inputs.
"""

from fractions import Fraction

from repro.errors import AnalysisError
from repro.lp import EQ, GE, LE, LinearProgram, Status, solve
from repro.linalg import as_fraction_vector
from repro.obs.trace import get_tracer


class FeasibilityResult:
    """Outcome of a feasibility test.

    Attributes
    ----------
    feasible:
        Whether the observation/region intersects the model cone.
    flows:
        When feasible, one witness assignment of µop flow per µpath
        signature (list aligned with the model cone's signatures).
    witness:
        When feasible, the counter vector inside both the region and the
        cone.
    certificate:
        When infeasibility was established by the facet screen, the
        violated :class:`~repro.cone.constraints.ModelConstraint` — an
        exact refutation certificate (no LP was run). ``None`` when the
        verdict came from an LP.
    """

    __slots__ = ("feasible", "flows", "witness", "certificate")

    def __init__(self, feasible, flows=None, witness=None, certificate=None):
        self.feasible = feasible
        self.flows = flows
        self.witness = witness
        self.certificate = certificate

    def __bool__(self):
        return self.feasible

    def __repr__(self):
        return "FeasibilityResult(feasible=%r)" % (self.feasible,)


def _flow_lp(model_cone):
    """LP skeleton with flow variables and counter variables linked by
    the Counter Flow Equation."""
    lp = LinearProgram()
    flow_names = []
    for index in range(len(model_cone.signatures)):
        name = "flow_%d" % index
        lp.add_variable(name)
        flow_names.append(name)
    counter_names = []
    for index in range(len(model_cone.counters)):
        name = "v_%d" % index
        lp.add_variable(name)  # counters are non-negative (Appendix A)
        counter_names.append(name)
    for coord, v_name in enumerate(counter_names):
        coefficients = {v_name: Fraction(-1)}
        for index, signature in enumerate(model_cone.signatures):
            if signature[coord] != 0:
                coefficients[flow_names[index]] = Fraction(signature[coord])
        lp.add_constraint(coefficients, EQ, 0, name="flow_eq_%d" % coord)
    return lp, flow_names, counter_names


def _point_feasibility_scipy(model_cone, vector):
    """Reduced flow system on HiGHS against the cached signature matrix.

    Prefers the persistent per-cone model (build once, rebind the
    right-hand side per observation — :mod:`repro.lp.highs_fast`);
    degrades to one ``scipy.optimize.linprog`` call when the bindings
    are unavailable.
    """
    from repro.lp import highs_fast

    tracer = get_tracer()
    model = model_cone.flow_model()
    if model is not None:
        with tracer.span("lp.solve", backend="highs_fast") as span:
            status = model.solve([float(value) for value in vector])
            if tracer.enabled:
                tracer.metrics.histogram("lp.solve_seconds").observe(
                    span.duration
                )
        if status == highs_fast.OPTIMAL:
            return FeasibilityResult(
                True, flows=model.solution(), witness=list(vector)
            )
        if status in (highs_fast.INFEASIBLE, highs_fast.UNBOUNDED):
            return FeasibilityResult(False)
        raise AnalysisError("HiGHS feasibility solve failed")

    import numpy as np
    from scipy.optimize import linprog

    matrix = model_cone.signature_array()
    with tracer.span("lp.solve", backend="scipy") as span:
        result = linprog(
            np.zeros(matrix.shape[1]),
            A_eq=matrix,
            b_eq=np.asarray([float(value) for value in vector]),
            bounds=(0, None),
            method="highs",
        )
        if tracer.enabled:
            tracer.metrics.histogram("lp.solve_seconds").observe(
                span.duration
            )
    if result.status in (2, 3):
        return FeasibilityResult(False)
    if not result.success:
        raise AnalysisError("HiGHS feasibility LP failed: %s" % (result.message,))
    return FeasibilityResult(True, flows=list(result.x), witness=list(vector))


def test_point_feasibility(model_cone, observation, backend="exact"):
    """Is a noise-free observation inside the model cone?

    ``observation`` is a counter-name mapping or an ordered sequence.
    The counter variables of the Appendix A LP are pinned by the
    observation, so the reduced system ``S^T f = v, f >= 0`` is solved
    instead (identical verdicts, much smaller program).
    """
    vector = model_cone.vector_from_observation(observation)
    if any(value < 0 for value in vector):
        # Counters are non-negative (Appendix A); no flow can explain a
        # negative observation.
        return FeasibilityResult(False)
    if not model_cone.signatures:
        feasible = all(value == 0 for value in vector)
        return FeasibilityResult(
            feasible, flows=[] if feasible else None,
            witness=list(vector) if feasible else None,
        )
    if backend == "scipy":
        return _point_feasibility_scipy(model_cone, vector)
    lp = LinearProgram()
    flow_names = []
    for index in range(len(model_cone.signatures)):
        name = "flow_%d" % index
        lp.add_variable(name)
        flow_names.append(name)
    for coord in range(len(model_cone.counters)):
        coefficients = {
            flow_names[index]: Fraction(signature[coord])
            for index, signature in enumerate(model_cone.signatures)
            if signature[coord] != 0
        }
        if not coefficients:
            if vector[coord] != 0:
                return FeasibilityResult(False)
            continue
        lp.add_constraint(coefficients, EQ, vector[coord], name="flow_eq_%d" % coord)
    result = solve(lp, backend=backend)
    if result.status != Status.OPTIMAL:
        return FeasibilityResult(False)
    flows = [result.assignment[name] for name in flow_names]
    return FeasibilityResult(True, flows=flows, witness=list(vector))


def test_region_feasibility(model_cone, region, backend="exact"):
    """Does a counter confidence region intersect the model cone?

    ``region`` must provide ``box_constraints()`` yielding
    ``(direction, lower, upper)`` triples: for each principal direction
    ``e`` of the confidence ellipsoid, ``lower <= e . v <= upper`` (see
    :class:`repro.stats.ConfidenceRegion`). The region's dimension must
    match the model cone's counter count.
    """
    boxes = list(region.box_constraints())
    if not boxes:
        raise AnalysisError("region provided no box constraints")
    with get_tracer().span("cell.verdict", mode="region") as span:
        lp, flow_names, counter_names = _flow_lp(model_cone)
        n = len(model_cone.counters)
        for direction, lower, upper in boxes:
            direction = as_fraction_vector(direction)
            if len(direction) != n:
                raise AnalysisError(
                    "region direction has %d components for %d counters"
                    % (len(direction), n)
                )
            coefficients = {
                counter_names[coord]: direction[coord]
                for coord in range(n)
                if direction[coord] != 0
            }
            if not coefficients:
                continue
            lp.add_constraint(coefficients, GE, Fraction(lower))
            lp.add_constraint(coefficients, LE, Fraction(upper))
        result = solve(lp, backend=backend)
        if result.status != Status.OPTIMAL:
            span.set(feasible=False)
            return FeasibilityResult(False)
        flows = [result.assignment[name] for name in flow_names]
        witness = [result.assignment[name] for name in counter_names]
        span.set(feasible=True)
        return FeasibilityResult(True, flows=flows, witness=witness)


def test_points_feasibility(model_cone, observations, backend="exact", screen="auto"):
    """Batched point feasibility: facet screen first, LP for survivors.

    Parameters
    ----------
    model_cone:
        The :class:`~repro.cone.model_cone.ModelCone` under test.
    observations:
        Iterable of counter-name mappings or ordered sequences.
    backend:
        LP backend for the surviving observations.
    screen:
        ``"auto"`` (default) screens against the model's facet halfspaces
        only when constraint deduction already ran for this cone (the
        paper's rule that feasibility testing must never *trigger* the
        exponential deduction); ``"always"`` forces deduction once and
        screens everything; ``"never"`` disables the screen.

    Returns
    -------
    list of :class:`FeasibilityResult`, one per observation, in order.
    Screen-refuted observations carry the violated constraint as an
    exact ``certificate`` (integer dot products — no LP involved); a
    screen *pass* is also exact (the H-representation is complete, by
    Minkowski–Weyl), but survivors still run the flow LP so feasible
    results carry a flow witness.
    """
    if screen not in ("auto", "always", "never"):
        raise AnalysisError("unknown screen mode %r" % (screen,))
    observations = list(observations)
    vectors = [model_cone.vector_from_observation(o) for o in observations]
    constraints = None
    if screen == "always" or (screen == "auto" and model_cone.has_deduced_constraints()):
        constraints = model_cone.constraints()
    tracer = get_tracer()
    results = []
    for observation, vector in zip(observations, vectors):
        with tracer.span("cell.verdict", mode="point") as span:
            certificate = None
            if constraints is not None:
                for constraint in constraints:
                    if not constraint.is_satisfied_by(vector):
                        certificate = constraint
                        break
            if certificate is not None:
                span.set(feasible=False, screened=True)
                results.append(
                    FeasibilityResult(False, certificate=certificate)
                )
                continue
            result = test_point_feasibility(
                model_cone, vector, backend=backend
            )
            span.set(feasible=result.feasible, screened=False)
            results.append(result)
    return results
