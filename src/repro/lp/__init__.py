"""Linear programming for CounterPoint feasibility testing.

The paper (Section 4, Appendix A) determines whether a counter confidence
region intersects the model cone by solving a linear program over
non-negative µpath *flow* variables and counter-value variables. The
original implementation uses the ``pulp`` toolkit; this reproduction ships
its own solver stack:

* :mod:`repro.lp.problem` — a small modelling layer
  (:class:`LinearProgram`) with named variables, bounds and constraints,
* :mod:`repro.lp.simplex` — an exact two-phase simplex over
  :class:`fractions.Fraction` with Bland's anti-cycling rule; feasibility
  answers contain no floating-point tolerance,
* :mod:`repro.lp.scipy_backend` — an optional float backend delegating to
  ``scipy.optimize.linprog`` (HiGHS), used for cross-checking and for
  speed on large instances,
* :mod:`repro.lp.highs_fast` — persistent HiGHS feasibility models for
  the hot loops that re-solve one matrix against many right-hand sides
  (batched point feasibility, generator interior removal); falls back
  to ``linprog`` when scipy's private HiGHS bindings are unavailable,
* :func:`repro.lp.solve` — the dispatching entry point.
"""

from repro.lp.problem import (
    EQ,
    GE,
    LE,
    MAXIMIZE,
    MINIMIZE,
    Constraint,
    LinearProgram,
    Variable,
)
from repro.lp.solver import SolveResult, Status, solve

__all__ = [
    "EQ",
    "GE",
    "LE",
    "MAXIMIZE",
    "MINIMIZE",
    "Constraint",
    "LinearProgram",
    "SolveResult",
    "Status",
    "Variable",
    "solve",
]
