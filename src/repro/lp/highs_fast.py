"""Persistent HiGHS feasibility models (the float LP fast path).

``scipy.optimize.linprog`` pays ~1.5 ms of Python wrapper overhead per
call — an order of magnitude more than HiGHS spends actually solving
the small feasibility programs CounterPoint issues in its hot loops
(point feasibility per observation, membership per generator during
interior removal). Those loops solve the *same* constraint matrix over
and over with only the right-hand side (and occasionally a column
bound) changing, which is exactly what the underlying HiGHS incremental
API is for: build the model once, mutate bounds, re-run from the warm
basis.

This module talks to the HiGHS bindings that ship *inside* scipy
(``scipy.optimize._highspy``) — a private interface, so everything here
degrades gracefully: :func:`make_feasibility_model` returns ``None``
when the bindings are missing or their surface changed, and callers fall
back to ``linprog``. Verdict semantics are identical to the ``"scipy"``
LP backend (floating point; exactness is the caller's concern).
"""

import numpy as np

try:  # scipy-private HiGHS bindings; absence just disables the fast path
    import scipy.optimize._highspy._core as _core
    from scipy.sparse import csc_matrix as _csc_matrix

    _HIGHS_OK = hasattr(_core, "_Highs") and hasattr(_core, "HighsLp")
except ImportError:  # pragma: no cover - depends on scipy build
    _core = None
    _HIGHS_OK = False

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ERROR = "error"


def highs_available():
    """Whether the persistent-model fast path can be used."""
    return _HIGHS_OK


class FeasibilityModel:
    """A persistent HiGHS model for ``A x = b, x >= 0`` feasibility.

    ``A`` (dense ``N x P`` float array) is loaded once; each
    :meth:`solve` call rebinds the row bounds to a new ``b`` and re-runs
    from the previous basis. Columns can be excluded (pinned to zero)
    and re-included, which the generator interior-removal loop uses to
    test membership in the cone of "all kept generators but this one"
    without ever rebuilding the matrix.

    Use :func:`make_feasibility_model`, which returns ``None`` when the
    HiGHS bindings are unavailable.
    """

    def __init__(self, matrix):
        matrix = np.asarray(matrix, dtype=float)
        n_rows, n_cols = matrix.shape
        self.n_rows = n_rows
        self.n_cols = n_cols
        self._solver = _core._Highs()
        self._solver.setOptionValue("output_flag", False)
        self._infinity = self._solver.getInfinity()
        lp = _core.HighsLp()
        lp.num_col_ = n_cols
        lp.num_row_ = n_rows
        lp.col_cost_ = np.zeros(n_cols)
        lp.col_lower_ = np.zeros(n_cols)
        lp.col_upper_ = np.full(n_cols, self._infinity)
        zeros = np.zeros(n_rows)
        lp.row_lower_ = zeros
        lp.row_upper_ = zeros.copy()
        sparse = _csc_matrix(matrix)
        lp.a_matrix_.format_ = _core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = sparse.indptr.astype(np.int64)
        lp.a_matrix_.index_ = sparse.indices.astype(np.int64)
        lp.a_matrix_.value_ = sparse.data.astype(float)
        status = self._solver.passModel(lp)
        if status == _core.HighsStatus.kError:
            raise RuntimeError("HiGHS rejected the feasibility model")

    def exclude_column(self, index):
        """Pin variable ``index`` to zero (remove its generator)."""
        self._solver.changeColBounds(index, 0.0, 0.0)

    def include_column(self, index):
        """Restore variable ``index`` to ``[0, inf)``."""
        self._solver.changeColBounds(index, 0.0, self._infinity)

    def solve(self, rhs):
        """Feasibility of ``A x = rhs`` under the current column bounds.

        Returns one of :data:`OPTIMAL`, :data:`INFEASIBLE`,
        :data:`UNBOUNDED`, :data:`ERROR`.
        """
        solver = self._solver
        for row, value in enumerate(rhs):
            solver.changeRowBounds(row, float(value), float(value))
        solver.run()
        status = solver.getModelStatus()
        if status == _core.HighsModelStatus.kOptimal:
            return OPTIMAL
        if status in (
            _core.HighsModelStatus.kInfeasible,
            _core.HighsModelStatus.kUnboundedOrInfeasible,
        ):
            return INFEASIBLE
        if status == _core.HighsModelStatus.kUnbounded:
            return UNBOUNDED
        return ERROR

    def solution(self):
        """Primal values after an :data:`OPTIMAL` :meth:`solve`."""
        return list(self._solver.getSolution().col_value)


def make_feasibility_model(matrix):
    """A :class:`FeasibilityModel` for ``matrix``, or ``None`` when the
    scipy-private HiGHS bindings are unavailable (callers fall back to
    ``scipy.optimize.linprog``)."""
    if not _HIGHS_OK:
        return None
    try:
        return FeasibilityModel(matrix)
    except Exception:  # pragma: no cover - binding-surface drift
        return None


__all__ = [
    "ERROR",
    "FeasibilityModel",
    "INFEASIBLE",
    "OPTIMAL",
    "UNBOUNDED",
    "highs_available",
    "make_feasibility_model",
]
