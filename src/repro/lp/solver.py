"""Backend dispatch for linear programs.

:func:`solve` is the single entry point used by the rest of the library.
The default backend is the exact rational simplex; pass
``backend="scipy"`` for the HiGHS float backend.
"""

from repro.errors import LPError
from repro.obs.trace import get_tracer


class Status:
    """LP solve outcomes."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


class SolveResult:
    """Outcome of an LP solve.

    Attributes
    ----------
    status:
        One of the :class:`Status` constants.
    assignment:
        Mapping of variable name to value when optimal, else ``None``.
    objective:
        Objective value when optimal, else ``None``. Zero for pure
        feasibility problems with no objective set.
    """

    __slots__ = ("status", "assignment", "objective")

    def __init__(self, status, assignment, objective):
        self.status = status
        self.assignment = assignment
        self.objective = objective

    @property
    def is_feasible(self):
        return self.status == Status.OPTIMAL

    def __repr__(self):
        return "SolveResult(status=%r, objective=%r)" % (self.status, self.objective)


def solve(program, backend="exact"):
    """Solve ``program`` with the chosen backend.

    Parameters
    ----------
    program:
        A :class:`repro.lp.problem.LinearProgram`.
    backend:
        ``"exact"`` (rational simplex, default) or ``"scipy"`` (HiGHS).
    """
    tracer = get_tracer()
    with tracer.span(
        "lp.solve", backend=backend,
        variables=len(program.variables),
        constraints=len(program.constraints),
    ) as span:
        if backend == "exact":
            from repro.lp.simplex import solve_exact

            status, assignment, objective = solve_exact(program)
        elif backend == "scipy":
            from repro.lp.scipy_backend import solve_scipy

            status, assignment, objective = solve_scipy(program)
        else:
            raise LPError("unknown LP backend %r" % (backend,))
        span.set(status=status)
        if tracer.enabled:
            tracer.metrics.histogram("lp.solve_seconds").observe(
                span.duration
            )
    return SolveResult(status, assignment, objective)
