"""Floating-point LP backend built on ``scipy.optimize.linprog`` (HiGHS).

This backend exists for two reasons:

1. *Cross-checking*: the test suite solves the same programs with the
   exact simplex and with HiGHS and asserts agreement (up to float
   tolerance), guarding both implementations against each other.
2. *Speed*: large batch feasibility sweeps (e.g. the Table 3 benchmark
   with thousands of observations) can optionally run on HiGHS.

Because the answers are floating point, callers that need exactness
(borderline feasibility on a cone facet) should use the exact backend.
"""

import numpy as np
from scipy.optimize import linprog

from repro.errors import LPError
from repro.lp.problem import EQ, GE, LE, MAXIMIZE, LinearProgram


def solve_scipy(program):
    """Solve a :class:`LinearProgram` with HiGHS.

    Returns ``(status, assignment, objective)`` mirroring
    :func:`repro.lp.simplex.solve_exact`, with float values.
    """
    if not isinstance(program, LinearProgram):
        raise LPError("solve_scipy expects a LinearProgram")
    names = program.variable_names
    index = {name: i for i, name in enumerate(names)}
    n = len(names)

    sign = -1.0 if program.objective_sense == MAXIMIZE else 1.0
    c = np.zeros(n)
    for name, coeff in program.objective.items():
        c[index[name]] = sign * float(coeff)

    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for constraint in program.constraints:
        row = np.zeros(n)
        for name, coeff in constraint.coefficients.items():
            row[index[name]] = float(coeff)
        rhs = float(constraint.rhs)
        if constraint.sense == LE:
            a_ub.append(row)
            b_ub.append(rhs)
        elif constraint.sense == GE:
            a_ub.append(-row)
            b_ub.append(-rhs)
        elif constraint.sense == EQ:
            a_eq.append(row)
            b_eq.append(rhs)

    bounds = []
    for variable in program.variables:
        lower = None if variable.lower is None else float(variable.lower)
        upper = None if variable.upper is None else float(variable.upper)
        bounds.append((lower, upper))

    result = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        return "infeasible", None, None
    if result.status == 3:
        return "unbounded", None, None
    if not result.success:
        raise LPError("HiGHS failed: %s" % (result.message,))
    assignment = {name: float(result.x[index[name]]) for name in names}
    objective = float(result.fun)
    if program.objective_sense == MAXIMIZE:
        objective = -objective
    return "optimal", assignment, objective
