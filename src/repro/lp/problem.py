"""A small linear-programming modelling layer.

A :class:`LinearProgram` holds named variables (with optional bounds),
linear constraints expressed as coefficient dictionaries, and an optional
objective. Both the exact simplex backend and the scipy backend consume
this representation.

Example
-------
>>> lp = LinearProgram()
>>> lp.add_variable("x")            # x >= 0 by default
>>> lp.add_variable("y", lower=None)  # free variable
>>> lp.add_constraint({"x": 1, "y": 2}, LE, 10)
>>> lp.set_objective({"x": -1}, MINIMIZE)
"""

from fractions import Fraction

from repro.errors import LPError

LE = "<="
GE = ">="
EQ = "=="

MINIMIZE = "min"
MAXIMIZE = "max"

_SENSES = (LE, GE, EQ)


def _to_fraction(value):
    return value if isinstance(value, Fraction) else Fraction(value)


class Variable:
    """A decision variable with optional bounds.

    ``lower``/``upper`` may be numbers or ``None`` (unbounded on that
    side). The default is the LP-standard ``x >= 0``.
    """

    __slots__ = ("name", "lower", "upper")

    def __init__(self, name, lower=Fraction(0), upper=None):
        self.name = name
        self.lower = None if lower is None else _to_fraction(lower)
        self.upper = None if upper is None else _to_fraction(upper)
        if self.lower is not None and self.upper is not None and self.lower > self.upper:
            raise LPError(
                "variable %r has empty domain [%s, %s]" % (name, self.lower, self.upper)
            )

    def __repr__(self):
        return "Variable(%r, lower=%s, upper=%s)" % (self.name, self.lower, self.upper)


class Constraint:
    """A linear constraint ``sum(coeffs[v] * v) <sense> rhs``."""

    __slots__ = ("coefficients", "sense", "rhs", "name")

    def __init__(self, coefficients, sense, rhs, name=None):
        if sense not in _SENSES:
            raise LPError("unknown constraint sense %r" % (sense,))
        self.coefficients = {var: _to_fraction(coeff) for var, coeff in coefficients.items()}
        self.sense = sense
        self.rhs = _to_fraction(rhs)
        self.name = name

    def violation(self, assignment):
        """Amount by which ``assignment`` (a name->value mapping) violates
        this constraint; zero or negative means satisfied."""
        lhs = sum(
            (coeff * _to_fraction(assignment.get(var, 0)) for var, coeff in self.coefficients.items()),
            Fraction(0),
        )
        if self.sense == LE:
            return lhs - self.rhs
        if self.sense == GE:
            return self.rhs - lhs
        return abs(lhs - self.rhs)

    def __repr__(self):
        return "Constraint(%r, %s, %s, name=%r)" % (
            self.coefficients,
            self.sense,
            self.rhs,
            self.name,
        )


class LinearProgram:
    """A named-variable linear program.

    Variables must be declared before they are referenced by constraints
    or the objective; this catches typos in counter names early.
    """

    def __init__(self):
        self._variables = {}
        self._order = []
        self.constraints = []
        self.objective = {}
        self.objective_sense = MINIMIZE

    # -- variables ----------------------------------------------------
    def add_variable(self, name, lower=Fraction(0), upper=None):
        """Declare a variable; returns the :class:`Variable`."""
        if name in self._variables:
            raise LPError("duplicate variable %r" % (name,))
        variable = Variable(name, lower=lower, upper=upper)
        self._variables[name] = variable
        self._order.append(name)
        return variable

    def has_variable(self, name):
        return name in self._variables

    @property
    def variables(self):
        """Variables in declaration order."""
        return [self._variables[name] for name in self._order]

    @property
    def variable_names(self):
        return list(self._order)

    # -- constraints and objective ------------------------------------
    def add_constraint(self, coefficients, sense, rhs, name=None):
        """Add ``sum(coeff * var) <sense> rhs``; returns the Constraint."""
        self._check_known(coefficients)
        constraint = Constraint(coefficients, sense, rhs, name=name)
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, coefficients, sense=MINIMIZE):
        if sense not in (MINIMIZE, MAXIMIZE):
            raise LPError("unknown objective sense %r" % (sense,))
        self._check_known(coefficients)
        self.objective = {var: _to_fraction(coeff) for var, coeff in coefficients.items()}
        self.objective_sense = sense

    def _check_known(self, coefficients):
        for var in coefficients:
            if var not in self._variables:
                raise LPError("unknown variable %r (declare it with add_variable first)" % (var,))

    def __repr__(self):
        return "LinearProgram(%d variables, %d constraints)" % (
            len(self._order),
            len(self.constraints),
        )
