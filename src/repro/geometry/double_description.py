"""The double description (Motzkin et al.) method, exact over integers.

Given a *pointed* polyhedral cone in H-representation::

    C = { x in R^d : a_i . x >= 0  for every row a_i of A }

:func:`extreme_rays` computes the finite set of extreme rays generating
``C`` (its V-representation). This is the computational heart of
CounterPoint's constraint deduction: facets of the model cone are the
extreme rays of its dual cone (see :mod:`repro.geometry.cone`).

Algorithm
---------
1. Pick ``d`` linearly independent constraint rows and build the
   simplicial cone they bound: its rays are the columns of the inverse of
   the chosen row submatrix (``a_i . r_j = delta_ij``).
2. Insert the remaining constraints one at a time. For constraint ``a``,
   split current rays into positive / zero / negative by the sign of
   ``a . r``; keep positive and zero rays, and for every *adjacent*
   positive/negative pair ``(p, n)`` emit the combination
   ``(a.p) n - (a.n) p`` (which lies on the hyperplane ``a . x = 0``).
3. Adjacency (``adjacency="bitset"``, the default) uses the classic
   cddlib combinatorial test: active-constraint sets are kept as int
   bitmasks, a candidate pair is discarded when fewer than ``d - 2``
   constraints are tight at both, or when a *third* ray's active set
   contains the pair's intersection (Fukuda & Prodon, Prop. 7 — exact
   for the extreme rays of a pointed cone, which the DD invariant
   maintains). Only on ties — more than ``d - 2`` common active
   constraints, where degenerate inputs (e.g. duplicated rows) make the
   count uninformative — does it confirm with the algebraic rank test.
   ``adjacency="algebraic"`` forces the rank-``(d-2)`` test everywhere;
   it is the reference implementation for the equivalence tests and
   removes the O(d^3) rank call from the innermost loop when unused.

Everything runs on gcd-reduced integer rows and rays (see
:mod:`repro.linalg.intkernel`), so the inner loops are plain Python int
arithmetic. Complexity is exponential in the worst case — exactly the
behaviour the paper reports for constraint deduction (Figure 9b).
"""

from repro.errors import GeometryError
from repro.linalg import bareiss_rank, bareiss_solve, int_dot, int_row
from repro.obs.trace import traced

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised on 3.9 CI
    def _popcount(mask):
        return bin(mask).count("1")


_ADJACENCY_MODES = ("bitset", "algebraic")


def _int_matrix(inequalities):
    """Validate and gcd-normalise the constraint rows to int tuples."""
    matrix = [int_row(row) for row in inequalities]
    if matrix:
        width = len(matrix[0])
        for row in matrix:
            if len(row) != width:
                raise GeometryError(
                    "ragged constraint matrix: expected width %d, got %d"
                    % (width, len(row))
                )
    return matrix


def _independent_row_subset(matrix, dim):
    """Indices of ``dim`` linearly independent rows, greedily selected."""
    chosen = []
    chosen_rows = []
    for index, row in enumerate(matrix):
        candidate = chosen_rows + [row]
        if bareiss_rank(candidate) == len(candidate):
            chosen.append(index)
            chosen_rows.append(row)
            if len(chosen) == dim:
                return chosen
    raise GeometryError(
        "cone is not pointed: constraint matrix has rank %d < dimension %d"
        % (len(chosen), dim)
    )


def _initial_simplicial_rays(matrix, chosen):
    """Rays of the simplicial cone bounded by the chosen constraints.

    Ray ``r_j`` solves ``a_i . r_j = delta_ij`` over the chosen rows, i.e.
    the rays are the columns of the inverse of the chosen submatrix.
    """
    dim = len(chosen)
    rays = []
    for j in range(dim):
        augmented = [
            list(matrix[i]) + [1 if i_pos == j else 0]
            for i_pos, i in enumerate(chosen)
        ]
        rays.append(int_row(bareiss_solve(augmented)))
    return rays


def _active_mask(matrix, processed, ray):
    """Bitmask of constraints (among ``processed`` indices) tight at
    ``ray``; bit ``i`` corresponds to ``matrix[i]``."""
    mask = 0
    for i in processed:
        if int_dot(matrix[i], ray) == 0:
            mask |= 1 << i
    return mask


def _mask_rows(matrix, mask):
    """The constraint rows whose bits are set in ``mask``."""
    rows = []
    index = 0
    while mask:
        if mask & 1:
            rows.append(matrix[index])
        mask >>= 1
        index += 1
    return rows


def _adjacent_algebraic(matrix, dim, common_mask):
    """Exact algebraic adjacency: the constraints tight at both rays must
    span a rank-``(d-2)`` subspace."""
    if _popcount(common_mask) < dim - 2:
        return False
    return bareiss_rank(_mask_rows(matrix, common_mask)) == dim - 2


def _adjacent_bitset(matrix, dim, masks, p, n):
    """Combinatorial adjacency with bitmask active sets.

    ``masks`` must cover *all* current extreme rays; the pair ``(p, n)``
    is adjacent iff no third ray's active set contains their
    intersection. Ties (more than ``d - 2`` common active constraints)
    are confirmed algebraically.
    """
    common = masks[p] & masks[n]
    n_common = _popcount(common)
    if n_common < dim - 2:
        return False
    for k, mask in enumerate(masks):
        if k == p or k == n:
            continue
        if common & mask == common:
            return False
    if n_common > dim - 2:
        # Degenerate tie (e.g. duplicated constraint rows): the bit count
        # alone cannot certify the span; fall back to the rank test.
        return bareiss_rank(_mask_rows(matrix, common)) == dim - 2
    return True


@traced("geometry.double_description")
def extreme_rays(inequalities, adjacency="bitset"):
    """Extreme rays of the pointed cone ``{x : A x >= 0}``.

    Parameters
    ----------
    inequalities:
        The rows of ``A`` (each a vector of length ``d``). Must have rank
        ``d`` (i.e. the cone must be pointed), otherwise
        :class:`GeometryError` is raised.
    adjacency:
        ``"bitset"`` (default) for the combinatorial bitmask adjacency
        test with algebraic tie-breaking, or ``"algebraic"`` for the
        rank-based reference test. Both are exact and produce the same
        ray set.

    Returns
    -------
    list of ray vectors (coprime-int tuples), one per extreme ray, in no
    particular order. The zero cone yields an empty list.
    """
    if adjacency not in _ADJACENCY_MODES:
        raise GeometryError("unknown adjacency mode %r" % (adjacency,))
    matrix = _int_matrix(inequalities)
    if not matrix:
        raise GeometryError("extreme_rays requires at least one constraint")
    dim = len(matrix[0])
    if dim == 0:
        return []
    # Drop all-zero rows (trivial constraints).
    matrix = [row for row in matrix if any(entry != 0 for entry in row)]
    matrix_rank = bareiss_rank(matrix)
    if matrix_rank < dim:
        raise GeometryError(
            "cone is not pointed: constraint matrix has rank %d < dimension %d"
            % (matrix_rank, dim)
        )

    if dim == 1:
        # One-dimensional special case: cone is {0}, a ray, or would need
        # rank 1 which is guaranteed above. Sign of constraints decides.
        has_positive = any(row[0] > 0 for row in matrix)
        has_negative = any(row[0] < 0 for row in matrix)
        if has_positive and has_negative:
            return []
        return [[1] if matrix[0][0] > 0 else [-1]] if matrix else []

    chosen = _independent_row_subset(matrix, dim)
    rays = _initial_simplicial_rays(matrix, chosen)
    processed = list(chosen)
    processed_set = set(chosen)
    # Active bitmasks relative to processed constraints.
    masks = [_active_mask(matrix, processed, ray) for ray in rays]

    for index, row in enumerate(matrix):
        if index in processed_set:
            continue
        bit = 1 << index
        values = [int_dot(row, ray) for ray in rays]
        positive = [i for i, v in enumerate(values) if v > 0]
        zero = [i for i, v in enumerate(values) if v == 0]
        negative = [i for i, v in enumerate(values) if v < 0]

        if not negative:
            # Constraint is redundant for the current cone; still record
            # activity for adjacency bookkeeping.
            processed.append(index)
            processed_set.add(index)
            masks = [
                mask | bit if values[i] == 0 else mask
                for i, mask in enumerate(masks)
            ]
            continue

        new_rays = []
        new_masks = []
        for i in positive + zero:
            new_rays.append(rays[i])
            mask = masks[i]
            if values[i] == 0:
                mask |= bit
            new_masks.append(mask)

        for p in positive:
            for n in negative:
                if adjacency == "bitset":
                    if not _adjacent_bitset(matrix, dim, masks, p, n):
                        continue
                else:
                    if not _adjacent_algebraic(matrix, dim, masks[p] & masks[n]):
                        continue
                combined = int_row(
                    [
                        values[p] * n_entry - values[n] * p_entry
                        for p_entry, n_entry in zip(rays[p], rays[n])
                    ]
                )
                new_rays.append(combined)
                new_masks.append(None)  # recomputed below

        processed.append(index)
        processed_set.add(index)
        rays = []
        masks = []
        seen = set()
        for ray, mask in zip(new_rays, new_masks):
            if ray in seen:
                continue
            seen.add(ray)
            rays.append(ray)
            if mask is None:
                mask = _active_mask(matrix, processed, ray)
            masks.append(mask)

    return [list(ray) for ray in rays]


def cone_contains_point_by_rays(rays, point):
    """Exact membership test of ``point`` in ``cone(rays)`` by solving the
    non-negative combination system with RREF + sign checks.

    Only used in tests and on small instances; the production membership
    test is the LP in :mod:`repro.cone.feasibility`.
    """
    from repro.lp import EQ, LinearProgram, Status, solve as lp_solve

    if not rays:
        return all(value == 0 for value in point)
    lp = LinearProgram()
    for i in range(len(rays)):
        lp.add_variable("f%d" % i)
    dim = len(point)
    for coord in range(dim):
        coefficients = {"f%d" % i: rays[i][coord] for i in range(len(rays))}
        lp.add_constraint(coefficients, EQ, point[coord])
    return lp_solve(lp).status == Status.OPTIMAL


__all__ = ["extreme_rays", "cone_contains_point_by_rays"]
