"""The double description (Motzkin et al.) method, exact over Fractions.

Given a *pointed* polyhedral cone in H-representation::

    C = { x in R^d : a_i . x >= 0  for every row a_i of A }

:func:`extreme_rays` computes the finite set of extreme rays generating
``C`` (its V-representation). This is the computational heart of
CounterPoint's constraint deduction: facets of the model cone are the
extreme rays of its dual cone (see :mod:`repro.geometry.cone`).

Algorithm
---------
1. Pick ``d`` linearly independent constraint rows and build the
   simplicial cone they bound: its rays are the columns of the inverse of
   the chosen row submatrix (``a_i . r_j = delta_ij``).
2. Insert the remaining constraints one at a time. For constraint ``a``,
   split current rays into positive / zero / negative by the sign of
   ``a . r``; keep positive and zero rays, and for every *adjacent*
   positive/negative pair ``(p, n)`` emit the combination
   ``(a.p) n - (a.n) p`` (which lies on the hyperplane ``a . x = 0``).
3. Adjacency uses the exact algebraic test: ``p`` and ``n`` are adjacent
   iff the constraints active (tight) at both span a rank-``(d-2)``
   subspace.

Complexity is exponential in the worst case — exactly the behaviour the
paper reports for constraint deduction (Figure 9b).
"""

from repro.errors import GeometryError
from repro.linalg import (
    as_fraction_matrix,
    dot,
    rank,
    scale_to_integers,
    solve,
)


def _independent_row_subset(matrix, dim):
    """Indices of ``dim`` linearly independent rows, greedily selected."""
    chosen = []
    chosen_rows = []
    for index, row in enumerate(matrix):
        candidate = chosen_rows + [row]
        if rank(candidate) == len(candidate):
            chosen.append(index)
            chosen_rows.append(row)
            if len(chosen) == dim:
                return chosen
    raise GeometryError(
        "cone is not pointed: constraint matrix has rank %d < dimension %d"
        % (len(chosen), dim)
    )


def _initial_simplicial_rays(matrix, chosen):
    """Rays of the simplicial cone bounded by the chosen constraints.

    Ray ``r_j`` solves ``a_i . r_j = delta_ij`` over the chosen rows, i.e.
    the rays are the columns of the inverse of the chosen submatrix.
    """
    dim = len(chosen)
    submatrix = [matrix[i] for i in chosen]
    rays = []
    for j in range(dim):
        rhs = [1 if i == j else 0 for i in range(dim)]
        rays.append(scale_to_integers(solve(submatrix, rhs)))
    return rays


def _active_set(matrix, indices, ray):
    """Constraint indices (among ``indices``) tight at ``ray``."""
    return frozenset(i for i in indices if dot(matrix[i], ray) == 0)


def _adjacent(matrix, dim, ray_a_active, ray_b_active):
    """Exact algebraic adjacency test for two extreme rays."""
    common = ray_a_active & ray_b_active
    if len(common) < dim - 2:
        return False
    submatrix = [matrix[i] for i in common]
    return rank(submatrix) == dim - 2


def extreme_rays(inequalities):
    """Extreme rays of the pointed cone ``{x : A x >= 0}``.

    Parameters
    ----------
    inequalities:
        The rows of ``A`` (each a vector of length ``d``). Must have rank
        ``d`` (i.e. the cone must be pointed), otherwise
        :class:`GeometryError` is raised.

    Returns
    -------
    list of ray vectors (coprime-integer Fractions), one per extreme ray,
    in no particular order. The zero cone yields an empty list.
    """
    matrix = as_fraction_matrix(inequalities)
    if not matrix:
        raise GeometryError("extreme_rays requires at least one constraint")
    dim = len(matrix[0])
    if dim == 0:
        return []
    # Drop all-zero rows (trivial constraints).
    matrix = [row for row in matrix if any(entry != 0 for entry in row)]
    if rank(matrix) < dim:
        raise GeometryError(
            "cone is not pointed: constraint matrix has rank %d < dimension %d"
            % (rank(matrix), dim)
        )

    if dim == 1:
        # One-dimensional special case: cone is {0}, a ray, or would need
        # rank 1 which is guaranteed above. Sign of constraints decides.
        has_positive = any(row[0] > 0 for row in matrix)
        has_negative = any(row[0] < 0 for row in matrix)
        if has_positive and has_negative:
            return []
        return [[matrix[0][0] / abs(matrix[0][0])]] if matrix else []

    chosen = _independent_row_subset(matrix, dim)
    rays = _initial_simplicial_rays(matrix, chosen)
    processed = list(chosen)
    processed_set = set(chosen)
    # active sets relative to processed constraints
    actives = [_active_set(matrix, processed, ray) for ray in rays]

    for index, row in enumerate(matrix):
        if index in processed_set:
            continue
        values = [dot(row, ray) for ray in rays]
        positive = [i for i, v in enumerate(values) if v > 0]
        zero = [i for i, v in enumerate(values) if v == 0]
        negative = [i for i, v in enumerate(values) if v < 0]

        if not negative:
            # Constraint is redundant for the current cone; still record
            # activity for adjacency bookkeeping.
            processed.append(index)
            processed_set.add(index)
            actives = [
                active | {index} if values[i] == 0 else active
                for i, active in enumerate(actives)
            ]
            continue

        new_rays = []
        new_actives = []
        for i in positive + zero:
            new_rays.append(rays[i])
            active = actives[i]
            if values[i] == 0:
                active = active | {index}
            new_actives.append(active)

        for p in positive:
            for n in negative:
                if not _adjacent(matrix, dim, actives[p], actives[n]):
                    continue
                combined = [
                    values[p] * n_entry - values[n] * p_entry
                    for p_entry, n_entry in zip(rays[p], rays[n])
                ]
                combined = scale_to_integers(combined)
                new_rays.append(combined)
                new_actives.append(None)  # recomputed below

        processed.append(index)
        processed_set.add(index)
        rays = []
        actives = []
        seen = set()
        for ray, active in zip(new_rays, new_actives):
            key = tuple(ray)
            if key in seen:
                continue
            seen.add(key)
            rays.append(ray)
            if active is None:
                active = _active_set(matrix, processed, ray)
            actives.append(active)

    return rays


def cone_contains_point_by_rays(rays, point):
    """Exact membership test of ``point`` in ``cone(rays)`` by solving the
    non-negative combination system with RREF + sign checks.

    Only used in tests and on small instances; the production membership
    test is the LP in :mod:`repro.cone.feasibility`.
    """
    from repro.lp import EQ, LinearProgram, Status, solve as lp_solve

    if not rays:
        return all(value == 0 for value in point)
    lp = LinearProgram()
    for i in range(len(rays)):
        lp.add_variable("f%d" % i)
    dim = len(point)
    for coord in range(dim):
        coefficients = {"f%d" % i: rays[i][coord] for i in range(len(rays))}
        lp.add_constraint(coefficients, EQ, point[coord])
    return lp_solve(lp).status == Status.OPTIMAL


__all__ = ["extreme_rays", "cone_contains_point_by_rays"]
