"""Homogeneous linear constraints (``normal . x == 0`` / ``normal . x >= 0``).

Model constraints in the paper are homogeneous: they compare non-negative
integer combinations of counters (e.g. Table 1's
``load.ret_stlb_miss <= load.walk_done`` is ``normal . x >= 0`` with
``normal = walk_done - ret_stlb_miss``). A :class:`ConeConstraint` stores
the normal exactly and can render itself in the paper's
``lhs <= rhs`` style given counter names.
"""

from fractions import Fraction

from repro.errors import GeometryError, LinalgError
from repro.linalg import is_zero_vector, scale_to_integers

EQUALITY = "=="
INEQUALITY = ">="


class ConeConstraint:
    """A homogeneous constraint ``normal . x == 0`` or ``normal . x >= 0``.

    The normal is canonicalised to coprime integers. Equality constraints
    additionally fix the sign so that structurally identical constraints
    compare equal.
    """

    __slots__ = ("normal", "kind")

    def __init__(self, normal, kind):
        if kind not in (EQUALITY, INEQUALITY):
            raise GeometryError("unknown constraint kind %r" % (kind,))
        normal = scale_to_integers(normal)
        if is_zero_vector(normal):
            raise GeometryError("constraint normal must be nonzero")
        if kind == EQUALITY:
            # Sign is meaningless for equalities; canonicalise it.
            for value in normal:
                if value < 0:
                    normal = [-entry for entry in normal]
                    break
                if value > 0:
                    break
        self.normal = tuple(normal)
        self.kind = kind

    # -- evaluation ----------------------------------------------------
    def evaluate(self, point):
        """Return ``normal . point`` exactly.

        Integer points take the pure-int fast path (the facet-screen hot
        loop); floats and other numerics are converted to Fractions, so
        the result is exact in every case.
        """
        normal = self.normal
        if len(normal) != len(point):
            raise LinalgError(
                "dot: length mismatch (%d vs %d)" % (len(normal), len(point))
            )
        total = 0
        for a, b in zip(normal, point):
            if not isinstance(b, (int, Fraction)):
                b = Fraction(b)
            total += a * b
        return total

    def is_satisfied_by(self, point, slack=Fraction(0)):
        """Whether ``point`` satisfies the constraint.

        ``slack`` loosens the test by an absolute margin, used when the
        point came from floating-point statistics.
        """
        value = self.evaluate(point)
        if self.kind == EQUALITY:
            return abs(value) <= slack
        return value >= -slack

    def violation(self, point):
        """Non-negative violation magnitude (zero when satisfied)."""
        value = self.evaluate(point)
        if self.kind == EQUALITY:
            return abs(value)
        return max(Fraction(0), -value)

    # -- identity ------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, ConeConstraint):
            return NotImplemented
        return self.kind == other.kind and self.normal == other.normal

    def __hash__(self):
        return hash((self.kind, self.normal))

    # -- rendering -----------------------------------------------------
    def render(self, names=None):
        """Render in the paper's ``lhs <= rhs`` style.

        Negative-coefficient terms go on the left, positive ones on the
        right, so ``normal . x >= 0`` prints as ``neg-part <= pos-part``.
        """
        names = names or ["x%d" % i for i in range(len(self.normal))]
        if len(names) != len(self.normal):
            raise GeometryError(
                "expected %d names, got %d" % (len(self.normal), len(names))
            )
        left_terms = []
        right_terms = []
        for coeff, name in zip(self.normal, names):
            if coeff == 0:
                continue
            magnitude = abs(coeff)
            term = name if magnitude == 1 else "%s*%s" % (magnitude, name)
            if coeff < 0:
                left_terms.append(term)
            else:
                right_terms.append(term)
        left = " + ".join(left_terms) if left_terms else "0"
        right = " + ".join(right_terms) if right_terms else "0"
        comparator = "==" if self.kind == EQUALITY else "<="
        return "%s %s %s" % (left, comparator, right)

    def __repr__(self):
        return "ConeConstraint(%s, %r)" % (list(self.normal), self.kind)
