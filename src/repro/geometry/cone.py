"""Polyhedral cones with exact V↔H conversion.

A :class:`Cone` is created from generators (the µpath counter signatures)
and can produce its complete H-representation — the paper's *model
constraints* — as :class:`~repro.geometry.halfspace.ConeConstraint`
objects. The conversion follows Section 6 of the paper:

1. deduplicate and GCD-normalise the generators,
2. find the linear span; its orthogonal complement yields the *equality*
   constraints (Gaussian elimination step),
3. project the generators into span coordinates, where the cone is
   full-dimensional,
4. facets of a full-dimensional cone are the extreme rays of its dual
   cone ``{y : y . g >= 0 for all generators g}`` — computed exactly with
   the double description method — and are lifted back to ambient
   coordinates.

This is mathematically equivalent to the paper's "convex hull of
``{0} ∪ generators``, keep the faces through the origin" construction,
but avoids general convex-hull machinery.
"""

from fractions import Fraction

from repro.errors import GeometryError
from repro.geometry.double_description import extreme_rays
from repro.geometry.halfspace import EQUALITY, INEQUALITY, ConeConstraint
from repro.linalg import (
    as_fraction_matrix,
    as_fraction_vector,
    dot,
    is_zero_vector,
    nullspace,
    rank,
    row_space_basis,
    rref,
    scale_to_integers,
    solve,
)


def coordinates_in_basis(basis, vector):
    """Coordinates of ``vector`` in the span of ``basis`` rows.

    Solves ``basis^T c = vector`` exactly; raises :class:`GeometryError`
    if ``vector`` is outside the span.
    """
    dim = len(basis)
    augmented = []
    for j in range(len(vector)):
        augmented.append([basis[k][j] for k in range(dim)] + [vector[j]])
    reduced, pivots = rref(augmented)
    if any(col == dim for col in pivots):
        raise GeometryError("vector lies outside the basis span")
    coords = [Fraction(0)] * dim
    for row_index, pivot_col in enumerate(pivots):
        coords[pivot_col] = reduced[row_index][dim]
    return coords


class Cone:
    """A polyhedral cone ``{ sum f_p * g_p : f_p >= 0 }`` in R^N.

    Parameters
    ----------
    generators:
        Iterable of ambient-dimension vectors. Zero vectors are dropped;
        duplicates (up to positive scaling) are merged.
    ambient_dim:
        Required when ``generators`` may be empty.
    """

    def __init__(self, generators, ambient_dim=None):
        generators = [as_fraction_vector(g) for g in generators]
        if ambient_dim is None:
            if not generators:
                raise GeometryError("ambient_dim required for an empty generator set")
            ambient_dim = len(generators[0])
        for g in generators:
            if len(g) != ambient_dim:
                raise GeometryError(
                    "generator of length %d in ambient dimension %d" % (len(g), ambient_dim)
                )
        self.ambient_dim = ambient_dim
        seen = set()
        unique = []
        for g in generators:
            if is_zero_vector(g):
                continue
            normalized = scale_to_integers(g)
            key = tuple(normalized)
            if key not in seen:
                seen.add(key)
                unique.append(normalized)
        self.generators = unique

    @classmethod
    def from_generators(cls, generators, ambient_dim=None):
        return cls(generators, ambient_dim=ambient_dim)

    # -- basic structure ------------------------------------------------
    @property
    def dim(self):
        """Dimension of the cone's linear span."""
        if not self.generators:
            return 0
        return rank(self.generators)

    def span_basis(self):
        """Canonical basis (RREF rows) of the cone's linear span."""
        if not self.generators:
            return []
        return row_space_basis(self.generators)

    # -- H-representation -----------------------------------------------
    def facet_constraints(self):
        """The complete, irredundant H-representation of the cone.

        Returns a list of :class:`ConeConstraint`; equalities describe the
        span, inequalities the facets within the span. A point lies in the
        cone iff it satisfies all returned constraints (Minkowski–Weyl).
        """
        n = self.ambient_dim
        if not self.generators:
            # The zero cone: x == 0 componentwise.
            constraints = []
            for i in range(n):
                normal = [Fraction(0)] * n
                normal[i] = Fraction(1)
                constraints.append(ConeConstraint(normal, EQUALITY))
            return constraints

        generator_matrix = as_fraction_matrix(self.generators)
        constraints = [
            ConeConstraint(normal, EQUALITY) for normal in nullspace(generator_matrix)
        ]

        basis = self.span_basis()
        dim = len(basis)
        coords = [coordinates_in_basis(basis, g) for g in self.generators]

        if dim == 1:
            # Within a 1-D span the cone is either a ray or the whole
            # line. A ray has exactly one facet: the halfline itself.
            signs = {1 if c[0] > 0 else -1 for c in coords}
            if len(signs) == 2:
                return constraints  # whole line: span equalities suffice
            sign = signs.pop()
            normal = [sign * entry for entry in basis[0]]
            constraints.append(ConeConstraint(normal, INEQUALITY))
            return constraints

        # A facet normal y in span coordinates means "y . c(x) >= 0". To
        # express it on ambient points x = B^T c we need n with B n = y;
        # choosing n in the span gives n = B^T (B B^T)^{-1} y.
        gram = [[dot(basis[i], basis[j]) for j in range(dim)] for i in range(dim)]
        dual_rays = extreme_rays(coords)
        for ray in dual_rays:
            weights = solve(gram, ray)
            normal = [Fraction(0)] * n
            for k in range(dim):
                if weights[k] == 0:
                    continue
                for j in range(n):
                    normal[j] += weights[k] * basis[k][j]
            constraints.append(ConeConstraint(normal, INEQUALITY))
        return constraints

    # -- membership ------------------------------------------------------
    def contains(self, point, backend="exact"):
        """Exact membership test via a feasibility LP over flows."""
        from repro.lp import EQ, LinearProgram, Status, solve

        point = as_fraction_vector(point)
        if len(point) != self.ambient_dim:
            raise GeometryError(
                "point of length %d in ambient dimension %d"
                % (len(point), self.ambient_dim)
            )
        if not self.generators:
            return is_zero_vector(point)
        lp = LinearProgram()
        flow_names = []
        for i in range(len(self.generators)):
            name = "f%d" % i
            lp.add_variable(name)
            flow_names.append(name)
        for coord in range(self.ambient_dim):
            coefficients = {
                flow_names[i]: self.generators[i][coord]
                for i in range(len(self.generators))
                if self.generators[i][coord] != 0
            }
            if not coefficients:
                if point[coord] != 0:
                    return False
                continue
            lp.add_constraint(coefficients, EQ, point[coord])
        return solve(lp, backend=backend).status == Status.OPTIMAL

    def is_subset_of(self, other, backend="exact"):
        """True iff every generator of ``self`` lies in ``other``."""
        if self.ambient_dim != other.ambient_dim:
            raise GeometryError("dimension mismatch in cone comparison")
        return all(other.contains(g, backend=backend) for g in self.generators)

    def is_generator_redundant(self, index):
        """Whether generator ``index`` lies in the cone of the others."""
        others = [g for i, g in enumerate(self.generators) if i != index]
        reduced = Cone(others, ambient_dim=self.ambient_dim)
        return reduced.contains(self.generators[index])

    def irredundant_generators(self, backend="exact"):
        """Generators with cone-interior members removed (Section 6,
        step 3 of the constraint-deduction pipeline).

        ``backend="scipy"`` prunes with float LPs — much faster, but a
        borderline generator may be misclassified. Callers that need an
        exact final answer (see
        :func:`repro.cone.constraints.deduce_constraints`) verify the
        resulting H-representation against the original generators and
        restore any casualty.
        """
        kept = list(self.generators)
        index = 0
        while index < len(kept):
            candidate = kept[index]
            rest = kept[:index] + kept[index + 1 :]
            if rest and Cone(rest, ambient_dim=self.ambient_dim).contains(
                candidate, backend=backend
            ):
                kept.pop(index)
            else:
                index += 1
        return kept

    def __repr__(self):
        return "Cone(%d generators in R^%d, dim %d)" % (
            len(self.generators),
            self.ambient_dim,
            self.dim,
        )


def cone_equal(cone_a, cone_b):
    """Exact equality of two cones (mutual inclusion)."""
    return cone_a.is_subset_of(cone_b) and cone_b.is_subset_of(cone_a)
