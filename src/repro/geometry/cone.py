"""Polyhedral cones with exact V↔H conversion.

A :class:`Cone` is created from generators (the µpath counter signatures)
and can produce its complete H-representation — the paper's *model
constraints* — as :class:`~repro.geometry.halfspace.ConeConstraint`
objects. The conversion follows Section 6 of the paper:

1. deduplicate and GCD-normalise the generators,
2. find the linear span; its orthogonal complement yields the *equality*
   constraints (Gaussian elimination step),
3. project the generators into span coordinates, where the cone is
   full-dimensional,
4. facets of a full-dimensional cone are the extreme rays of its dual
   cone ``{y : y . g >= 0 for all generators g}`` — computed exactly with
   the double description method — and are lifted back to ambient
   coordinates.

This is mathematically equivalent to the paper's "convex hull of
``{0} ∪ generators``, keep the faces through the origin" construction,
but avoids general convex-hull machinery.

Generators are stored as gcd-reduced plain-int vectors (the integer fast
path), and membership LPs can bypass the modelling layer entirely on the
``"scipy"`` backend via a cached float matrix — the win that makes the
interior-removal step of constraint deduction cheap.
"""

from fractions import Fraction

from repro.errors import GeometryError
from repro.geometry.double_description import extreme_rays
from repro.geometry.halfspace import EQUALITY, INEQUALITY, ConeConstraint
from repro.linalg import (
    as_fraction_vector,
    int_dot,
    int_row,
    is_zero_vector,
    rank,
    row_space_basis,
    rref_fast,
    solve,
)


def coordinates_in_basis(basis, vector):
    """Coordinates of ``vector`` in the span of ``basis`` rows.

    Solves ``basis^T c = vector`` exactly; raises :class:`GeometryError`
    if ``vector`` is outside the span.
    """
    return coordinates_in_basis_many(basis, [vector])[0]


def coordinates_in_basis_many(basis, vectors):
    """Span coordinates of many vectors in one elimination.

    One RREF of ``[basis^T | v_1 ... v_k]`` replaces ``k`` independent
    solves — the batched fast path for projecting all generators at once.
    Raises :class:`GeometryError` if any vector lies outside the span.
    """
    dim = len(basis)
    n = len(basis[0]) if basis else 0
    augmented = []
    for j in range(n):
        row = [basis[k][j] for k in range(dim)]
        row.extend(vector[j] for vector in vectors)
        augmented.append(row)
    reduced, pivots = rref_fast(augmented)
    if any(col >= dim for col in pivots):
        raise GeometryError("vector lies outside the basis span")
    results = []
    for offset in range(len(vectors)):
        coords = [Fraction(0)] * dim
        for row_index, pivot_col in enumerate(pivots):
            coords[pivot_col] = reduced[row_index][dim + offset]
        results.append(coords)
    return results


def _membership_lp_exact(generators, point, backend):
    """Does ``point`` lie in ``cone(generators)``? Direct LP build over
    flow variables (no Cone construction)."""
    from repro.lp import EQ, LinearProgram, Status, solve as lp_solve

    lp = LinearProgram()
    flow_names = []
    for i in range(len(generators)):
        name = "f%d" % i
        lp.add_variable(name)
        flow_names.append(name)
    for coord in range(len(point)):
        coefficients = {
            flow_names[i]: generators[i][coord]
            for i in range(len(generators))
            if generators[i][coord] != 0
        }
        if not coefficients:
            if point[coord] != 0:
                return False
            continue
        lp.add_constraint(coefficients, EQ, point[coord])
    return lp_solve(lp, backend=backend).status == Status.OPTIMAL


def _membership_scipy(generator_array, point):
    """Float membership LP straight on ``scipy.optimize.linprog``.

    ``generator_array`` is the cached ``N x P`` float matrix (one column
    per generator). Much faster than building a
    :class:`~repro.lp.problem.LinearProgram` per query; exactness is the
    caller's concern (same contract as the ``"scipy"`` LP backend).
    """
    import numpy as np
    from scipy.optimize import linprog

    b_eq = np.asarray([float(value) for value in point])
    result = linprog(
        np.zeros(generator_array.shape[1]),
        A_eq=generator_array,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if result.status == 2:
        return False
    if not result.success:
        raise GeometryError("HiGHS membership LP failed: %s" % (result.message,))
    return True


class Cone:
    """A polyhedral cone ``{ sum f_p * g_p : f_p >= 0 }`` in R^N.

    Parameters
    ----------
    generators:
        Iterable of ambient-dimension vectors. Zero vectors are dropped;
        duplicates (up to positive scaling) are merged. Stored as
        gcd-reduced int vectors.
    ambient_dim:
        Required when ``generators`` may be empty.
    """

    def __init__(self, generators, ambient_dim=None):
        generators = [int_row(g) for g in generators]
        if ambient_dim is None:
            if not generators:
                raise GeometryError("ambient_dim required for an empty generator set")
            ambient_dim = len(generators[0])
        for g in generators:
            if len(g) != ambient_dim:
                raise GeometryError(
                    "generator of length %d in ambient dimension %d" % (len(g), ambient_dim)
                )
        self.ambient_dim = ambient_dim
        seen = set()
        unique = []
        for g in generators:
            if not any(g):
                continue
            if g not in seen:
                seen.add(g)
                unique.append(list(g))
        self.generators = unique
        self._scipy_matrix = None
        self._scipy_model = None
        self._scipy_model_built = False

    @classmethod
    def from_generators(cls, generators, ambient_dim=None):
        return cls(generators, ambient_dim=ambient_dim)

    def __getstate__(self):
        # The persistent HiGHS model wraps a C++ handle that cannot
        # cross pickle boundaries (process pools, the on-disk cone
        # cache); it and the float matrix are lazily rebuilt on use.
        state = dict(self.__dict__)
        state["_scipy_matrix"] = None
        state["_scipy_model"] = None
        state["_scipy_model_built"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- basic structure ------------------------------------------------
    @property
    def dim(self):
        """Dimension of the cone's linear span."""
        if not self.generators:
            return 0
        return rank(self.generators)

    def span_basis(self):
        """Canonical basis (RREF rows) of the cone's linear span."""
        if not self.generators:
            return []
        return row_space_basis(self.generators)

    # -- H-representation -----------------------------------------------
    def facet_constraints(self):
        """The complete, irredundant H-representation of the cone.

        Returns a list of :class:`ConeConstraint`; equalities describe the
        span, inequalities the facets within the span. A point lies in the
        cone iff it satisfies all returned constraints (Minkowski–Weyl).
        """
        n = self.ambient_dim
        if not self.generators:
            # The zero cone: x == 0 componentwise.
            constraints = []
            for i in range(n):
                normal = [Fraction(0)] * n
                normal[i] = Fraction(1)
                constraints.append(ConeConstraint(normal, EQUALITY))
            return constraints

        # One fraction-free elimination yields the span basis, and its
        # free-variable construction the orthogonal-complement equalities.
        reduced, pivots = rref_fast(self.generators)
        dim = len(pivots)
        pivot_set = set(pivots)
        constraints = []
        for free in range(n):
            if free in pivot_set:
                continue
            normal = [Fraction(0)] * n
            normal[free] = Fraction(1)
            for row_index, pivot_col in enumerate(pivots):
                normal[pivot_col] = -reduced[row_index][free]
            constraints.append(ConeConstraint(normal, EQUALITY))

        # Scaling the basis rows to coprime ints changes only the span
        # coordinates (by a positive diagonal map) — the lifted facet
        # normals are unchanged — and makes the Gram matrix pure-int.
        basis = [list(int_row(reduced[k])) for k in range(dim)]
        coords = coordinates_in_basis_many(basis, self.generators)

        if dim == 1:
            # Within a 1-D span the cone is either a ray or the whole
            # line. A ray has exactly one facet: the halfline itself.
            signs = {1 if c[0] > 0 else -1 for c in coords}
            if len(signs) == 2:
                return constraints  # whole line: span equalities suffice
            sign = signs.pop()
            normal = [sign * entry for entry in basis[0]]
            constraints.append(ConeConstraint(normal, INEQUALITY))
            return constraints

        # A facet normal y in span coordinates means "y . c(x) >= 0". To
        # express it on ambient points x = B^T c we need n with B n = y;
        # choosing n in the span gives n = B^T (B B^T)^{-1} y.
        gram = [[int_dot(basis[i], basis[j]) for j in range(dim)] for i in range(dim)]
        dual_rays = extreme_rays(coords)
        for ray in dual_rays:
            weights = solve(gram, ray)
            normal = [Fraction(0)] * n
            for k in range(dim):
                if weights[k] == 0:
                    continue
                for j in range(n):
                    normal[j] += weights[k] * basis[k][j]
            constraints.append(ConeConstraint(normal, INEQUALITY))
        return constraints

    # -- membership ------------------------------------------------------
    def _generator_array(self):
        """Cached ``N x P`` float matrix of generators (scipy fast path)."""
        import numpy as np

        if self._scipy_matrix is None:
            self._scipy_matrix = np.array(self.generators, dtype=float).T
        return self._scipy_matrix

    def _feasibility_model(self):
        """Cached persistent HiGHS model over the generator matrix
        (``None`` when the fast bindings are unavailable)."""
        if not self._scipy_model_built:
            from repro.lp.highs_fast import make_feasibility_model

            self._scipy_model = make_feasibility_model(self._generator_array())
            self._scipy_model_built = True
        return self._scipy_model

    def contains(self, point, backend="exact"):
        """Exact membership test via a feasibility LP over flows."""
        from repro.lp import highs_fast

        point = as_fraction_vector(point)
        if len(point) != self.ambient_dim:
            raise GeometryError(
                "point of length %d in ambient dimension %d"
                % (len(point), self.ambient_dim)
            )
        if not self.generators:
            return is_zero_vector(point)
        if backend == "scipy":
            model = self._feasibility_model()
            if model is not None:
                status = model.solve([float(v) for v in point])
                if status == highs_fast.OPTIMAL:
                    return True
                if status in (highs_fast.INFEASIBLE, highs_fast.UNBOUNDED):
                    return False
                raise GeometryError("HiGHS membership solve failed")
            return _membership_scipy(self._generator_array(), point)
        return _membership_lp_exact(self.generators, point, backend)

    def is_subset_of(self, other, backend="exact"):
        """True iff every generator of ``self`` lies in ``other``."""
        if self.ambient_dim != other.ambient_dim:
            raise GeometryError("dimension mismatch in cone comparison")
        return all(other.contains(g, backend=backend) for g in self.generators)

    def is_generator_redundant(self, index):
        """Whether generator ``index`` lies in the cone of the others."""
        others = [g for i, g in enumerate(self.generators) if i != index]
        if not others:
            return False
        return _membership_lp_exact(others, self.generators[index], "exact")

    def irredundant_generators(self, backend="exact"):
        """Generators with cone-interior members removed (Section 6,
        step 3 of the constraint-deduction pipeline).

        ``backend="scipy"`` prunes with float LPs — much faster, but a
        borderline generator may be misclassified. Callers that need an
        exact final answer (see
        :func:`repro.cone.constraints.deduce_constraints`) verify the
        resulting H-representation against the original generators and
        restore any casualty.

        Membership LPs are issued directly against the kept-generator
        matrix (no intermediate ``Cone`` rebuilds). On the ``"scipy"``
        backend one persistent HiGHS model serves the whole O(P^2) loop:
        testing "candidate in cone(kept - candidate)" is the same matrix
        with the candidate's column pinned to zero, and removed
        generators simply stay pinned.
        """
        if backend == "scipy" and len(self.generators) > 1:
            from repro.lp import highs_fast

            model = self._feasibility_model()
            if model is not None:
                kept_flags = [True] * len(self.generators)
                n_kept = len(self.generators)
                for i, candidate in enumerate(self.generators):
                    if n_kept <= 1:
                        break
                    model.exclude_column(i)
                    rhs = [float(v) for v in candidate]
                    if model.solve(rhs) == highs_fast.OPTIMAL:
                        kept_flags[i] = False  # redundant: stays pinned
                        n_kept -= 1
                    else:
                        model.include_column(i)
                # The model is shared with contains(): restore the
                # pinned columns before handing it back.
                for i, keep in enumerate(kept_flags):
                    if not keep:
                        model.include_column(i)
                return [
                    list(g)
                    for g, keep in zip(self.generators, kept_flags)
                    if keep
                ]
        kept = list(self.generators)
        index = 0
        while index < len(kept):
            candidate = kept[index]
            rest = kept[:index] + kept[index + 1 :]
            if not rest:
                break
            if backend == "scipy":
                import numpy as np

                member = _membership_scipy(
                    np.array(rest, dtype=float).T, candidate
                )
            else:
                member = _membership_lp_exact(rest, candidate, backend)
            if member:
                kept.pop(index)
            else:
                index += 1
        return kept

    def __repr__(self):
        return "Cone(%d generators in R^%d, dim %d)" % (
            len(self.generators),
            self.ambient_dim,
            self.dim,
        )


def cone_equal(cone_a, cone_b):
    """Exact equality of two cones (mutual inclusion)."""
    return cone_a.is_subset_of(cone_b) and cone_b.is_subset_of(cone_a)
