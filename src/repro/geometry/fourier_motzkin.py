"""Fourier–Motzkin elimination, used to cross-check double description.

Fourier–Motzkin projects a system of homogeneous inequalities onto a
prefix of its variables by eliminating one variable at a time. Combining
it with the counter-flow equalities gives an *independent* route from
µpath signatures to model constraints: eliminate the flow variables from
``{ (v, f) : v = S^T f, f >= 0 }`` and read off the inequalities on ``v``.

The method is doubly exponential, so it is only suitable for the small
instances used in tests — which is exactly its role here: the test suite
asserts that Fourier–Motzkin and the double-description facet enumeration
describe the same cone.
"""

from fractions import Fraction

from repro.errors import GeometryError
from repro.linalg import as_fraction_matrix, is_zero_vector, normalize_integer_vector


def _dedupe(rows):
    seen = set()
    unique = []
    for row in rows:
        if is_zero_vector(row):
            continue
        key = tuple(normalize_integer_vector(row)), _sign_class(row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _sign_class(row):
    """Disambiguate row vs -row after normalisation (direction matters
    for inequalities)."""
    for value in row:
        if value > 0:
            return 1
        if value < 0:
            return -1
    return 0


def fourier_motzkin_project(inequalities, n_keep):
    """Project ``{z : A z >= 0}`` onto its first ``n_keep`` coordinates.

    Parameters
    ----------
    inequalities:
        Rows ``a`` meaning ``a . z >= 0``.
    n_keep:
        Number of leading coordinates to keep; all later coordinates are
        eliminated (in reverse order).

    Returns
    -------
    A list of inequality normals over the first ``n_keep`` coordinates
    describing the projection. May contain redundant rows.
    """
    rows = as_fraction_matrix(inequalities)
    if rows and n_keep > len(rows[0]):
        raise GeometryError("n_keep exceeds the system's dimension")
    if not rows:
        return []
    width = len(rows[0])
    for eliminate in range(width - 1, n_keep - 1, -1):
        positive = [row for row in rows if row[eliminate] > 0]
        negative = [row for row in rows if row[eliminate] < 0]
        unaffected = [row for row in rows if row[eliminate] == 0]
        combined = []
        for pos in positive:
            for neg in negative:
                # Scale so the eliminated coefficient cancels:
                #   pos[e] * neg - neg[e] * pos  has zero at position e
                row = [
                    pos[eliminate] * neg_entry - neg[eliminate] * pos_entry
                    for pos_entry, neg_entry in zip(pos, neg)
                ]
                combined.append(row)
        rows = _dedupe(unaffected + combined)
    return [row[:n_keep] for row in rows]


def cone_h_representation_by_fm(generators, ambient_dim=None):
    """H-representation of ``cone(generators)`` via Fourier–Motzkin.

    Builds the lifted system over ``(v, f)`` — counter values and flows —
    and eliminates the flows. Equalities appear as paired rows ``a`` and
    ``-a``; they are returned as inequalities (callers that need equality
    detection can pair them up).

    Only for small instances (tests); production code uses
    :meth:`repro.geometry.Cone.facet_constraints`.
    """
    generators = as_fraction_matrix(generators)
    if ambient_dim is None:
        if not generators:
            raise GeometryError("ambient_dim required for an empty generator set")
        ambient_dim = len(generators[0])
    n_flows = len(generators)
    width = ambient_dim + n_flows
    rows = []
    # v_j - sum_i S[i][j] f_i == 0, as two inequalities each.
    for j in range(ambient_dim):
        row = [Fraction(0)] * width
        row[j] = Fraction(1)
        for i in range(n_flows):
            row[ambient_dim + i] = -generators[i][j]
        rows.append(row)
        rows.append([-entry for entry in row])
    # f_i >= 0
    for i in range(n_flows):
        row = [Fraction(0)] * width
        row[ambient_dim + i] = Fraction(1)
        rows.append(row)
    return fourier_motzkin_project(rows, ambient_dim)
