"""Set-associative cache substrate.

The Haswell ``page_walker_loads.*`` HECs classify each page-walker load
by where in the data-cache hierarchy it hit (L1/L2/L3/memory). To emit
those counters the MMU simulator needs an actual cache hierarchy for
page-table-entry lines; this subpackage provides it:

* :class:`SetAssociativeCache` — a single LRU set-associative cache,
* :class:`CacheHierarchy` — an inclusive L1/L2/L3 stack whose
  :meth:`~CacheHierarchy.access` returns the level that served the line.
"""

from repro.cache.cache import CacheHierarchy, SetAssociativeCache

__all__ = ["CacheHierarchy", "SetAssociativeCache"]
