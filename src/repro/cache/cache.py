"""LRU set-associative caches and a three-level hierarchy."""

from collections import OrderedDict

from repro.errors import ConfigurationError

MEMORY_LEVEL = "mem"


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Addresses are byte addresses; lines are ``line_size`` bytes. The
    cache tracks tags only (no data), which is all the simulator needs.
    """

    def __init__(self, total_bytes, ways, line_size=64, name="cache"):
        if total_bytes <= 0 or ways <= 0 or line_size <= 0:
            raise ConfigurationError("cache geometry must be positive")
        lines = total_bytes // line_size
        if lines % ways != 0 or lines == 0:
            raise ConfigurationError(
                "cache of %d lines cannot be %d-way set associative" % (lines, ways)
            )
        self.name = name
        self.line_size = line_size
        self.ways = ways
        self.n_sets = lines // ways
        # set index -> OrderedDict of tag -> None (LRU order: oldest first)
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address):
        line = address // self.line_size
        return line % self.n_sets, line // self.n_sets

    def lookup(self, address):
        """Probe without modifying replacement state or inserting."""
        index, tag = self._locate(address)
        return tag in self._sets[index]

    def access(self, address):
        """Access a byte address; returns True on hit. Misses insert the
        line, evicting LRU if needed."""
        index, tag = self._locate(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        cache_set[tag] = None
        if len(cache_set) > self.ways:
            cache_set.popitem(last=False)
        return False

    def invalidate(self, address):
        index, tag = self._locate(address)
        self._sets[index].pop(tag, None)

    def reset_stats(self):
        self.hits = 0
        self.misses = 0

    def __repr__(self):
        return "SetAssociativeCache(%s: %d sets x %d ways)" % (
            self.name,
            self.n_sets,
            self.ways,
        )


class CacheHierarchy:
    """An inclusive L1/L2/L3 hierarchy for page-walker loads.

    :meth:`access` returns ``"l1"``, ``"l2"``, ``"l3"`` or ``"mem"`` —
    the level that served the request — and fills all levels above the
    hit level (inclusive fill).
    """

    LEVELS = ("l1", "l2", "l3")

    def __init__(self, l1=None, l2=None, l3=None):
        self.l1 = l1 or SetAssociativeCache(32 * 1024, 8, name="L1D")
        self.l2 = l2 or SetAssociativeCache(256 * 1024, 8, name="L2")
        self.l3 = l3 or SetAssociativeCache(2 * 1024 * 1024, 16, name="L3")

    def access(self, address):
        """Access a byte address; returns the serving level name."""
        if self.l1.access(address):
            return "l1"
        # l1.access already filled L1 on miss; probe lower levels.
        if self.l2.access(address):
            return "l2"
        if self.l3.access(address):
            return "l3"
        return MEMORY_LEVEL

    def warm(self, addresses):
        """Pre-touch addresses (e.g. to model warmed page-table lines)."""
        for address in addresses:
            self.access(address)

    def reset_stats(self):
        for cache in (self.l1, self.l2, self.l3):
            cache.reset_stats()

    def __repr__(self):
        return "CacheHierarchy(L1=%r, L2=%r, L3=%r)" % (self.l1, self.l2, self.l3)
