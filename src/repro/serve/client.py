"""A stdlib HTTP client for the :mod:`repro.serve` daemon.

:class:`ServeClient` speaks the daemon's JSON protocol over
:mod:`urllib.request` — no third-party dependencies, usable from
scripts, tests, and the ``repro submit/status/fetch/cancel`` CLI
commands. The mapping from HTTP to Python mirrors the daemon's:

* 429 → :class:`~repro.errors.QueueFullError` carrying the server's
  ``Retry-After`` hint (so a polite client can
  ``time.sleep(error.retry_after)`` and resubmit);
* any other 4xx/5xx → :class:`~repro.errors.ServeError` with the
  server's error message;
* a fetched result parses back into the same
  :class:`~repro.plan.engine.PlanResult` type a local
  ``pipeline.run(plan)`` returns (:meth:`ServeClient.result`), or can
  be kept as canonical text for byte-level comparison
  (:meth:`ServeClient.result_text`).
"""

import json
import time
import urllib.error
import urllib.request

from repro.errors import QueueFullError, ServeError


class ServeClient:
    """Submit, watch, fetch, and cancel plans on a serve daemon.

    Parameters
    ----------
    url:
        Daemon base URL, e.g. ``http://127.0.0.1:8651``.
    tenant:
        Default tenant identity sent with submissions (overridable per
        call).
    timeout:
        Socket timeout in seconds for each request (event streams use
        their own, longer deadline).
    """

    def __init__(self, url, tenant="anon", timeout=30.0):
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _request(self, method, path, body=None, timeout=None):
        """One round-trip; returns ``(status, headers, bytes)``."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return response.status, response.headers, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.headers, error.read()
        except urllib.error.URLError as error:
            raise ServeError(
                "cannot reach serve daemon at %s: %s"
                % (self.url, error.reason)
            ) from None

    def _json(self, method, path, body=None):
        status, headers, raw = self._request(method, path, body=body)
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            document = {"error": raw.decode("utf-8", "replace")}
        if status == 429:
            retry_after = float(
                document.get("retry_after")
                or headers.get("Retry-After") or 1.0
            )
            raise QueueFullError(
                document.get("error", "server queue is full"),
                retry_after=retry_after,
            )
        if status >= 400:
            raise ServeError(
                "%s %s failed (%d): %s"
                % (method, path, status, document.get("error", "unknown"))
            )
        return document

    # -- protocol ----------------------------------------------------------
    def submit(self, plan, tenant=None, priority="normal"):
        """POST a plan; returns the job status dict (with ``"id"``).

        ``plan`` may be a :class:`~repro.plan.Plan`, a plan dict, or
        plan JSON text. Raises :class:`~repro.errors.QueueFullError`
        (with ``retry_after``) when the daemon applies backpressure.
        """
        if hasattr(plan, "to_dict"):
            plan = plan.to_dict()
        elif isinstance(plan, str):
            plan = json.loads(plan)
        return self._json("POST", "/v1/plans", body={
            "plan": plan,
            "tenant": tenant or self.tenant,
            "priority": priority,
        })

    def status(self, job_id):
        """The job's status document."""
        return self._json("GET", "/v1/plans/%s" % job_id)

    def jobs(self):
        """All jobs the daemon knows, most recent first."""
        return self._json("GET", "/v1/plans")["jobs"]

    def result_text(self, job_id):
        """The canonical result bundle as JSON *text* — byte-identical
        for byte-identical work (the dedup acceptance check)."""
        status, _, raw = self._request(
            "GET", "/v1/plans/%s/result" % job_id
        )
        if status == 409:
            document = json.loads(raw.decode("utf-8"))
            raise ServeError(
                "job %s has no result yet (state %s)"
                % (job_id, document.get("state", "unknown"))
            )
        if status >= 400:
            raise ServeError(
                "fetching result of %s failed (%d)" % (job_id, status)
            )
        return raw.decode("utf-8")

    def result(self, job_id):
        """The finished job's :class:`~repro.plan.engine.PlanResult`."""
        from repro.plan.engine import PlanResult

        return PlanResult.from_json(self.result_text(job_id))

    def cancel(self, job_id):
        """Request cooperative cancellation; returns the status doc."""
        return self._json("DELETE", "/v1/plans/%s" % job_id)

    def events(self, job_id, after=0, timeout=60.0):
        """Iterate the job's NDJSON event stream (dicts, in sequence
        order) starting at event ``after``; ends when the job does."""
        request = urllib.request.Request(
            "%s/v1/plans/%s/events?after=%d&timeout=%d"
            % (self.url, job_id, after, int(timeout)),
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout + self.timeout
            ) as response:
                if response.status >= 400:
                    raise ServeError(
                        "event stream for %s failed (%d)"
                        % (job_id, response.status)
                    )
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise ServeError(
                "event stream for %s failed (%d)" % (job_id, error.code)
            ) from None
        except urllib.error.URLError as error:
            raise ServeError(
                "cannot reach serve daemon at %s: %s"
                % (self.url, error.reason)
            ) from None

    def wait(self, job_id, timeout=300.0, poll=0.1):
        """Block until the job reaches a terminal state; returns the
        final status document (raises :class:`ServeError` on timeout).
        """
        deadline = time.time() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.time() > deadline:
                raise ServeError(
                    "job %s still %s after %rs"
                    % (job_id, status["state"], timeout)
                )
            time.sleep(poll)

    def run(self, plan, tenant=None, priority="normal", timeout=300.0):
        """Submit, wait, and fetch in one call — the remote analogue of
        ``pipeline.run(plan)``. Raises :class:`ServeError` with the
        structured per-op errors when the job failed."""
        job_id = self.submit(plan, tenant=tenant, priority=priority)["id"]
        status = self.wait(job_id, timeout=timeout)
        if status["state"] != "done":
            raise ServeError(
                "job %s ended %s: %s"
                % (job_id, status["state"],
                   status.get("errors") or status.get("error", "unknown"))
            )
        return self.result(job_id)

    def server_stats(self):
        """The daemon's /v1/stats document."""
        return self._json("GET", "/v1/stats")

    def healthy(self):
        """Whether the daemon answers its liveness probe."""
        try:
            return bool(self._json("GET", "/v1/healthz").get("ok"))
        except ServeError:
            return False

    def __repr__(self):
        return "ServeClient(%r, tenant=%r)" % (self.url, self.tenant)


__all__ = ["ServeClient"]
