"""The multi-tenant analysis daemon: plans in, verdicts out, shared.

:class:`PlanService` is the HTTP-free core (tests drive it directly):
clients submit plan JSON and get a job id back; jobs advance through
``queued → compiling → running → done/failed/cancelled``, emitting a
monotonically-sequenced event log that the HTTP layer serves as
NDJSON or long-poll; finished jobs expose a *canonical*
:class:`~repro.plan.engine.PlanResult` bundle. Everything analysis-
shaped is shared: one pipeline, one
:class:`~repro.results.session.AnalysisSession` (with a
:class:`~repro.results.store.ClaimTable` so concurrent jobs never
compute the same cell), one
:class:`~repro.serve.queue.QueueScheduler` giving weighted fair
service across tenants — the millionth user's sweep is mostly cache
hits.

The canonical result bundle contains the op results only — no
``stats`` or ``timing``, which differ between cold and warm runs — and
is serialized with sorted keys, so re-submitting a completed plan
returns a **byte-identical** document (with 0 newly computed cells).
Run statistics live on the *status* endpoint instead.

:class:`ServeDaemon` wraps the service in a stdlib
:class:`~http.server.ThreadingHTTPServer`:

========  ============================  =======================================
method    path                          meaning
========  ============================  =======================================
POST      /v1/plans                     submit ``{"plan": ..., "tenant": ...,
                                        "priority": ...}`` → 202 + job id;
                                        429 + Retry-After when the queue is full
GET       /v1/plans                     list jobs (most recent first)
GET       /v1/plans/<id>                job status (state, progress, stats,
                                        structured errors)
GET       /v1/plans/<id>/events         NDJSON event stream (``?after=SEQ``
                                        resumes; closes when the job ends)
GET       /v1/plans/<id>/result         the canonical PlanResult bundle
                                        (409 until the job is done)
DELETE    /v1/plans/<id>                cancel (cooperative; already-terminal
                                        jobs are left as they ended)
GET       /v1/healthz                   liveness
GET       /v1/stats                     queue depth, per-tenant dedup
                                        hit-rates, metrics snapshot
========  ============================  =======================================
"""

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import JobCancelled, QueueFullError, ReproError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.plan.compiler import compile_plan
from repro.plan.engine import PlanResult
from repro.plan.spec import Plan
from repro.results.store import ClaimTable
from repro.serve.queue import (
    CancelToken,
    FairQueue,
    QueueScheduler,
    WorkItem,
    priority_weight,
)

#: Job states; ``done``/``failed``/``cancelled`` are terminal.
JOB_STATES = ("queued", "compiling", "running", "done", "failed",
              "cancelled")
_TERMINAL = frozenset(("done", "failed", "cancelled"))


class ServeJob:
    """One submitted plan: state machine plus sequenced event log."""

    def __init__(self, job_id, plan, tenant, priority):
        self.job_id = job_id
        self.plan = plan
        self.tenant = tenant
        self.priority = priority
        self.token = CancelToken(job_id)
        self.state = "queued"
        self.created = time.time()
        self.started = None
        self.finished = None
        self.result_text = None
        self.stats = None
        self.errors = []
        self.error = None
        self.tasks = {}
        self.progress = {"queued": 0, "executed": 0, "cost": 0}
        self._events = []
        self._changed = threading.Condition()
        self.emit("state", state="queued")

    # -- event log ---------------------------------------------------------
    def emit(self, event, **attrs):
        """Append one sequenced event and wake every waiter."""
        with self._changed:
            record = {"seq": len(self._events), "ts": time.time(),
                      "job": self.job_id, "event": event}
            record.update(attrs)
            self._events.append(record)
            self._changed.notify_all()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("serve.job.%s" % event, job=self.job_id, **attrs)

    def events_after(self, after=0, timeout=None):
        """Events with ``seq >= after`` — long-polls up to ``timeout``
        seconds when none are available yet and the job is live."""
        with self._changed:
            if len(self._events) <= after and not self.terminal:
                self._changed.wait(timeout)
            return list(self._events[after:])

    def observe(self, event, **attrs):
        """The scheduler observer: batch progress into the event log."""
        self.progress[event] = self.progress.get(event, 0) + 1
        if event == "executed":
            self.progress["cost"] += attrs.get("cost", 0)
        self.emit("progress", kind=event, **attrs)

    # -- state machine -----------------------------------------------------
    def set_state(self, state, **attrs):
        self.state = state
        if state == "running" and self.started is None:
            self.started = time.time()
        if state in _TERMINAL:
            self.finished = time.time()
        self.emit("state", state=state, **attrs)

    @property
    def terminal(self):
        return self.state in _TERMINAL

    def describe(self):
        """The status document (everything but the result bundle)."""
        status = {
            "id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "tasks": dict(self.tasks),
            "progress": dict(self.progress),
            "events": len(self._events),
        }
        if self.stats is not None:
            status["stats"] = dict(self.stats)
        if self.errors:
            status["errors"] = [dict(entry) for entry in self.errors]
        if self.error is not None:
            status["error"] = self.error
        return status

    def __repr__(self):
        return "ServeJob(%s, %s, tenant=%r)" % (
            self.job_id, self.state, self.tenant,
        )


class PlanService:
    """The daemon core: shared pipeline, fair admission, job registry.

    Parameters
    ----------
    pipeline:
        A ready :class:`~repro.pipeline.CounterPoint`; ``None`` builds
        one from ``backend``/``sim_backend``/``cache_dir``. The
        pipeline is kept single-process (``workers=1``) — concurrency
        comes from the service's worker *threads*, which share every
        cache tier.
    workers:
        Thread count, used both to drive admitted jobs and to drain
        the cell-level :class:`~repro.serve.queue.QueueScheduler`.
    max_queue:
        Admission bound: jobs submitted while this many are already
        queued or running are rejected with
        :class:`~repro.errors.QueueFullError` (HTTP 429 +
        ``Retry-After``). ``None`` is unbounded.
    """

    def __init__(self, pipeline=None, workers=2, max_queue=16,
                 cache_dir=None, backend="exact", sim_backend="auto"):
        from repro.pipeline import CounterPoint

        if pipeline is None:
            pipeline = CounterPoint(
                backend=backend, cache_dir=cache_dir,
                sim_backend=sim_backend, workers=1,
            )
        self.pipeline = pipeline
        # Pre-build the lazily-initialised shared state *before* any
        # worker thread runs: two racing first calls must not hand
        # concurrent jobs different sessions (which would split the
        # memo and break cross-tenant dedup).
        self.session = pipeline.session()
        self.engine = pipeline.plan_engine()
        self.session.claims = ClaimTable(store=self.session.store)
        self.scheduler = QueueScheduler(workers=workers)
        self.max_queue = max_queue
        self.metrics = MetricsRegistry()
        self._jobs = {}
        self._order = []
        self._lock = threading.Lock()
        self._counter = 0
        self._closed = False
        self._admission = FairQueue()
        self._drivers = [
            threading.Thread(
                target=self._drive, name="repro-serve-driver-%d" % index,
                daemon=True,
            )
            for index in range(max(2, workers))
        ]
        for thread in self._drivers:
            thread.start()

    # -- submission --------------------------------------------------------
    def submit(self, plan, tenant="anon", priority="normal"):
        """Queue ``plan`` (a :class:`~repro.plan.Plan`, a plan dict, or
        plan JSON text) for ``tenant``; returns the job status dict.

        Raises :class:`~repro.errors.QueueFullError` when ``max_queue``
        jobs are already queued or running — the backpressure the HTTP
        layer maps to 429 + Retry-After.
        """
        plan = self._coerce_plan(plan)
        weight = priority_weight(priority)  # validates the class name
        tenant = str(tenant) or "anon"
        with self._lock:
            if self._closed:
                raise ServeError("service is shut down")
            active = sum(
                1 for job in self._jobs.values() if not job.terminal
            )
            if self.max_queue is not None and active >= self.max_queue:
                self.metrics.counter("serve.jobs.rejected").inc()
                raise QueueFullError(
                    "%d jobs already queued or running (max %d)"
                    % (active, self.max_queue),
                    retry_after=2.0,
                )
            self._counter += 1
            job_id = "job-%06d" % self._counter
            job = ServeJob(job_id, plan, tenant, priority)
            self._jobs[job_id] = job
            self._order.append(job_id)
        self.metrics.counter("serve.jobs.submitted").inc()
        self.metrics.counter("serve.tenant.%s.jobs" % tenant).inc()
        self._admission.push(WorkItem(
            lambda: self._run_job(job), tenant=tenant, weight=weight,
            cost=max(len(plan), 1),
        ))
        self._update_depth()
        return job.describe()

    @staticmethod
    def _coerce_plan(plan):
        if isinstance(plan, Plan):
            return plan
        if isinstance(plan, str):
            return Plan.from_json(plan)
        if isinstance(plan, dict):
            return Plan.from_dict(plan)
        raise ServeError("cannot interpret %r as a plan"
                         % (type(plan).__name__,))

    # -- execution ---------------------------------------------------------
    def _drive(self):
        while True:
            item = self._admission.pop(timeout=0.2)
            if item is None:
                if self._closed:
                    return
                continue
            item.execute()
            self._update_depth()

    def _run_job(self, job):
        wait_seconds = time.time() - job.created
        self.metrics.histogram("serve.job.wait_seconds").observe(
            wait_seconds
        )
        if job.token.cancelled:
            job.set_state("cancelled")
            self.metrics.counter("serve.jobs.cancelled").inc()
            return
        try:
            job.set_state("compiling")
            compiled = compile_plan(job.plan, self.pipeline)
            job.tasks = compiled.counts()
            job.emit("compiled", **job.tasks)
            job.token.check()
            job.set_state("running")
            scheduler = self.scheduler.for_job(
                tenant=job.tenant, priority=job.priority, token=job.token,
                observer=job.observe,
            )
            result = self.engine.run(
                job.plan, scheduler=scheduler, collect_errors=True,
            )
        except JobCancelled:
            job.set_state("cancelled")
            self.metrics.counter("serve.jobs.cancelled").inc()
            return
        except ReproError as error:
            job.error = repr(error)
            job.set_state("failed", error=job.error)
            self.metrics.counter("serve.jobs.failed").inc()
            return
        except Exception as error:  # pragma: no cover - defensive
            job.error = repr(error)
            job.set_state("failed", error=job.error)
            self.metrics.counter("serve.jobs.failed").inc()
            return
        job.stats = dict(result.stats)
        job.errors = [dict(entry) for entry in result.errors]
        # The canonical bundle: op results only, no stats/timing (they
        # differ between cold and warm runs), sorted keys — so the same
        # plan always fetches byte-identical text.
        job.result_text = PlanResult(
            dict(result.items())
        ).to_json(indent=2)
        self._account(job)
        if job.errors:
            job.error = "%d op(s) failed" % len(job.errors)
            job.set_state("failed", error=job.error)
            self.metrics.counter("serve.jobs.failed").inc()
        else:
            job.set_state("done")
            self.metrics.counter("serve.jobs.completed").inc()

    def _account(self, job):
        """Per-tenant dedup accounting from the run's session stats."""
        stats = job.stats or {}
        computed = stats.get("computed", 0)
        deduped = (stats.get("memo_hits", 0) + stats.get("store_hits", 0)
                   + stats.get("deduplicated", 0))
        prefix = "serve.tenant.%s" % job.tenant
        self.metrics.counter("%s.cells_computed" % prefix).inc(computed)
        self.metrics.counter("%s.cells_deduped" % prefix).inc(deduped)

    def _update_depth(self):
        with self._lock:
            queued = sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )
        self.metrics.gauge("serve.queue.depth").set(queued)

    # -- inspection --------------------------------------------------------
    def job(self, job_id):
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError("unknown job %r" % (job_id,))
        return job

    def status(self, job_id):
        return self.job(job_id).describe()

    def jobs(self):
        """Status documents, most recent first."""
        with self._lock:
            order = list(self._order)
        return [self._jobs[job_id].describe() for job_id in reversed(order)]

    def events(self, job_id, after=0, timeout=None):
        return self.job(job_id).events_after(after=after, timeout=timeout)

    def result_text(self, job_id):
        """The canonical result bundle (JSON text) of a finished job."""
        job = self.job(job_id)
        if job.state in ("done", "failed") and job.result_text is not None:
            return job.result_text
        raise ServeError(
            "job %s is %s; no result available" % (job_id, job.state)
        )

    def cancel(self, job_id):
        """Request cooperative cancellation; returns the status doc.

        Queued jobs cancel at admission; running jobs cancel at the
        next batch boundary. Cells already computed stay recorded in
        the shared store, so a re-submitted plan resumes exactly where
        the cancelled one stopped.
        """
        job = self.job(job_id)
        job.token.cancel()
        if not job.terminal:
            job.emit("cancel_requested")
        return job.describe()

    def stats(self):
        """The /v1/stats document: queue depths, tenants, metrics."""
        self._update_depth()
        with self._lock:
            states = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        tenants = {}
        metrics = self.metrics.as_dict()
        for name, value in metrics.get("counters", {}).items():
            match = re.match(r"serve\.tenant\.(.+)\.cells_(\w+)$", name)
            if match:
                tenant = tenants.setdefault(match.group(1), {})
                tenant["cells_%s" % match.group(2)] = value
        for tenant, cells in tenants.items():
            total = (cells.get("cells_computed", 0)
                     + cells.get("cells_deduped", 0))
            cells["dedup_hit_rate"] = (
                cells.get("cells_deduped", 0) / total if total else 0.0
            )
        return {
            "jobs": states,
            "queue_depth": self._admission.depth(),
            "cell_queue_depth": self.scheduler.queue.depth(),
            "tenants": tenants,
            "session": self.session.stats.as_dict(),
            "metrics": metrics,
        }

    def close(self):
        """Shut down drivers, the scheduler, and the pipeline."""
        if self._closed:
            return
        self._closed = True
        self._admission.close()
        for thread in self._drivers:
            thread.join(timeout=5.0)
        self.scheduler.close()
        self.pipeline.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __repr__(self):
        return "PlanService(%d jobs, %r)" % (len(self._jobs), self.pipeline)


_JOB_PATH = re.compile(r"^/v1/plans/([\w-]+)(?:/(events|result))?$")


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's PlanService."""

    server_version = "repro-serve"

    # -- plumbing ----------------------------------------------------------
    @property
    def service(self):
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, code, document, headers=()):
        body = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
        self._send_body(code, body, "application/json", headers)

    def _send_body(self, code, body, content_type, headers=()):
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError:
            raise ServeError("request body is not valid JSON") from None

    def _query(self):
        if "?" not in self.path:
            return self.path, {}
        path, _, query = self.path.partition("?")
        params = {}
        for piece in query.split("&"):
            if "=" in piece:
                name, _, value = piece.partition("=")
                params[name] = value
        return path, params

    # -- verbs -------------------------------------------------------------
    def do_POST(self):
        path, _ = self._query()
        if path != "/v1/plans":
            self._send_json(404, {"error": "unknown path %r" % path})
            return
        try:
            body = self._read_json()
            plan = body.get("plan")
            if plan is None:
                raise ServeError('request body needs a "plan" key')
            status = self.service.submit(
                plan,
                tenant=body.get("tenant")
                or self.headers.get("X-Tenant") or "anon",
                priority=body.get("priority", "normal"),
            )
        except QueueFullError as error:
            self._send_json(
                429, {"error": str(error),
                      "retry_after": error.retry_after},
                headers=(("Retry-After",
                          str(max(1, int(error.retry_after)))),),
            )
        except ReproError as error:
            self._send_json(400, {"error": str(error)})
        else:
            self._send_json(202, status)

    def do_GET(self):
        path, params = self._query()
        if path == "/v1/healthz":
            self._send_json(200, {"ok": True})
            return
        if path == "/v1/stats":
            self._send_json(200, self.service.stats())
            return
        if path == "/v1/plans":
            self._send_json(200, {"jobs": self.service.jobs()})
            return
        match = _JOB_PATH.match(path)
        if not match:
            self._send_json(404, {"error": "unknown path %r" % path})
            return
        job_id, view = match.groups()
        try:
            if view is None:
                self._send_json(200, self.service.status(job_id))
            elif view == "result":
                self._send_result(job_id)
            else:
                self._stream_events(job_id, params)
        except ServeError as error:
            self._send_json(404, {"error": str(error)})

    def _send_result(self, job_id):
        job = self.service.job(job_id)
        if job.result_text is None:
            self._send_json(
                409, {"error": "job %s is %s; no result yet"
                      % (job_id, job.state),
                      "state": job.state},
            )
            return
        self._send_body(
            200, job.result_text.encode("utf-8"), "application/json",
            headers=(("X-Job-State", job.state),),
        )

    def _stream_events(self, job_id, params):
        """NDJSON: replay from ``after``, then follow until terminal."""
        job = self.service.job(job_id)  # 404 before headers when unknown
        try:
            after = int(params.get("after", 0))
        except ValueError:
            after = 0
        deadline = time.time() + float(params.get("timeout", 300))
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        while True:
            events = job.events_after(after=after, timeout=1.0)
            for event in events:
                line = json.dumps(event, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
            if events:
                self.wfile.flush()
                after = events[-1]["seq"] + 1
            if (job.terminal and not events) or time.time() > deadline:
                return

    def do_DELETE(self):
        path, _ = self._query()
        match = _JOB_PATH.match(path)
        if not match or match.group(2) is not None:
            self._send_json(404, {"error": "unknown path %r" % path})
            return
        try:
            self._send_json(200, self.service.cancel(match.group(1)))
        except ServeError as error:
            self._send_json(404, {"error": str(error)})


class ServeDaemon:
    """The HTTP face of a :class:`PlanService`.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports
    the bound one. Use as a context manager, or call :meth:`start` for
    a background accept-loop thread and :meth:`close` to stop.
    """

    def __init__(self, service=None, host="127.0.0.1", port=8651,
                 **service_options):
        self._owns_service = service is None
        self.service = service if service is not None \
            else PlanService(**service_options)
        self.server = ThreadingHTTPServer((host, port), _Handler)
        self.server.service = self.service
        self.server.daemon_threads = True
        self._thread = None

    @property
    def host(self):
        return self.server.server_address[0]

    @property
    def port(self):
        return self.server.server_address[1]

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def start(self):
        """Serve in a background thread; returns the base URL."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever,
                name="repro-serve-http", daemon=True,
            )
            self._thread.start()
        return self.url

    def serve_forever(self):
        """Serve on the calling thread until interrupted."""
        try:
            self.server.serve_forever()
        finally:
            self.close()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._owns_service:
            self.service.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __repr__(self):
        return "ServeDaemon(%s, %r)" % (self.url, self.service)


__all__ = ["JOB_STATES", "PlanService", "ServeDaemon", "ServeJob"]
