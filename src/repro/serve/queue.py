"""Weighted fair queueing for the serve daemon.

Two pieces:

* :class:`FairQueue` — a bounded, thread-safe priority queue with
  *virtual-time weighted fair sharing* across tenants. Each tenant
  accumulates virtual time as its items run (``cost / weight``); pop
  always serves the tenant with the least virtual time, so a tenant
  that submitted a thousand cells cannot starve one that submitted
  ten, and a higher weight (priority class) buys a proportionally
  larger share — never exclusivity. A newly-active tenant's clock is
  advanced to the current minimum so idle periods are not hoarded as
  credit. A full bounded queue rejects with
  :class:`~repro.errors.QueueFullError` (mapped to HTTP 429 +
  ``Retry-After`` by the daemon) — backpressure, not unbounded memory.

* :class:`QueueScheduler` — the third scheduler beside
  :class:`~repro.plan.schedulers.SerialScheduler` and
  :class:`~repro.plan.schedulers.PoolScheduler`: every simulation task
  and verdict batch becomes a :class:`WorkItem` on one shared
  :class:`FairQueue`, executed by a fixed pool of worker *threads*
  running the exact :class:`SerialScheduler` code paths — so queued
  results are bit-for-bit equal to serial ones, and swapping the
  scheduler can (as always) change wall-clock but never results.
  :meth:`QueueScheduler.for_job` binds a tenant, a priority class, and
  a :class:`CancelToken`; cancellation is cooperative, honoured at
  every batch boundary (:class:`~repro.errors.JobCancelled`).
"""

import threading

from repro.errors import JobCancelled, QueueFullError, ServeError
from repro.obs.trace import get_tracer
from repro.plan.schedulers import SerialScheduler

#: Priority classes and their fair-share weights: a high-priority
#: tenant gets 4x the share of a low-priority one under contention —
#: proportional service, never starvation.
PRIORITY_WEIGHTS = {"high": 4.0, "normal": 2.0, "low": 1.0}


def priority_weight(priority):
    """The fair-share weight of a priority class name."""
    try:
        return PRIORITY_WEIGHTS[priority]
    except KeyError:
        raise ServeError(
            "unknown priority %r (expected one of %s)"
            % (priority, "/".join(sorted(PRIORITY_WEIGHTS)))
        ) from None


class CancelToken:
    """A cooperative cancellation flag shared by one job's batches."""

    def __init__(self, job_id="job"):
        self.job_id = job_id
        self._flag = threading.Event()

    def cancel(self):
        self._flag.set()

    @property
    def cancelled(self):
        return self._flag.is_set()

    def check(self):
        """Raise :class:`~repro.errors.JobCancelled` once cancelled —
        called at every batch boundary (enqueue and execute)."""
        if self._flag.is_set():
            raise JobCancelled("job %s cancelled" % (self.job_id,))

    def __repr__(self):
        return "CancelToken(%r, cancelled=%r)" % (self.job_id, self.cancelled)


class WorkItem:
    """One queued unit of work: a thunk plus its accounting identity.

    ``cost`` is the fair-share charge (observation runs for a
    simulation task, cells for a verdict batch); ``wait()`` blocks the
    submitting thread until a worker ran the thunk, then returns its
    result or re-raises its exception in the submitter.
    """

    __slots__ = ("tenant", "weight", "cost", "fn", "token",
                 "_done", "_result", "_error")

    def __init__(self, fn, tenant="anon", weight=1.0, cost=1.0, token=None):
        self.fn = fn
        self.tenant = tenant
        self.weight = weight
        self.cost = max(float(cost), 1.0)
        self.token = token
        self._done = threading.Event()
        self._result = None
        self._error = None

    def execute(self):
        """Run the thunk (worker side); never raises."""
        try:
            if self.token is not None:
                self.token.check()
            self._result = self.fn()
        except BaseException as error:
            self._error = error
        finally:
            self._done.set()

    def wait(self, timeout=None):
        """Block for completion (submitter side); raise what the
        worker raised, or :class:`ServeError` on timeout."""
        if not self._done.wait(timeout):
            raise ServeError("queued work timed out after %rs" % (timeout,))
        if self._error is not None:
            raise self._error
        return self._result


class FairQueue:
    """A bounded queue with weighted fair sharing across tenants.

    Parameters
    ----------
    max_items:
        Queue capacity; pushes beyond it raise
        :class:`~repro.errors.QueueFullError`. ``None`` is unbounded.
    """

    def __init__(self, max_items=None):
        if max_items is not None and max_items < 1:
            raise ServeError("max_items must be at least 1, got %r"
                             % (max_items,))
        self.max_items = max_items
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._backlogs = {}   # tenant -> list of WorkItem (FIFO)
        self._vtimes = {}     # tenant -> virtual time (persistent)
        self._size = 0
        self._closed = False

    def __len__(self):
        with self._lock:
            return self._size

    def push(self, item):
        """Enqueue ``item``; :class:`~repro.errors.QueueFullError` when
        the queue is at capacity (the backpressure contract)."""
        with self._lock:
            if self._closed:
                raise ServeError("queue is closed")
            if self.max_items is not None and self._size >= self.max_items:
                raise QueueFullError(
                    "queue full (%d items); retry later" % (self._size,),
                    retry_after=1.0,
                )
            backlog = self._backlogs.get(item.tenant)
            if backlog is None:
                backlog = self._backlogs[item.tenant] = []
                # A tenant going active must not spend an idle period's
                # worth of banked virtual time: catch its clock up to
                # the busiest-waiting tenant's floor.
                floor = min(
                    (self._vtimes[tenant] for tenant in self._backlogs
                     if tenant != item.tenant and self._backlogs[tenant]),
                    default=None,
                )
                vtime = self._vtimes.get(item.tenant, 0.0)
                if floor is not None:
                    vtime = max(vtime, floor)
                self._vtimes[item.tenant] = vtime
            self._vtimes.setdefault(item.tenant, 0.0)
            backlog.append(item)
            self._size += 1
            self._ready.notify()

    def pop(self, timeout=None):
        """The next item by fair share, or ``None`` on timeout/close.

        Picks the backlogged tenant with the least virtual time (name
        as the deterministic tie-break), serves its oldest item, and
        charges ``cost / weight`` to the tenant's clock.
        """
        with self._lock:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._ready.wait(timeout):
                    return None
            tenant = min(
                (name for name, backlog in self._backlogs.items() if backlog),
                key=lambda name: (self._vtimes[name], name),
            )
            backlog = self._backlogs[tenant]
            item = backlog.pop(0)
            if not backlog:
                del self._backlogs[tenant]
            self._size -= 1
            self._vtimes[tenant] = (
                self._vtimes.get(tenant, 0.0) + item.cost / item.weight
            )
            return item

    def depth(self):
        """Items currently queued (the ``serve.queue.depth`` gauge)."""
        return len(self)

    def close(self):
        """Stop accepting work and wake blocked poppers. Items still
        queued are failed (their submitters see the error)."""
        with self._lock:
            self._closed = True
            drained = [
                item
                for backlog in self._backlogs.values()
                for item in backlog
            ]
            self._backlogs.clear()
            self._size = 0
            self._ready.notify_all()
        for item in drained:
            item._error = ServeError("queue closed before execution")
            item._done.set()

    def __repr__(self):
        with self._lock:
            return "FairQueue(%d queued, %d tenants%s)" % (
                self._size,
                sum(1 for backlog in self._backlogs.values() if backlog),
                ", max=%d" % self.max_items if self.max_items is not None
                else "",
            )


class _BoundQueueScheduler:
    """A :class:`QueueScheduler` view bound to one job's identity.

    Implements the standard scheduler interface (``simulate`` /
    ``compute``) by enqueuing the equivalent
    :class:`~repro.plan.schedulers.SerialScheduler` call as a
    :class:`WorkItem` and blocking until a worker thread ran it —
    checking the job's :class:`CancelToken` at both boundaries.
    """

    def __init__(self, parent, tenant, priority, token, observer=None):
        self.parent = parent
        self.tenant = tenant
        self.priority = priority
        self.weight = priority_weight(priority)
        self.token = token
        self.observer = observer

    def _dispatch(self, fn, cost, label):
        if self.token is not None:
            self.token.check()
        item = WorkItem(
            fn, tenant=self.tenant, weight=self.weight, cost=cost,
            token=self.token,
        )
        self.parent._submit(item)
        if self.observer is not None:
            self.observer("queued", unit=label, cost=int(cost))
        result = item.wait(self.parent.item_timeout)
        if self.observer is not None:
            self.observer("executed", unit=label, cost=int(cost))
        return result

    def simulate(self, pipeline, task):
        serial = self.parent.serial
        return self._dispatch(
            lambda: serial.simulate(pipeline, task),
            cost=task.n_observations,
            label="simulate",
        )

    def compute(self, session, cone, targets, use_regions, explain):
        serial = self.parent.serial
        return self._dispatch(
            lambda: serial.compute(session, cone, targets, use_regions,
                                   explain),
            cost=len(targets),
            label="compute",
        )

    def __repr__(self):
        return "QueueScheduler.for_job(tenant=%r, priority=%r)" % (
            self.tenant, self.priority,
        )


class QueueScheduler:
    """Run plan work through a shared fair queue and worker threads.

    The multi-tenant scheduler behind :mod:`repro.serve`: every job's
    simulation tasks and verdict batches flow through one
    :class:`FairQueue`, drained by ``workers`` threads that execute the
    reference :class:`~repro.plan.schedulers.SerialScheduler` bodies —
    results are bit-for-bit equal to a serial run. Use
    :meth:`for_job` to obtain the engine-facing scheduler bound to a
    tenant/priority/cancel-token; the bare instance also satisfies the
    scheduler interface (as the anonymous normal-priority tenant), so
    ``engine.run(plan, scheduler=QueueScheduler())`` works directly.

    Parameters
    ----------
    workers:
        Worker-thread count draining the queue.
    max_items:
        :class:`FairQueue` capacity (``None`` unbounded); overflow
        raises :class:`~repro.errors.QueueFullError` to the submitter.
    item_timeout:
        Safety-net seconds a submitter waits for one queued item.
    """

    def __init__(self, workers=2, max_items=None, item_timeout=600.0):
        if workers < 1:
            raise ServeError("workers must be at least 1, got %r"
                             % (workers,))
        self.serial = SerialScheduler()
        self.queue = FairQueue(max_items=max_items)
        self.item_timeout = item_timeout
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name="repro-serve-worker-%d" % index,
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._default = _BoundQueueScheduler(self, "anon", "normal", None)

    # -- scheduler interface (anonymous tenant) ----------------------------
    def simulate(self, pipeline, task):
        return self._default.simulate(pipeline, task)

    def compute(self, session, cone, targets, use_regions, explain):
        return self._default.compute(session, cone, targets, use_regions,
                                     explain)

    # -- job binding -------------------------------------------------------
    def for_job(self, tenant="anon", priority="normal", token=None,
                observer=None):
        """The engine-facing scheduler for one job: work it submits is
        charged to ``tenant`` at ``priority``'s weight, honours
        ``token`` cancellation, and reports batch progress to
        ``observer(event, **attrs)``."""
        return _BoundQueueScheduler(self, tenant, priority, token, observer)

    def _submit(self, item):
        if self._closed:
            raise ServeError("scheduler is closed")
        self.queue.push(item)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "serve.enqueue", tenant=item.tenant, cost=item.cost,
                depth=self.queue.depth(),
            )

    def _worker(self):
        while True:
            item = self.queue.pop(timeout=0.2)
            if item is None:
                if self._closed:
                    return
                continue
            item.execute()

    def close(self):
        """Stop workers and fail queued items (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __repr__(self):
        return "QueueScheduler(%d workers, %r)" % (
            len(self._threads), self.queue,
        )


__all__ = [
    "PRIORITY_WEIGHTS",
    "CancelToken",
    "FairQueue",
    "QueueScheduler",
    "WorkItem",
    "priority_weight",
]
