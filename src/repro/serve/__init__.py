"""repro.serve: the multi-tenant analysis daemon.

CounterPoint's answer to "run it as a service": an HTTP daemon
(:class:`ServeDaemon` over :class:`PlanService`) where clients POST
plan JSON, watch per-cell progress, cancel, and fetch canonical
:class:`~repro.plan.engine.PlanResult` bundles — with every tenant's
cells flowing through one shared content-addressed task space, so
overlapping plans (within a run, across tenants, or across daemon
restarts via ``--cache-dir``) compute each cell exactly once.
Scheduling is the third strategy beside serial and pool:
:class:`~repro.serve.queue.QueueScheduler`, a weighted-fair queue
with priority classes, cooperative cancellation, and bounded-queue
backpressure. :class:`ServeClient` is the stdlib client the
``repro submit/status/fetch/cancel`` commands wrap.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import JOB_STATES, PlanService, ServeDaemon, ServeJob
from repro.serve.queue import (
    PRIORITY_WEIGHTS,
    CancelToken,
    FairQueue,
    QueueScheduler,
    priority_weight,
)

__all__ = [
    "JOB_STATES",
    "PRIORITY_WEIGHTS",
    "CancelToken",
    "FairQueue",
    "PlanService",
    "QueueScheduler",
    "ServeClient",
    "ServeDaemon",
    "ServeJob",
    "priority_weight",
]
