"""End-of-run trace summaries.

Reduces a span/event stream (live from a tracer or loaded from a JSONL
file) into one dict — span totals, cache hit-rates per tier, an LP
solve-time histogram, and headline phase counts — and renders it as a
stable plain-text table. ``python -m repro trace summarize`` is a thin
shell around these two functions, and the golden test pins the rendered
format, so the layout here is a compatibility surface: change it only
with the golden file.
"""

from repro.obs.metrics import TIME_BUCKETS

#: Span names whose counts headline the summary (the acceptance-level
#: phases: LP solves, cone deductions, simulation runs, cell verdicts).
_PHASE_SPANS = ("lp.solve", "cone.deduce", "sim.observe", "cell.verdict")


def summarize_records(records, metrics=None):
    """Reduce trace records to a summary dict.

    Parameters
    ----------
    records:
        Span and event records (a tracer's ``records`` or the stream
        from :func:`~repro.obs.sinks.read_jsonl`).
    metrics:
        Optional metrics snapshot to fold in (cache counters recorded
        outside any traced region still show up).
    """
    spans = {}
    events = {}
    caches = {}
    lp_durations = []
    for record in records:
        kind = record.get("type")
        name = record.get("name", "")
        if kind == "span":
            duration = record.get("dur") or 0.0
            entry = spans.get(name)
            if entry is None:
                entry = spans[name] = {
                    "count": 0, "total": 0.0, "max": 0.0,
                }
            entry["count"] += 1
            entry["total"] += duration
            if duration > entry["max"]:
                entry["max"] = duration
            if name == "lp.solve":
                lp_durations.append(duration)
        elif kind == "event":
            events[name] = events.get(name, 0) + 1
            if name.startswith("cache."):
                attrs = record.get("attrs", {})
                tier = attrs.get("tier", "?")
                cache = caches.setdefault(tier, {
                    "hits": 0, "misses": 0, "writes": 0,
                    "evictions": 0, "bytes_read": 0, "bytes_written": 0,
                })
                action = name[len("cache."):]
                if action == "hit":
                    cache["hits"] += 1
                    cache["bytes_read"] += attrs.get("bytes", 0)
                elif action == "miss":
                    cache["misses"] += 1
                elif action == "write":
                    cache["writes"] += 1
                    cache["bytes_written"] += attrs.get("bytes", 0)
                elif action == "evict":
                    cache["evictions"] += 1
    for cache in caches.values():
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0

    histogram = {
        "buckets": list(TIME_BUCKETS),
        "counts": [0] * (len(TIME_BUCKETS) + 1),
        "total": 0.0,
        "count": 0,
    }
    for duration in lp_durations:
        for index, bound in enumerate(TIME_BUCKETS):
            if duration <= bound:
                histogram["counts"][index] += 1
                break
        else:
            histogram["counts"][-1] += 1
        histogram["total"] += duration
        histogram["count"] += 1

    return {
        "spans": spans,
        "events": events,
        "caches": caches,
        "lp_histogram": histogram,
        "phases": {
            name: spans.get(name, {}).get("count", 0)
            for name in _PHASE_SPANS
        },
        "metrics": metrics,
    }


def _format_seconds(value):
    return "%10.6f" % value


def render_summary(summary, top=15):
    """Render a summary dict as the stable plain-text table."""
    lines = []
    spans = summary["spans"]
    lines.append("== spans (top %d by cumulative time) ==" % top)
    lines.append(
        "%-28s %8s %12s %12s %12s"
        % ("name", "count", "total s", "mean s", "max s")
    )
    ordered = sorted(
        spans.items(), key=lambda item: (-item[1]["total"], item[0])
    )
    for name, entry in ordered[:top]:
        mean = entry["total"] / entry["count"] if entry["count"] else 0.0
        lines.append(
            "%-28s %8d %12.6f %12.6f %12.6f"
            % (name, entry["count"], entry["total"], mean, entry["max"])
        )
    if not spans:
        lines.append("(no spans)")

    lines.append("")
    lines.append("== phase counts ==")
    for name, count in summary["phases"].items():
        lines.append("%-28s %8d" % (name, count))

    lines.append("")
    lines.append("== caches ==")
    caches = summary["caches"]
    if caches:
        lines.append(
            "%-10s %6s %6s %8s %7s %7s %12s %12s"
            % ("tier", "hits", "miss", "hit rate", "writes",
               "evict", "bytes read", "bytes writ")
        )
        for tier in sorted(caches):
            cache = caches[tier]
            lines.append(
                "%-10s %6d %6d %7.1f%% %7d %7d %12d %12d"
                % (tier, cache["hits"], cache["misses"],
                   cache["hit_rate"] * 100.0, cache["writes"],
                   cache["evictions"], cache["bytes_read"],
                   cache["bytes_written"])
            )
    else:
        lines.append("(no cache activity)")

    lines.append("")
    lines.append("== lp.solve histogram ==")
    histogram = summary["lp_histogram"]
    if histogram["count"]:
        bounds = histogram["buckets"]
        labels = ["<= %gs" % bound for bound in bounds] + [
            "> %gs" % bounds[-1]
        ]
        for label, count in zip(labels, histogram["counts"]):
            if count:
                lines.append("%-12s %8d" % (label, count))
        mean = histogram["total"] / histogram["count"]
        lines.append(
            "%d solves, total %.6fs, mean %.6fs"
            % (histogram["count"], histogram["total"], mean)
        )
    else:
        lines.append("(no lp solves)")

    events = summary["events"]
    warnings = {
        name: count for name, count in events.items()
        if name.endswith(".fallback") or name.endswith(".warning")
    }
    if warnings:
        lines.append("")
        lines.append("== warnings ==")
        for name in sorted(warnings):
            lines.append("%-28s %8d" % (name, warnings[name]))

    return "\n".join(lines) + "\n"


__all__ = ["render_summary", "summarize_records"]
