"""Lightweight span tracing for the analysis pipeline.

A :class:`Tracer` records *spans* — named, timed, attribute-carrying
intervals measured with :func:`time.perf_counter` — and *events*
(instant markers: cache hits, evictions, fallback warnings). The hot
layers (:mod:`repro.plan`, :mod:`repro.results.session`,
:mod:`repro.lp`, :mod:`repro.cone`, :mod:`repro.sim`) consult the
process-wide *active tracer* (:func:`get_tracer`) at call time, so
tracing needs no plumbing through call signatures and costs nearly
nothing when disabled: the default active tracer is off, and a disabled
tracer hands every ``span()`` call the same shared no-op span.

Design points:

* **Context-manager spans.** ``with tracer.span("lp.solve", backend=b)
  as sp: ...; sp.set(status=s)`` — spans close (and record their
  duration) on *any* exit path; an exception stamps an ``error``
  attribute and propagates.
* **Nesting by construction.** Each span records its ``depth`` (the
  number of open spans above it) at open time, so sinks and tests can
  check that spans nest and close correctly without reconstructing a
  tree.
* **Cross-process merging.** Records are plain JSON-serializable dicts
  tagged with ``pid``/``tid`` at record time. Pool workers build their
  own tracer, trace locally, and ship ``drain()`` output back with
  their results; the parent ``absorb()``\\ s them into one coherent
  timeline (timestamps are wall-clock anchored, so worker spans land in
  the right place).
* **Metrics attached.** Every tracer owns a
  :class:`~repro.obs.metrics.MetricsRegistry`; layers that time things
  (LP solves) or count things (cache hits, bytes) feed it alongside
  the span stream.
"""

import functools
import os
import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

#: Bump when the trace record layout changes incompatibly; sinks stamp
#: it into the JSONL header and validation rejects other versions.
OBS_SCHEMA_VERSION = 1


def _thread_id():
    try:  # pragma: no cover - trivially version dependent
        return threading.get_native_id()
    except AttributeError:  # pragma: no cover - Python < 3.8
        return 0


class _NullSpan:
    """The shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False

    def set(self, **attrs):
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; closes (records duration) on context exit."""

    __slots__ = ("_tracer", "_t0", "record")

    def __init__(self, tracer, record, t0):
        self._tracer = tracer
        self._t0 = t0
        self.record = record

    def set(self, **attrs):
        """Attach attributes to the span (overwrites on key collision)."""
        self.record["attrs"].update(attrs)
        return self

    @property
    def duration(self):
        """Seconds elapsed (final after exit, running before)."""
        closed = self.record["dur"]
        if closed is not None:
            return closed
        return time.perf_counter() - self._t0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        if exc_type is not None:
            self.record["attrs"]["error"] = exc_type.__name__
        self._tracer._close(self.record, time.perf_counter() - self._t0)
        return False


class Tracer:
    """Span and event recorder with near-zero disabled overhead.

    Parameters
    ----------
    enabled:
        When ``False`` every ``span()`` returns the shared no-op span
        and ``event()`` returns immediately — the recording machinery
        is never touched.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` to attach;
        a fresh one by default.
    """

    def __init__(self, enabled=True, metrics=None):
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Wall-clock anchor for perf_counter timestamps: absolute span
        # times are comparable across processes (needed to merge worker
        # timelines), while durations keep perf_counter's monotonicity.
        self._anchor = time.time() - time.perf_counter()
        self._records = []
        self._open = []

    # -- recording ---------------------------------------------------------
    def span(self, name, **attrs):
        """Open a span; use as a context manager so it always closes."""
        if not self.enabled:
            return NULL_SPAN
        t0 = time.perf_counter()
        record = {
            "type": "span",
            "name": name,
            "ts": self._anchor + t0,
            "dur": None,
            "pid": os.getpid(),
            "tid": _thread_id(),
            "depth": len(self._open),
            "attrs": dict(attrs),
        }
        self._records.append(record)
        self._open.append(record)
        return _Span(self, record, t0)

    def _close(self, record, duration):
        record["dur"] = duration
        # Tolerate out-of-order closes (a span leaked past a child):
        # unwind the open stack to this record rather than corrupting
        # the depth bookkeeping for every later span.
        while self._open:
            if self._open.pop() is record:
                break

    def event(self, name, **attrs):
        """Record an instant event (cache hit, eviction, warning)."""
        if not self.enabled:
            return
        self._records.append({
            "type": "event",
            "name": name,
            "ts": self._anchor + time.perf_counter(),
            "pid": os.getpid(),
            "tid": _thread_id(),
            "attrs": dict(attrs),
        })

    # -- harvesting --------------------------------------------------------
    @property
    def records(self):
        """The record list (live; spans still open have ``dur None``)."""
        return self._records

    def drain(self):
        """Detach and return all *closed* records — the wire format pool
        workers ship back with their results (open spans stay)."""
        closed, remaining = [], []
        for record in self._records:
            if record["type"] == "span" and record["dur"] is None:
                remaining.append(record)
            else:
                closed.append(record)
        self._records = remaining
        return closed

    def absorb(self, records):
        """Merge records recorded elsewhere (a pool worker's ``drain()``)
        into this tracer's stream, preserving their pid/tid tags."""
        if records:
            self._records.extend(records)

    def open_spans(self):
        """Names of spans opened but not yet closed (in open order)."""
        return [record["name"] for record in self._open]

    def clear(self):
        self._records = []
        self._open = []

    def __repr__(self):
        return "Tracer(enabled=%r, %d records)" % (
            self.enabled, len(self._records),
        )


#: The default active tracer: disabled, so an untraced process pays one
#: attribute check per instrumentation point and nothing else.
_ACTIVE = Tracer(enabled=False)


def get_tracer():
    """The process-wide active tracer (disabled unless installed)."""
    return _ACTIVE


def set_tracer(tracer):
    """Install ``tracer`` as the active tracer; returns the previous
    one so callers can restore it (prefer :func:`activate`)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer(enabled=False)
    return previous


@contextmanager
def activate(tracer):
    """Make ``tracer`` the active tracer for the dynamic extent of a
    ``with`` block, restoring the previous one on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def tracer_for(pipeline):
    """The tracer a pipeline-scoped operation should record into: the
    pipeline's own (``CounterPoint(trace=...)``), else the active one."""
    tracer = getattr(pipeline, "tracer", None)
    return tracer if tracer is not None else get_tracer()


def traced(name=None, **static_attrs):
    """Decorator: wrap every call of the function in a span.

    The span name defaults to the function's qualified name; the active
    tracer is looked up at *call* time, so decorating is free when
    tracing is off and library functions need no tracer argument::

        @traced("sim.batch")
        def batch_simulate(...):
            ...
    """
    def wrap(function):
        label = name or function.__qualname__

        @functools.wraps(function)
        def inner(*args, **kwargs):
            tracer = get_tracer()
            if not tracer.enabled:
                return function(*args, **kwargs)
            with tracer.span(label, **static_attrs):
                return function(*args, **kwargs)
        return inner
    return wrap


__all__ = [
    "NULL_SPAN",
    "OBS_SCHEMA_VERSION",
    "Tracer",
    "activate",
    "get_tracer",
    "set_tracer",
    "traced",
    "tracer_for",
]
