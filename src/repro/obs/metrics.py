"""Counters, gauges, and fixed-bucket histograms.

The runtime telemetry substrate behind :mod:`repro.obs`: every
:class:`~repro.obs.trace.Tracer` owns a :class:`MetricsRegistry`, the
instrumented layers feed it (LP solve-time histograms, cache hit/miss/
byte counters, per-worker task counts), and
:class:`~repro.results.session.SessionStats` is now a thin facade over
one — the four incrementality counters the tests are stated in are
registry counters with the same names and arithmetic.

Snapshots (:meth:`MetricsRegistry.as_dict`) are plain JSON-serializable
dicts: sinks append them to trace files, pool workers ship them back
with their results, and :meth:`MetricsRegistry.absorb` merges a
worker's snapshot into the parent registry (counters and histogram
buckets add; gauges take the incoming value).
"""

from repro.errors import AnalysisError

#: Default histogram buckets for solve/compute durations, in seconds.
#: Fixed so histograms from different runs and workers merge bucket-
#: for-bucket.
TIME_BUCKETS = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0,
)


class Counter:
    """A monotonically-increasing count (resettable for facades)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount
        return self.value

    def __repr__(self):
        return "Counter(%r, %d)" % (self.name, self.value)


class Gauge:
    """A point-in-time value (pool size, bytes on disk, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return self.value

    def __repr__(self):
        return "Gauge(%r, %r)" % (self.name, self.value)


class Histogram:
    """Fixed-bucket histogram (cumulative-style upper bounds).

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit overflow bucket catches everything above the last bound.
    ``counts[i]`` is the number of observations with
    ``value <= buckets[i]`` (non-cumulative per-bucket counts;
    ``counts[-1]`` is the overflow).
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name, buckets=TIME_BUCKETS):
        buckets = tuple(buckets)
        if not buckets or any(
            b <= a for a, b in zip(buckets, buckets[1:])
        ):
            raise AnalysisError(
                "histogram buckets must be non-empty and ascending: %r"
                % (buckets,)
            )
        self.name = name
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value):
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def __repr__(self):
        return "Histogram(%r, %d observations, mean %.6fs)" % (
            self.name, self.count, self.mean,
        )


class MetricsRegistry:
    """Named metrics, created on first touch, snapshot-able and
    mergeable."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- access (create on first touch) ------------------------------------
    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name, buckets=TIME_BUCKETS):
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    # -- snapshots ---------------------------------------------------------
    def as_dict(self):
        """JSON-serializable snapshot of every metric."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "total": metric.total,
                    "count": metric.count,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def absorb(self, snapshot):
        """Merge an :meth:`as_dict` snapshot (e.g. shipped back by a
        pool worker): counters and histogram buckets add, gauges take
        the incoming value."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            metric = self.histogram(name, buckets=data["buckets"])
            if tuple(data["buckets"]) != metric.buckets:
                raise AnalysisError(
                    "histogram %r bucket mismatch on merge" % (name,)
                )
            for index, count in enumerate(data["counts"]):
                metric.counts[index] += count
            metric.total += data["total"]
            metric.count += data["count"]

    def __repr__(self):
        return "MetricsRegistry(%d counters, %d gauges, %d histograms)" % (
            len(self._counters), len(self._gauges), len(self._histograms),
        )


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
]
