"""Trace sinks: JSONL event streams and Chrome ``trace_event`` export.

Two on-disk formats share one in-memory record stream:

* **JSONL** — one record per line, bracketed by a ``header`` record
  (schema version, producer pid) and a ``metrics`` record (the final
  :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` snapshot). This is
  the machine-readable archive format that ``repro trace summarize``
  and the CI schema check consume.
* **Chrome trace_event JSON** — the ``{"traceEvents": [...]}`` envelope
  Perfetto and ``chrome://tracing`` load directly. Spans become
  complete (``"ph": "X"``) events in microseconds, instant events
  become ``"ph": "i"``, and per-pid metadata rows name worker
  processes so a pooled run reads as one merged timeline.
"""

import json
import os

from repro.errors import AnalysisError
from repro.obs.trace import OBS_SCHEMA_VERSION

#: Record ``type`` values a valid trace stream may contain.
_RECORD_TYPES = ("header", "span", "event", "metrics")

#: Required keys per record type (beyond ``type`` itself).
_REQUIRED_KEYS = {
    "header": ("schema",),
    "span": ("name", "ts", "dur", "pid", "tid", "depth", "attrs"),
    "event": ("name", "ts", "pid", "tid", "attrs"),
    "metrics": ("metrics",),
}


def validate_records(records):
    """Check a record stream against the trace schema.

    Raises :class:`~repro.errors.AnalysisError` naming the first
    offending record; returns the record count on success. The CI trace
    check and :func:`read_jsonl` both run through here, so a trace file
    that loads is a trace file the tooling can consume.
    """
    count = 0
    saw_header = False
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise AnalysisError(
                "trace record %d is not an object: %r" % (index, record)
            )
        kind = record.get("type")
        if kind not in _RECORD_TYPES:
            raise AnalysisError(
                "trace record %d has unknown type %r" % (index, kind)
            )
        missing = [
            key for key in _REQUIRED_KEYS[kind] if key not in record
        ]
        if missing:
            raise AnalysisError(
                "trace record %d (%s) is missing keys: %s"
                % (index, kind, ", ".join(missing))
            )
        if kind == "header":
            saw_header = True
            if record["schema"] != OBS_SCHEMA_VERSION:
                raise AnalysisError(
                    "trace schema %r is not the supported version %d"
                    % (record["schema"], OBS_SCHEMA_VERSION)
                )
        elif kind == "span":
            if record["dur"] is None:
                raise AnalysisError(
                    "trace record %d: span %r was never closed"
                    % (index, record["name"])
                )
        count += 1
    if count and not saw_header:
        raise AnalysisError("trace stream has no header record")
    return count


def write_jsonl(path, records, metrics=None):
    """Write a trace stream as JSONL: header, records, metrics trailer."""
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "type": "header",
            "schema": OBS_SCHEMA_VERSION,
            "pid": os.getpid(),
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if metrics is not None:
            trailer = {"type": "metrics", "metrics": metrics}
            handle.write(json.dumps(trailer, sort_keys=True) + "\n")


def read_jsonl(path):
    """Load and validate a JSONL trace file.

    Returns ``(records, metrics)`` where ``records`` holds the span and
    event records (header and trailer stripped) and ``metrics`` is the
    trailing snapshot dict or ``None``.
    """
    raw = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw.append(json.loads(line))
            except ValueError:
                raise AnalysisError(
                    "trace file %s line %d is not valid JSON"
                    % (path, line_number)
                )
    validate_records(raw)
    records = [r for r in raw if r["type"] in ("span", "event")]
    metrics = None
    for record in raw:
        if record["type"] == "metrics":
            metrics = record["metrics"]
    return records, metrics


def chrome_trace(records, metrics=None):
    """Convert a record stream to the Chrome ``trace_event`` dict.

    Timestamps and durations convert from seconds to microseconds; the
    first pid seen is labelled the parent, later pids are labelled
    workers, and the metrics snapshot (if given) rides along under
    ``otherData`` where trace viewers ignore it but tools can read it.
    """
    events = []
    pids = []
    for record in records:
        kind = record.get("type")
        if kind not in ("span", "event"):
            continue
        pid = record["pid"]
        if pid not in pids:
            pids.append(pid)
        entry = {
            "name": record["name"],
            "ts": record["ts"] * 1e6,
            "pid": pid,
            "tid": record["tid"],
            "args": record["attrs"],
        }
        if kind == "span":
            entry["ph"] = "X"
            entry["dur"] = (record["dur"] or 0.0) * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    metadata = []
    for index, pid in enumerate(pids):
        label = "repro" if index == 0 else "repro worker %d" % pid
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
    payload = {"traceEvents": metadata + events}
    if metrics is not None:
        payload["otherData"] = {"metrics": metrics}
    return payload


def write_chrome_trace(path, records, metrics=None):
    """Write records as a Chrome trace JSON file (Perfetto-loadable)."""
    payload = chrome_trace(records, metrics=metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def write_trace(path, records, metrics=None, fmt="jsonl"):
    """Write a trace file in the named format (``jsonl`` or ``chrome``)."""
    if fmt == "jsonl":
        write_jsonl(path, records, metrics=metrics)
    elif fmt == "chrome":
        write_chrome_trace(path, records, metrics=metrics)
    else:
        raise AnalysisError(
            "unknown trace format %r (expected 'jsonl' or 'chrome')" % (fmt,)
        )


__all__ = [
    "chrome_trace",
    "read_jsonl",
    "validate_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
