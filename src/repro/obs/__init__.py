"""Observability: span tracing, metrics, and trace export.

The analysis stack is instrumented end to end — plan engine ops,
scheduler dispatch, session verdict outcomes, LP solves, cone
deduction, µDD simulation, and both cache tiers — against the
process-wide *active tracer*, which is disabled by default and costs
one attribute check per instrumentation point when off. Turn it on
with ``CounterPoint(trace=True)``, ``--trace FILE`` on any CLI
subcommand, or directly::

    from repro.obs import Tracer, activate, render_summary, summarize_records

    tracer = Tracer()
    with activate(tracer):
        ...  # any repro work records spans into ``tracer``
    print(render_summary(summarize_records(tracer.records)))

Pool workers trace locally and ship their records back with chunk
results, so a ``workers=N`` run still produces one pid/tid-tagged
timeline; export it with :func:`write_trace` (JSONL or Chrome
``trace_event`` JSON for Perfetto).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIME_BUCKETS,
)
from repro.obs.sinks import (
    chrome_trace,
    read_jsonl,
    validate_records,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.summary import render_summary, summarize_records
from repro.obs.trace import (
    NULL_SPAN,
    OBS_SCHEMA_VERSION,
    Tracer,
    activate,
    get_tracer,
    set_tracer,
    traced,
    tracer_for,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "OBS_SCHEMA_VERSION",
    "TIME_BUCKETS",
    "Tracer",
    "activate",
    "chrome_trace",
    "get_tracer",
    "read_jsonl",
    "render_summary",
    "set_tracer",
    "summarize_records",
    "traced",
    "tracer_for",
    "validate_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
