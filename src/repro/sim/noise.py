"""The noise stage: perf-realistic observations from simulated truth.

Executing a µDD produces *exact* ground-truth counter totals. Real HEC
measurements are nothing like that: perf multiplexes logical events onto
4–8 physical counters and scale-estimates the rest, so observations
arrive as noisy, correlated interval time series. This module replays
simulated counts through the existing measurement substrate —
:class:`repro.counters.multiplexing.MultiplexingSimulator` for the
noise and :func:`repro.counters.sampling.collect_interval_samples` for
the sample-matrix bookkeeping — so synthetic data exercises the *full*
statistics path (covariance, shrinkage, confidence regions) exactly as
hardware data would.

Two entry points:

* :func:`noisy_samples` — wrap any per-interval truth stream (an
  executor's :meth:`~repro.sim.executor.MuDDExecutor.run_intervals`
  output) into a (possibly multiplexed) :class:`SampleMatrix`.
* :func:`simulate_interval_matrix` — the batched variant: each sampling
  interval is one multinomial draw over the model's µpath distribution,
  so a whole M-interval run costs one vectorised call.
"""

from repro.counters.multiplexing import MultiplexingSimulator
from repro.counters.sampling import collect_interval_samples
from repro.errors import SimulationError
from repro.sim.batch import batch_simulate


def default_multiplexer(seed=0, n_physical=4):
    """The multiplexing profile used by the simulated datasets (Haswell
    with SMT off exposes 8 programmable counters; 4 models SMT-style
    slot pressure)."""
    return MultiplexingSimulator(
        n_physical=n_physical, slices_per_interval=48, phase_noise=0.3, seed=seed
    )


def noisy_samples(counters, interval_truth, multiplexer=None):
    """A :class:`SampleMatrix` from per-interval ground-truth counts.

    ``interval_truth`` is an iterable of per-interval dicts or vectors
    (at least two — a covariance needs degrees of freedom). With a
    ``multiplexer`` the matrix holds scale-estimated noisy samples and
    keeps the truth alongside; without one it is a noise-free passthrough.
    """
    return collect_interval_samples(counters, interval_truth, multiplexer=multiplexer)


def simulate_interval_matrix(
    model,
    n_intervals,
    uops_per_interval,
    counters=None,
    weights=None,
    seed=0,
    multiplexer=None,
    backend="auto",
):
    """Batched noisy measurement of one simulated run.

    Each of the ``n_intervals`` sampling intervals draws
    ``uops_per_interval`` µops from the model's µpath distribution (one
    ``batch_simulate`` call with intervals as the batch axis), then the
    whole run is pushed through the multiplexing noise stage. Returns a
    :class:`SampleMatrix` whose ``truth`` is the exact per-interval
    ground truth. ``backend`` is the distribution compile knob of
    :func:`~repro.sim.batch.batch_simulate` (identical samples either
    way).
    """
    if n_intervals < 2:
        raise SimulationError("need at least 2 intervals for a sample matrix")
    result = batch_simulate(
        model,
        uops_per_interval,
        n_traces=n_intervals,
        counters=counters,
        weights=weights,
        seed=seed,
        backend=backend,
    )
    return collect_interval_samples(
        result.counters, result.totals, multiplexer=multiplexer
    )
