"""The trace-driven µDD execution engine.

CounterPoint's analysis layers *refute* a µDD against counter
observations; this module *executes* one. :class:`MuDDExecutor`
interprets a compiled :class:`repro.mudd.MuDD` edge-by-edge: each µop of
a workload trace is pushed through the diagram from START to END, every
``switch`` is resolved by a pluggable :mod:`oracle <repro.sim.oracles>`,
and COUNTER nodes accumulate into an observation vector. Running model A
over a trace and handing the totals to ``CounterPoint().analyze(B, ...)``
closes the loop: simulate with one model, refute another.

Execution follows the paper's traversal rule exactly (Section 3): a
property resolved earlier on the same µop's path is *not* re-asked — the
matching branch is followed — so each executed µop traces one genuine
µpath and contributes one counter signature. The totals of any run are
therefore a non-negative integer combination of the model's µpath
signatures, i.e. a point inside the generating model's cone by
construction (the counter-conservation invariant ``tests/test_sim.py``
checks).

The interpreter pre-lowers the µDD into dense integer tables
(:class:`CompiledMuDD`) so the per-µop walk touches only list indexing —
no dict-of-objects traversal on the hot path. Faster still are the
compiled backends (``backend="vector"``/``"codegen"``/``"auto"``, see
:mod:`repro.sim.engines` and :mod:`repro.sim.codegen`): bit-for-bit
equivalent engines that compress the walk to decision-to-decision hops
with deferred numpy counter accumulation, or run generated per-µDD
Python source. The interpreter (``backend="interpreter"``, the default)
remains the reference semantics every backend is fuzzed against.
"""

from repro.errors import SimulationError
from repro.mudd.graph import COUNTER, DECISION, END, EVENT, MuDD

# Node-kind opcodes of the lowered form.
_OP_FOLLOW = 0   # START / EVENT: unconditionally follow the single edge
_OP_COUNT = 1    # COUNTER: bump a counter slot, follow the single edge
_OP_SWITCH = 2   # DECISION: resolve the property, follow the branch
_OP_HALT = 3     # END


class CompiledMuDD:
    """A µDD lowered to flat tables for fast interpretation.

    Node ``i`` is described by ``ops[i]`` (opcode), ``slots[i]`` (counter
    index for ``_OP_COUNT``, property index for ``_OP_SWITCH``),
    ``nexts[i]`` (successor for non-decisions) and ``branches[i]``
    (``{value: successor}`` for decisions).
    """

    __slots__ = (
        "name",
        "counters",
        "properties",
        "ops",
        "slots",
        "nexts",
        "branches",
        "events",
        "start",
        "fingerprint",
    )

    def __init__(self, mudd, counters=None):
        if not isinstance(mudd, MuDD):
            raise SimulationError("CompiledMuDD expects a MuDD")
        mudd.validate()
        self.name = mudd.name
        self.counters = list(counters) if counters is not None else mudd.counters
        self.properties = mudd.properties
        counter_slot = {name: i for i, name in enumerate(self.counters)}
        property_slot = {name: i for i, name in enumerate(self.properties)}

        index = {node_id: i for i, node_id in enumerate(mudd.nodes)}
        n = len(index)
        self.ops = [_OP_FOLLOW] * n
        self.slots = [-1] * n
        self.nexts = [-1] * n
        self.branches = [None] * n
        self.events = [None] * n
        for node_id, node in mudd.nodes.items():
            i = index[node_id]
            out = mudd.out_edges(node_id)
            if node.kind == END:
                self.ops[i] = _OP_HALT
            elif node.kind == DECISION:
                self.ops[i] = _OP_SWITCH
                self.slots[i] = property_slot[node.label]
                self.branches[i] = {
                    edge.value: index[edge.target] for edge in out
                }
            else:
                if node.kind == COUNTER:
                    self.ops[i] = _OP_COUNT
                    # A counter outside the requested ordering is a
                    # modelling statement that it is not observed: count
                    # into a discard slot.
                    self.slots[i] = counter_slot.get(node.label, -1)
                elif node.kind == EVENT:
                    self.events[i] = node.label
                self.nexts[i] = index[out[0].target]
        self.start = index[mudd.start_node().node_id]
        # Content address of (structure, counter ordering) — the cache
        # key for generated simulator programs (repro.sim.codegen).
        from repro.cone.cache import mudd_fingerprint

        self.fingerprint = mudd_fingerprint(mudd, self.counters)

    def branch_values(self, node_index):
        """Branch labels of a decision node, in edge order.

        Edge order is load-bearing: samplers compiled by the fast
        backends dispatch on branch *indices* into this list, and the
        ``branches`` dicts preserve µDD edge insertion order across
        compile and pickle round-trips
        (``tests/test_sim_equivalence.py`` pins this).
        """
        return list(self.branches[node_index])


class MuDDExecutor:
    """Executes a µDD over µop streams, one µpath per µop.

    Parameters
    ----------
    mudd:
        The model to execute (a validated :class:`MuDD` or an already
        lowered :class:`CompiledMuDD`).
    counters:
        Counter ordering for the observation vector; defaults to the
        µDD's own counters. Counters the µDD never increments read 0 —
        matching :func:`repro.mudd.paths.signature_matrix` semantics.
    max_steps:
        Safety valve on nodes visited per µop (malformed oracles cannot
        loop because µDDs are acyclic, but a generous bound keeps the
        failure mode explicit). Enforced identically — same
        :class:`SimulationError`, same message, same oracle-call cutoff
        — by every backend.
    backend:
        Execution engine: ``"interpreter"`` (the default; the reference
        node-by-node walk), ``"vector"`` (decision-skeleton walk with
        deferred numpy counter accumulation), ``"codegen"`` (generated
        per-µDD Python source, cached by µDD fingerprint), or
        ``"auto"`` (codegen with built-in fallbacks). All backends are
        bit-for-bit equivalent; the knob only trades compile time for
        per-µop speed.
    """

    def __init__(self, mudd, counters=None, max_steps=100000,
                 backend="interpreter"):
        if isinstance(mudd, CompiledMuDD):
            self.compiled = mudd
            if counters is not None and list(counters) != mudd.counters:
                raise SimulationError(
                    "counters of a pre-compiled µDD cannot be re-ordered"
                )
        else:
            self.compiled = CompiledMuDD(mudd, counters=counters)
        self.max_steps = max_steps
        self.totals = [0] * len(self.compiled.counters)
        self.n_uops = 0
        from repro.sim.engines import resolve_backend

        self.backend = resolve_backend(backend)
        self._engine = self._build_engine()

    def _build_engine(self):
        """Lower the compiled tables for the requested backend (``None``
        for the interpreter), under a ``sim.compile`` obs span."""
        if self.backend == "interpreter":
            return None
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        with tracer.span(
            "sim.compile", model=self.compiled.name, backend=self.backend
        ):
            if self.backend == "vector":
                from repro.sim.engines import VectorEngine

                engine = VectorEngine(self.compiled)
            elif self.backend == "codegen":
                from repro.sim.codegen import CodegenEngine

                engine = CodegenEngine(self.compiled)
            else:
                from repro.sim.codegen import auto_engine

                engine = auto_engine(self.compiled)
        if tracer.enabled:
            tracer.metrics.counter("sim.backend.%s" % engine.name).inc()
        return engine

    def _flush(self):
        """Fold any backend-deferred counts into ``totals``."""
        if self._engine is not None:
            self._engine.flush(self)

    @property
    def counters(self):
        return list(self.compiled.counters)

    # -- single-µop execution ---------------------------------------------
    def run_uop(self, oracle, op=None):
        """Push one µop through the diagram; returns its assignments.

        ``op`` is handed to the oracle with every resolution request so
        stateful oracles (the MMU devices) know which access they are
        deciding for.
        """
        if self._engine is not None:
            assignments = self._engine.run_uop(self, oracle, op)
            self._engine.flush(self)
            return assignments
        return self._interpret_uop(oracle, op)

    def _step(self, oracle, op):
        """One µop on the active engine, counters possibly deferred —
        the batch-path primitive (``run``/``run_intervals`` flush at
        read points instead of per µop)."""
        if self._engine is not None:
            return self._engine.run_uop(self, oracle, op)
        return self._interpret_uop(oracle, op)

    def _interpret_uop(self, oracle, op):
        compiled = self.compiled
        ops = compiled.ops
        totals = self.totals
        on_event = getattr(oracle, "on_event", None)
        assignments = {}
        node = compiled.start
        steps = 0
        while ops[node] != _OP_HALT:
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    "µop exceeded %d steps in %r" % (self.max_steps, compiled.name)
                )
            opcode = ops[node]
            if opcode == _OP_SWITCH:
                slot = compiled.slots[node]
                prop = compiled.properties[slot]
                branches = compiled.branches[node]
                value = assignments.get(prop)
                if value is None:
                    value = oracle.resolve(prop, list(branches), op)
                    assignments[prop] = value
                target = branches.get(value)
                if target is None:
                    raise SimulationError(
                        "oracle resolved %s=%r but %r offers branches %s"
                        % (prop, value, compiled.name, ", ".join(branches))
                    )
                node = target
            else:
                if opcode == _OP_COUNT:
                    slot = compiled.slots[node]
                    if slot >= 0:
                        totals[slot] += 1
                elif on_event is not None and compiled.events[node] is not None:
                    on_event(compiled.events[node], op)
                node = compiled.nexts[node]
        self.n_uops += 1
        return assignments

    # -- trace execution ----------------------------------------------------
    def _uop_stream(self, oracle, uops):
        """The trace µops interleaved with oracle-injected ones (e.g. the
        translation prefetches an MMU oracle's trigger detector emits)."""
        inject = getattr(oracle, "pending_uops", None)
        for op in uops:
            yield op
            if inject is not None:
                for extra in inject():
                    yield extra

    def run(self, oracle, uops):
        """Execute a µop stream; returns cumulative totals as a dict.

        ``uops`` is any iterable of µops — :meth:`Workload.ops
        <repro.workloads.base.Workload.ops>` output, a
        :class:`~repro.workloads.trace.TraceWorkload` replay, or plain
        ``None`` placeholders for oracles that ignore the µop.
        """
        if self._engine is not None:
            self._engine.run_trace(self, oracle, uops)
            return self.snapshot()
        begin = getattr(oracle, "begin_uop", None)
        for op in self._uop_stream(oracle, uops):
            if begin is not None:
                begin(op)
            self.run_uop(oracle, op)
        return self.snapshot()

    def run_intervals(self, oracle, uops, uops_per_interval):
        """Execute a stream and yield per-interval counter deltas — the
        perf-style time series the noise stage consumes.

        ``uops_per_interval`` is a positive int (fixed-size intervals) or
        an iterable of positive ints (a cycled schedule), mirroring
        :meth:`repro.mmu.core.MMUSimulator.run_intervals`.
        """
        if isinstance(uops_per_interval, int):
            if uops_per_interval <= 0:
                raise SimulationError("uops_per_interval must be positive")
            schedule = [uops_per_interval]
        else:
            schedule = [int(size) for size in uops_per_interval]
            if not schedule or any(size <= 0 for size in schedule):
                raise SimulationError("interval schedule must be positive ints")
        begin = getattr(oracle, "begin_uop", None)
        self._flush()
        previous = list(self.totals)
        in_interval = 0
        slot = 0
        target = schedule[0]
        for op in self._uop_stream(oracle, uops):
            if begin is not None:
                begin(op)
            self._step(oracle, op)
            in_interval += 1
            if in_interval == target:
                self._flush()
                current = list(self.totals)
                yield {
                    name: current[i] - previous[i]
                    for i, name in enumerate(self.compiled.counters)
                }
                previous = current
                in_interval = 0
                slot += 1
                target = schedule[slot % len(schedule)]
        if in_interval:
            self._flush()
            current = list(self.totals)
            yield {
                name: current[i] - previous[i]
                for i, name in enumerate(self.compiled.counters)
            }

    # -- results ---------------------------------------------------------------
    def snapshot(self):
        """Cumulative counter totals (counter name → count)."""
        self._flush()
        return {
            name: self.totals[i] for i, name in enumerate(self.compiled.counters)
        }

    def reset(self):
        """Zero the accumulated totals (the compiled model is reused)."""
        self.totals = [0] * len(self.compiled.counters)
        self.n_uops = 0
        if self._engine is not None:
            self._engine.reset()

    def __repr__(self):
        return "MuDDExecutor(%r, %d µops executed, backend=%s)" % (
            self.compiled.name,
            self.n_uops,
            self.backend,
        )
