"""Oracles: pluggable resolvers for µDD ``switch`` outcomes.

The :class:`~repro.sim.executor.MuDDExecutor` is policy-free — when a
µop's path reaches a decision node it asks an oracle which branch the
hardware would take. Three families are provided:

* :class:`RandomOracle` — seeded stochastic choice with optional
  per-property branch weights. This is the synthetic-scenario generator:
  any µDD becomes a counter-observation sampler without modelling a
  device. Its semantics (independent choice per fresh property per µop)
  are exactly what :mod:`repro.sim.batch` vectorises.
* :class:`TableOracle` — fixed property → value (or callable) mapping
  for scripted, fully deterministic runs.
* :class:`MMUOracle` — the closed-loop device oracle: resolves the
  Haswell model vocabulary (``L1TlbStatus``, ``StlbStatus``,
  ``Pde$Status``, ``Merged``, ``RefMix<n>``, ``WalkReplayed``, ...)
  against live :mod:`repro.mmu` components — real TLB arrays, paging
  structure caches, the synthetic page table, the data-cache hierarchy
  and the LSQ prefetch-trigger detector — so executing a µDD over an
  address trace produces counter totals shaped by genuine locality.

Every oracle implements ``resolve(prop, values, op)`` where ``values``
is the list of branch labels the model offers (in edge order). Oracles
may also implement ``begin_uop(op)`` (per-µop device bookkeeping),
``on_event(name, op)`` (EVENT-node side effects such as ``StartWalk``)
and ``pending_uops()`` (injecting extra µops, e.g. translation
prefetches).
"""

import random
import re

from repro.cache import CacheHierarchy
from repro.errors import SimulationError
from repro.mmu.config import MMUConfig, PageSize
from repro.mmu.paging import PageTable, PagingStructureCache
from repro.mmu.prefetcher import PrefetchTrigger
from repro.mmu.tlb import L1DTLB, STLB

# Serving-level order used by the RefMix multiset labels
# (matches repro.models.haswell.REF_LEVELS).
_REF_LEVEL_ORDER = {"l1": 0, "l2": 1, "l3": 2, "mem": 3}

_REFMIX_RE = re.compile(r"^(?P<prefix>[A-Za-z]*?)RefMix(?P<count>\d+)$")


class Oracle:
    """Base class; subclasses implement :meth:`resolve`."""

    def begin_uop(self, op):
        """Per-µop bookkeeping before the walk starts (optional)."""

    def resolve(self, prop, values, op):
        """Choose one of ``values`` for property ``prop`` on µop ``op``."""
        raise NotImplementedError

    def pending_uops(self):
        """µops the device wants injected after the current one."""
        return []

    def compile_sampler(self, prop, values, model="µDD"):
        """A specialised ``op -> branch index`` closure for one decision.

        ``values`` is the branch label list in µDD edge order; the
        returned callable must consume exactly the state a
        :meth:`resolve` call would (same RNG draws, same side effects)
        and map the chosen label to its edge index — the contract the
        fast backends (:mod:`repro.sim.engines`) rely on for bit-for-bit
        equivalence with the interpreter. The base implementation wraps
        :meth:`resolve`; subclasses may specialise (see
        :class:`RandomOracle`).
        """
        values = list(values)
        index = {value: position for position, value in enumerate(values)}
        resolve = self.resolve

        def sample(op):
            value = resolve(prop, list(values), op)
            branch = index.get(value)
            if branch is None:
                raise SimulationError(
                    "oracle resolved %s=%r but %r offers branches %s"
                    % (prop, value, model, ", ".join(values))
                )
            return branch

        return sample


class RandomOracle(Oracle):
    """Seeded stochastic branch choice.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds replay identical decision streams.
    weights:
        Optional ``{property: {value: weight}}``. Weights are
        renormalised over the branch values the model actually offers;
        values without a weight default to 1. Properties not listed are
        uniform.
    """

    def __init__(self, seed=0, weights=None):
        self._rng = random.Random(seed)
        self.weights = dict(weights or {})

    def resolve(self, prop, values, op):
        # Sort for reproducibility independent of model edge order.
        candidates = sorted(values)
        table = self.weights.get(prop)
        if not table:
            return candidates[self._rng.randrange(len(candidates))]
        branch_weights = [float(table.get(value, 1.0)) for value in candidates]
        total = sum(branch_weights)
        if total <= 0:
            raise SimulationError(
                "weights for property %r sum to zero over branches %s"
                % (prop, ", ".join(candidates))
            )
        pick = self._rng.random() * total
        for value, weight in zip(candidates, branch_weights):
            pick -= weight
            if pick < 0:
                return value
        return candidates[-1]

    def compile_sampler(self, prop, values, model="µDD"):
        """Branch-index sampler replicating :meth:`resolve` exactly.

        The sorted-candidate table, weight vector, and float scan are
        precomputed once; each call consumes the same single
        ``randrange``/``random`` draw the interpreter would, so the RNG
        stream stays bit-for-bit aligned.
        """
        values = list(values)
        candidates = sorted(values)
        to_edge = [values.index(value) for value in candidates]
        table = self.weights.get(prop)
        if not table:
            def sample(op, _randrange=self._rng.randrange,
                       _map=to_edge, _n=len(candidates)):
                return _map[_randrange(_n)]

            return sample
        branch_weights = [float(table.get(value, 1.0)) for value in candidates]
        total = sum(branch_weights)
        if total <= 0:
            message = (
                "weights for property %r sum to zero over branches %s"
                % (prop, ", ".join(candidates))
            )

            def sample(op, _message=message):
                raise SimulationError(_message)

            return sample
        if len(candidates) == 2:
            # The two-branch scan collapses to one compare; the float
            # arithmetic (multiply, then a single subtraction) is the
            # resolve scan's exact op sequence, and the fallthrough
            # (``pick`` never going negative) lands on candidates[-1]
            # either way.
            def sample(op, _random=self._rng.random, _total=total,
                       _w0=branch_weights[0], _b0=to_edge[0],
                       _b1=to_edge[1]):
                return _b0 if _random() * _total - _w0 < 0 else _b1

            return sample
        pairs = list(zip(to_edge, branch_weights))

        def sample(op, _random=self._rng.random, _pairs=pairs,
                   _total=total, _last=to_edge[-1]):
            pick = _random() * _total
            for branch, weight in _pairs:
                pick -= weight
                if pick < 0:
                    return branch
            return _last

        return sample


class TableOracle(Oracle):
    """Fixed property → value mapping (values may be callables).

    A callable entry receives ``(op, values)`` and returns the branch
    label — enough to script per-µop behaviour without a device model.
    Unknown properties go to ``fallback`` (default: error).
    """

    def __init__(self, mapping, fallback=None):
        self.mapping = dict(mapping)
        self.fallback = fallback

    def resolve(self, prop, values, op):
        if prop in self.mapping:
            entry = self.mapping[prop]
            return entry(op, values) if callable(entry) else entry
        if self.fallback is not None:
            return self.fallback.resolve(prop, values, op)
        raise SimulationError(
            "TableOracle has no entry for property %r (branches: %s)"
            % (prop, ", ".join(values))
        )

    def compile_sampler(self, prop, values, model="µDD"):
        """Constant entries compile to a constant branch index; callable
        entries and fallback chains keep the generic resolve wrapper."""
        if prop in self.mapping and not callable(self.mapping[prop]):
            entry = self.mapping[prop]
            values = list(values)
            try:
                branch = values.index(entry)
            except ValueError:
                message = (
                    "oracle resolved %s=%r but %r offers branches %s"
                    % (prop, entry, model, ", ".join(values))
                )

                def sample(op, _message=message):
                    raise SimulationError(_message)

                return sample

            def sample(op, _branch=branch):
                return _branch

            return sample
        return Oracle.compile_sampler(self, prop, values, model=model)


class PrefetchUop:
    """A translation prefetch injected by the MMU oracle's trigger
    detector — executed as its own µDD walk (``UopType = TlbPrefetch``)."""

    __slots__ = ("target_vpn",)

    def __init__(self, target_vpn):
        self.target_vpn = target_vpn

    def __repr__(self):
        return "PrefetchUop(vpn=0x%x)" % (self.target_vpn,)


class MMUOracle(Oracle):
    """Resolves the Haswell model vocabulary against live MMU devices.

    The oracle owns the same component set as
    :class:`repro.mmu.core.MMUSimulator` — TLB arrays, PSCs, page table,
    cache hierarchy, prefetch trigger — but performs *no counting*: the
    executed µDD decides what increments. Device side effects are keyed
    off the resolutions themselves plus the conventional event names the
    model library emits (``StartWalk`` schedules an outstanding walk;
    ``PrefetchWalk`` resolves a prefetch against the accessed bit).

    Properties outside the vocabulary are delegated to ``fallback``
    (default: a :class:`RandomOracle` seeded from ``config.seed``), so
    any µDD can execute against the device substrate.

    Parameters
    ----------
    config:
        :class:`MMUConfig`; defaults to full Haswell. Match the feature
        set to the model being executed (see :meth:`for_features`) —
        e.g. an oracle with the prefetcher enabled injects
        ``TlbPrefetch`` µops, which only models with a prefetch branch
        can absorb.
    page_size:
        Page size backing the trace's address space.
    """

    def __init__(self, config=None, page_size=PageSize.SIZE_4K, cache_hierarchy=None, fallback=None):
        self.config = config or MMUConfig.full_haswell()
        self.page_size = PageSize.validate(page_size)
        self.page_table = PageTable(page_size)
        self.l1_tlb = L1DTLB(self.config)
        self.stlb = STLB(self.config)
        self.pscs = {
            "pd": PagingStructureCache("pd", self.config.pde_cache_entries),
            "pdpt": PagingStructureCache("pdpt", self.config.pdpte_cache_entries),
            "pml4": PagingStructureCache(
                "pml4", self.config.pml4e_cache_entries, enabled=self.config.pml4e_cache
            ),
        }
        self.caches = cache_hierarchy or CacheHierarchy()
        self.prefetch_trigger = PrefetchTrigger()
        self.fallback = fallback or RandomOracle(seed=self.config.seed)

        self.tick = 0
        self._outstanding = {}  # vpn -> completion tick
        self._op = None
        self._vpn = None
        self._probe_memo = {}
        self._triggered = None       # prefetch target vpn of the current µop
        self._pf_inline = False      # consumed by a PfIssued switch?
        # Whether the model types prefetches as standalone µops
        # (UopType = TlbPrefetch, the m-series shape) — learned from the
        # branch set the first time UopType is resolved.
        self._standalone_prefetch = False

    @classmethod
    def for_features(cls, features, page_size=PageSize.SIZE_4K, **overrides):
        """An oracle whose device set matches a Table 3 feature set, so
        m-series µDDs execute against matching hardware."""
        features = frozenset(features)
        config = MMUConfig(
            prefetcher="TlbPf" in features,
            merging="Merging" in features,
            early_psc="EarlyPsc" in features,
            pml4e_cache="Pml4eCache" in features,
            walk_replay="WalkBypass" in features,
            **overrides
        )
        return cls(config, page_size=page_size)

    # -- per-µop bookkeeping ------------------------------------------------
    def begin_uop(self, op):
        self.tick += 1
        self._complete_due_walks()
        self._op = op
        self._probe_memo = {}
        self._triggered = None
        self._pf_inline = False
        if isinstance(op, PrefetchUop):
            self._vpn = op.target_vpn
            return
        self._vpn = self.page_table.vpn(op.vaddr)
        if op.kind == "load" and self.config.prefetcher:
            target_vpn = self.prefetch_trigger.observe(
                op.vaddr, self.page_table.page_bytes
            )
            if target_vpn is not None and not self._translation_cached(target_vpn):
                self._triggered = target_vpn

    def pending_uops(self):
        """Standalone prefetch µops for models that type prefetches as
        their own request kind. Trigger models consume the prefetch
        inline (a ``PfIssued`` switch on the triggering µop's path), in
        which case nothing is injected."""
        if (
            self._triggered is None
            or self._pf_inline
            or not self._standalone_prefetch
        ):
            return []
        target, self._triggered = self._triggered, None
        return [PrefetchUop(target)]

    # -- resolution ------------------------------------------------------------
    def resolve(self, prop, values, op):
        refmix = _REFMIX_RE.match(prop)
        if refmix is not None:
            return self._resolve_refmix(
                int(refmix.group("count")),
                pf_context=refmix.group("prefix").startswith("Pf"),
            )
        pf_context = prop.startswith("Pf") and prop != "PfIssued"
        base = prop[2:] if pf_context else prop
        if prop == "UopType":
            self._standalone_prefetch = "TlbPrefetch" in values
            if isinstance(self._op, PrefetchUop):
                return "TlbPrefetch"
            return "Load" if self._op.kind == "load" else "Store"
        if prop == "L1TlbStatus":
            if self.l1_tlb.lookup(self._vpn, self.page_size):
                self.page_table.set_accessed(self._vpn)
                return "Hit"
            return "Miss"
        if prop == "StlbStatus":
            if self.stlb.lookup(self._vpn, self.page_size):
                self.l1_tlb.insert(self._vpn, self.page_size)
                self.page_table.set_accessed(self._vpn)
                return "Hit4k" if self.page_size == PageSize.SIZE_4K else "Hit2m"
            return "Miss"
        if base == "PageSize":
            return self.page_size
        if prop == "Merged":
            merged = self.config.merging and self._vpn in self._outstanding
            return "Yes" if merged else "No"
        if base == "Pde$Status":
            return self._probe("pd", pf_context)
        if base == "Pdpte$Status":
            return self._probe("pdpt", pf_context)
        if base == "Pml4e$Status":
            return self._probe("pml4", pf_context)
        if prop == "Retires":
            if isinstance(self._op, PrefetchUop):
                return "Yes"
            return "Yes" if self._op.retires else "No"
        if prop == "WalkReplayed":
            replayed = self.config.walk_replay and not self.page_table.is_accessed(
                self._vpn
            )
            return "Yes" if replayed else "No"
        if prop == "PfIssued":
            # The inline (trigger-model) prefetch. Restricted to retiring
            # µops so a non-speculative trigger's Retires=Yes pin stays
            # consistent with the µop's own retirement.
            self._pf_inline = True
            issued = self._triggered is not None and self._op.retires
            return "Yes" if issued else "No"
        if prop in ("WalkAborted", "ReqAbortL1", "ReqAbortL2", "ReqAbortPsc"):
            # Demand translations in the functional substrate run to
            # completion; abort behaviour is a modelling hypothesis, not
            # a device outcome.
            return "No"
        return self.fallback.resolve(prop, values, op)

    # -- event side effects -------------------------------------------------
    def on_event(self, name, op):
        if name == "StartWalk":
            self._start_walk()
        elif name == "PrefetchWalk":
            self._resolve_prefetch()

    # -- device mechanics ----------------------------------------------------
    def _vaddr(self, pf_context=False):
        if isinstance(self._op, PrefetchUop):
            return self._op.target_vpn * self.page_table.page_bytes
        if pf_context and self._triggered is not None:
            # Inline (trigger-model) prefetch: Pf-prefixed properties
            # describe the *target* page's walk, not the µop's own.
            return self._triggered * self.page_table.page_bytes
        return self._op.vaddr

    def _translation_cached(self, vpn):
        """Would a prefetch for ``vpn`` be dropped? (already translated
        or already being walked — MMUSimulator._issue_prefetch's guards)."""
        return (
            self.l1_tlb.lookup(vpn, self.page_size)
            or self.stlb.lookup(vpn, self.page_size)
            or vpn in self._outstanding
        )

    def _probe(self, level, pf_context=False):
        """Probe one PSC at most once per µop and context (memoised so a
        model that shares the status property between probe and walk
        body sees one consistent outcome)."""
        memo_key = (level, pf_context)
        if memo_key not in self._probe_memo:
            hit = self.pscs[level].lookup(self._vaddr(pf_context), self.page_size)
            self._probe_memo[memo_key] = "Hit" if hit else "Miss"
        return self._probe_memo[memo_key]

    def _resolve_refmix(self, count, pf_context=False):
        """Perform ``count`` page-walker loads (the deepest ``count``
        levels of the walk) and report the serving-level multiset."""
        vaddr = self._vaddr(pf_context)
        levels = self.page_table.walk_levels(None)
        if count > len(levels):
            raise SimulationError(
                "model requests %d walker loads but a %s walk reads at most %d"
                % (count, self.page_size, len(levels))
            )
        read = levels[len(levels) - count :]
        served = []
        for level in read:
            served.append(self.caches.access(self.page_table.entry_address(level, vaddr)))
        self._fill_pscs(vaddr, read)
        served.sort(key=_REF_LEVEL_ORDER.__getitem__)
        return "_".join(served)

    def _fill_pscs(self, vaddr, levels_read):
        leaf = {
            PageSize.SIZE_4K: "pt",
            PageSize.SIZE_2M: "pd",
            PageSize.SIZE_1G: "pdpt",
        }[self.page_size]
        for level in levels_read:
            if level != leaf and level in self.pscs:
                self.pscs[level].insert(vaddr)

    def _start_walk(self):
        """``StartWalk`` event: allocate an outstanding walk whose
        completion (walk_latency_ops µops later) fills both TLB levels
        and sets the leaf accessed bit."""
        if isinstance(self._op, PrefetchUop):
            return  # prefetch walks resolve via PrefetchWalk
        self._outstanding.setdefault(
            self._vpn, self.tick + self.config.walk_latency_ops
        )
        if len(self._outstanding) > self.config.mshr_entries:
            oldest = min(self._outstanding, key=self._outstanding.get)
            self._fill(oldest)
            del self._outstanding[oldest]

    def _resolve_prefetch(self):
        """``PrefetchWalk`` event: fill on success, abort silently when
        the target's accessed bit is unset (the Section 7.1 behaviour)."""
        if isinstance(self._op, PrefetchUop):
            vpn = self._op.target_vpn
        elif self._triggered is not None:
            vpn = self._triggered
        else:
            vpn = self._vpn
        if not self.page_table.is_accessed(vpn):
            return
        self._fill(vpn)

    def _complete_due_walks(self):
        if not self._outstanding:
            return
        due = [vpn for vpn, at in self._outstanding.items() if at <= self.tick]
        for vpn in due:
            self._fill(vpn)
            del self._outstanding[vpn]

    def _fill(self, vpn):
        self.page_table.set_accessed(vpn)
        self.l1_tlb.insert(vpn, self.page_size)
        self.stlb.insert(vpn, self.page_size)

    def __repr__(self):
        return "MMUOracle(%r, page_size=%s, tick=%d)" % (
            self.config,
            self.page_size,
            self.tick,
        )
