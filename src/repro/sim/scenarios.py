"""Scenario generation and closed-loop validation helpers.

The one-call layer over the execution engine: turn any model (µDD, DSL
source, or bundled-model name) into :class:`repro.models.dataset.
Observation` objects that are drop-in compatible with the analysis
pipeline — ``CounterPoint.analyze`` / ``sweep`` consume them exactly
like hardware measurements. The headline workflow is the *closed loop*:
simulate counter observations from model X, test them against candidate
models Y₁..Yₙ, and watch the candidates that disagree with X's
mechanisms get refuted (:func:`closed_loop`).
"""

from repro.counters.sampling import collect_interval_samples
from repro.dsl import compile_dsl
from repro.errors import SimulationError
from repro.mudd import MuDD
from repro.sim.batch import batch_simulate
from repro.sim.executor import MuDDExecutor
from repro.sim.noise import default_multiplexer, simulate_interval_matrix


def as_mudd(model, name=None):
    """Coerce a model argument to a validated µDD.

    Accepts a :class:`MuDD`, DSL source text (anything containing a
    statement terminator), or a bundled-model name
    (:mod:`repro.models.bundled`).
    """
    if isinstance(model, MuDD):
        return model
    if isinstance(model, str):
        if ";" in model or "{" in model:
            return compile_dsl(model, name=name or "model")
        from repro.models.bundled import load_bundled_model

        return load_bundled_model(model)
    raise SimulationError("cannot interpret %r as a model" % (type(model).__name__,))


def simulate_observation(
    model,
    n_uops=20000,
    n_intervals=20,
    weights=None,
    seed=0,
    multiplexer=None,
    noisy=False,
    name=None,
    backend="auto",
):
    """Simulate one measured run of ``model``: exact totals plus a
    perf-style interval sample matrix.

    The stochastic mode (per-µop branch sampling, optionally biased by
    ``weights``) runs batched: intervals are independent multinomial
    draws. ``noisy=True`` (or an explicit ``multiplexer``) replays the
    interval stream through counter multiplexing so the samples carry
    realistic correlated noise. Returns an
    :class:`~repro.models.dataset.Observation`. ``backend`` is the sim
    backend knob (compiled backends memoize the model's µpath
    distribution across runs; totals are identical for every choice).
    """
    from repro.models.dataset import Observation
    from repro.obs.trace import get_tracer

    mudd = as_mudd(model, name=name)
    if n_intervals < 2:
        raise SimulationError("need at least 2 intervals per observation")
    per_interval, remainder = divmod(n_uops, n_intervals)
    if per_interval <= 0:
        raise SimulationError(
            "%d µops cannot fill %d intervals" % (n_uops, n_intervals)
        )
    with get_tracer().span(
        "sim.observe", model=mudd.name, uops=n_uops, intervals=n_intervals,
        backend=backend,
    ):
        if noisy and multiplexer is None:
            multiplexer = default_multiplexer(seed=seed)
        samples = simulate_interval_matrix(
            mudd,
            n_intervals,
            per_interval,
            weights=weights,
            seed=seed,
            multiplexer=multiplexer,
            backend=backend,
        )
        totals = samples.true_totals()
        if remainder:
            tail = batch_simulate(
                mudd, remainder, weights=weights, seed=seed + 1,
                backend=backend,
            )
            for counter, value in tail.observation(0).items():
                totals[counter] += value
        totals = {counter: int(value) for counter, value in totals.items()}
        return Observation(
            name or "sim:%s" % mudd.name,
            "sim",
            totals,
            samples,
            meta={"model": mudd.name, "n_uops": n_uops, "seed": seed},
        )


def simulate_dataset(
    model, n_observations, n_uops=20000, weights=None, seed=0, noisy=False, **options
):
    """A tuple of independent simulated observations of one model — the
    synthetic analogue of :func:`repro.models.dataset.standard_dataset`,
    ready for ``CounterPoint.sweep``."""
    mudd = as_mudd(model)
    return tuple(
        simulate_observation(
            mudd,
            n_uops=n_uops,
            weights=weights,
            seed=seed + run,
            noisy=noisy,
            name="sim:%s/run%d" % (mudd.name, run),
            **options
        )
        for run in range(n_observations)
    )


def trace_observation(model, oracle, workload, n_uops, n_intervals=20,
                      name=None, backend="interpreter"):
    """Simulate one run the event-driven way: execute the µDD over a
    workload's µop stream with a stateful (device) oracle, collecting
    per-interval deltas. This is the path real address traces take
    (:class:`repro.workloads.trace.TraceWorkload` is a workload).
    ``backend`` selects the :class:`MuDDExecutor` engine — identical
    observations, different wall-clock."""
    from repro.models.dataset import Observation

    mudd = as_mudd(model, name=name)
    if n_intervals < 2:
        raise SimulationError("need at least 2 intervals per observation")
    per_interval = max(1, n_uops // n_intervals)
    executor = MuDDExecutor(mudd, backend=backend)
    intervals = list(
        executor.run_intervals(oracle, workload.ops(n_uops), per_interval)
    )
    samples = collect_interval_samples(executor.counters, intervals)
    return Observation(
        name or "trace:%s" % mudd.name,
        "sim",
        executor.snapshot(),
        samples,
        meta={"model": mudd.name, "workload": workload.describe(), "n_uops": n_uops},
    )


def closed_loop(observed_model, candidate_models, n_uops=20000, weights=None,
                seed=0, backend="exact", use_regions=False, confidence=0.99,
                workers=1, cache_dir=None, sim_backend="auto"):
    """Simulate observations from one model; test every candidate.

    Returns ``{candidate_name: AnalysisReport}``. The observed model
    itself is always feasible (its totals lie in its own cone by
    construction — counter conservation), so including it among the
    candidates is the standard sanity row; candidates whose mechanisms
    disagree get refuted, closing the simulate→refute loop.

    Candidate cones come from the process-wide content-addressed cache
    (:func:`repro.cone.cache.get_model_cone`) — with ``cache_dir`` from
    its persistent on-disk tier, so repeated closed-loop runs skip
    µpath enumeration (and constraint deduction, once a candidate has
    ever been refuted) even across processes and CI runs. With
    ``workers > 1`` the candidate loop shards across a process pool
    (:func:`repro.parallel.parallel_closed_loop`) with identical
    results. ``backend`` is the LP backend; ``sim_backend`` the
    simulation engine knob (identical observations for every choice).
    """
    from repro.cone.cache import get_model_cone
    from repro.pipeline import CounterPoint

    observation = simulate_observation(
        observed_model, n_uops=n_uops, weights=weights, seed=seed,
        noisy=use_regions, backend=sim_backend,
    )
    candidate_models = list(candidate_models)
    if workers is None or workers > 1:
        from repro.parallel import ParallelRunner, parallel_closed_loop

        # The pool exists only for this call; shut it down on the way
        # out instead of leaving workers to garbage-collection timing.
        with ParallelRunner(workers=workers, cache_dir=cache_dir) as runner:
            return parallel_closed_loop(
                runner,
                observation,
                candidate_models,
                backend=backend,
                confidence=confidence,
                use_regions=use_regions,
            )
    counters = observation.samples.counters
    counterpoint = CounterPoint(backend=backend, confidence=confidence)
    target = (
        observation.region(confidence=confidence)
        if use_regions
        else observation.point()
    )
    reports = {}
    for candidate in candidate_models:
        cone = get_model_cone(
            as_mudd(candidate), counters=counters, cache_dir=cache_dir
        )
        report = counterpoint.analyze(cone, target)
        reports[report.model_name] = report
    return reports
