"""Fast execution backends behind :class:`~repro.sim.executor.CompiledMuDD`.

The interpreter in :mod:`repro.sim.executor` walks a µDD node-by-node
per µop — correct, but every FOLLOW/COUNT hop costs a Python loop
iteration. The engines here lower the compiled tables once more, into a
*decision skeleton*: runs of non-decision nodes between decisions are
compressed into macro-edges carrying a numpy counter-delta row, a step
count, and the EVENT labels they pass. A µop then hops decision-to-
decision, and counter accumulation is deferred — each traversed
macro-edge bumps one bucket, and the buckets flush into the totals with
a single ``hits @ delta_matrix`` multiply.

Two engines build on the skeleton:

* :class:`VectorEngine` (``backend="vector"``) — the skeleton walk
  itself, plus a *samplable-oracle* fast loop that replaces
  ``oracle.resolve`` with per-decision sampler closures
  (:meth:`repro.sim.oracles.Oracle.compile_sampler`) returning branch
  indices directly.
* :class:`~repro.sim.codegen.CodegenEngine` (``backend="codegen"``) —
  extends the vector engine with generated Python source per µDD (the
  decision tree unrolled into nested ``if``/``elif`` dispatch, leaf
  µpath buckets, no dict lookups), cached by µDD fingerprint.

Every engine is bit-for-bit equivalent to the interpreter: oracle
``resolve`` calls happen for the same properties, in the same order,
with the same branch lists, and the ``max_steps`` valve raises the
interpreter's exact :class:`SimulationError` before the first oracle
call the interpreter would not have made
(``tests/test_sim_equivalence.py`` fuzzes this).
"""

import numpy as np

from repro.errors import SimulationError
from repro.sim.oracles import Oracle

#: Valid values of the ``backend=`` knob, in documentation order.
BACKENDS = ("interpreter", "vector", "codegen", "auto")


def resolve_backend(backend):
    """Validate a ``backend=`` knob value, returning it unchanged."""
    if backend not in BACKENDS:
        raise SimulationError(
            "unknown sim backend %r (choose from %s)"
            % (backend, ", ".join(BACKENDS))
        )
    return backend


def hooks_are_noops(oracle):
    """Whether an oracle's device hooks are provably inert, making it
    *samplable*: ``begin_uop``/``pending_uops`` are the base no-ops (or
    absent) and there is no ``on_event``. Resolution statefulness is
    fine — fast loops preserve the per-µop, path-order call sequence —
    but a hooked oracle (e.g. :class:`~repro.sim.oracles.MMUOracle`)
    must take the generic walk so its bookkeeping runs."""
    cls = type(oracle)
    begin = getattr(cls, "begin_uop", None)
    if begin is not None and begin is not Oracle.begin_uop:
        return False
    pending = getattr(cls, "pending_uops", None)
    if pending is not None and pending is not Oracle.pending_uops:
        return False
    if getattr(oracle, "on_event", None) is not None:
        return False
    instance = getattr(oracle, "__dict__", None)
    if instance and ("begin_uop" in instance or "pending_uops" in instance):
        return False
    return True


def sampler_for(oracle, prop, values, model="µDD"):
    """A branch-index sampler for one decision, honouring the oracle's
    own :meth:`compile_sampler` when it has one (duck-typed oracles get
    the generic resolve-and-map wrapper)."""
    compile_sampler = getattr(oracle, "compile_sampler", None)
    if compile_sampler is not None:
        return compile_sampler(prop, values, model=model)
    return Oracle.compile_sampler(oracle, prop, values, model=model)


class _MacroEdge:
    """One compressed run of non-decision nodes.

    ``steps`` counts every node the interpreter would visit on this run
    (including the terminal decision, excluding END), ``deltas`` the
    observed-counter increments, ``events`` the EVENT labels in node
    order, and ``terminal`` the decision node index (``-1`` = END).
    """

    __slots__ = ("eid", "steps", "deltas", "events", "terminal")

    def __init__(self, eid, steps, deltas, events, terminal):
        self.eid = eid
        self.steps = steps
        self.deltas = deltas
        self.events = events
        self.terminal = terminal


class Skeleton:
    """The decision-skeleton lowering of a :class:`CompiledMuDD`.

    Attributes
    ----------
    start_edge:
        Macro-edge from the START node.
    props / values / branch_edges / branch_edge_list:
        Per decision-node index: property name, branch labels in edge
        order, ``{label: macro-edge}``, and the same edges as a list
        aligned with ``values`` (for index-dispatching samplers).
    delta_matrix:
        ``E x N`` int64 counter deltas; ``hits @ delta_matrix`` flushes
        deferred counts.
    repeats:
        Whether any property guards more than one decision node — if
        not, the per-µop assignments memo can be skipped entirely.
    max_path_len:
        Longest START→END path in interpreter steps; a run whose
        ``max_steps`` bound is at least this can never trip the valve.
    """

    __slots__ = (
        "compiled", "edges", "delta_matrix", "start_edge", "props",
        "values", "branch_edges", "branch_edge_list", "repeats",
        "max_path_len",
    )

    def __init__(self, compiled):
        self.compiled = compiled
        n_counters = len(compiled.counters)
        self.edges = []
        self.props = {}
        self.values = {}
        self.branch_edges = {}
        self.branch_edge_list = {}
        edge_for = {}

        pending = [compiled.start]
        while pending:
            anchor = pending.pop()
            if anchor in edge_for:
                continue
            edge = self._lower(compiled, anchor, n_counters)
            edge_for[anchor] = edge
            terminal = edge.terminal
            if terminal >= 0 and terminal not in self.props:
                slot = compiled.slots[terminal]
                self.props[terminal] = compiled.properties[slot]
                branches = compiled.branches[terminal]
                self.values[terminal] = tuple(branches)
                pending.extend(branches.values())
        for terminal in self.props:
            branches = compiled.branches[terminal]
            self.branch_edges[terminal] = {
                label: edge_for[target] for label, target in branches.items()
            }
            self.branch_edge_list[terminal] = [
                edge_for[target] for target in branches.values()
            ]
        self.delta_matrix = np.array(
            [edge.deltas for edge in self.edges], dtype=np.int64
        ).reshape(len(self.edges), n_counters)
        self.start_edge = edge_for[compiled.start]
        seen = set()
        self.repeats = False
        for prop in self.props.values():
            if prop in seen:
                self.repeats = True
                break
            seen.add(prop)
        self.max_path_len = self._longest_path()

    def _lower(self, compiled, anchor, n_counters):
        ops = compiled.ops
        deltas = [0] * n_counters
        events = []
        steps = 0
        node = anchor
        while True:
            opcode = ops[node]
            if opcode == 3:          # _OP_HALT
                terminal = -1
                break
            steps += 1
            if opcode == 2:          # _OP_SWITCH
                terminal = node
                break
            if opcode == 1:          # _OP_COUNT
                slot = compiled.slots[node]
                if slot >= 0:
                    deltas[slot] += 1
            elif compiled.events[node] is not None:
                events.append(compiled.events[node])
            node = compiled.nexts[node]
        edge = _MacroEdge(len(self.edges), steps, deltas, tuple(events), terminal)
        self.edges.append(edge)
        return edge

    def _longest_path(self):
        """Longest START→END walk in interpreter steps (iterative
        post-order over the acyclic skeleton)."""
        memo = {}
        stack = [(self.start_edge, False)]
        while stack:
            edge, expanded = stack.pop()
            if edge.eid in memo:
                continue
            successors = (
                self.branch_edge_list[edge.terminal]
                if edge.terminal >= 0 else []
            )
            if expanded:
                tail = max(
                    (memo[nxt.eid] for nxt in successors), default=0
                )
                memo[edge.eid] = edge.steps + tail
                continue
            stack.append((edge, True))
            for nxt in successors:
                if nxt.eid not in memo:
                    stack.append((nxt, False))
        return memo[self.start_edge.eid]


class VectorEngine:
    """The vectorised backend: skeleton walk + deferred numpy flush."""

    name = "vector"

    def __init__(self, compiled):
        self.skeleton = Skeleton(compiled)
        self._hits = [0] * len(self.skeleton.edges)
        self._dirty = False

    # -- generic per-µop walk (exact hook semantics) ----------------------
    def run_uop(self, executor, oracle, op):
        """One µop through the skeleton; bit-for-bit the interpreter's
        ``run_uop`` (same resolve order, same errors), with counter
        bumps deferred into macro-edge buckets."""
        skeleton = self.skeleton
        hits = self._hits
        on_event = getattr(oracle, "on_event", None)
        max_steps = executor.max_steps
        name = skeleton.compiled.name
        assignments = {}
        edge = skeleton.start_edge
        steps = 0
        while True:
            steps += edge.steps
            if steps > max_steps:
                raise SimulationError(
                    "µop exceeded %d steps in %r" % (max_steps, name)
                )
            hits[edge.eid] += 1
            if on_event is not None and edge.events:
                for label in edge.events:
                    on_event(label, op)
            terminal = edge.terminal
            if terminal < 0:
                break
            prop = skeleton.props[terminal]
            value = assignments.get(prop)
            if value is None:
                value = oracle.resolve(
                    prop, list(skeleton.values[terminal]), op
                )
                assignments[prop] = value
            edge = skeleton.branch_edges[terminal].get(value)
            if edge is None:
                raise SimulationError(
                    "oracle resolved %s=%r but %r offers branches %s"
                    % (prop, value, name, ", ".join(skeleton.values[terminal]))
                )
        self._dirty = True
        executor.n_uops += 1
        return assignments

    # -- whole-trace drivers ----------------------------------------------
    def run_trace(self, executor, oracle, uops):
        """Execute a µop stream. Samplable oracles take the tight
        sampler loop; hooked oracles take the generic walk with the
        interpreter's exact begin/inject ordering."""
        if hooks_are_noops(oracle):
            executor.n_uops += self._run_samplable(
                oracle, uops, executor.max_steps
            )
            return
        begin = getattr(oracle, "begin_uop", None)
        for op in executor._uop_stream(oracle, uops):
            if begin is not None:
                begin(op)
            self.run_uop(executor, oracle, op)

    def _samplers(self, oracle):
        skeleton = self.skeleton
        name = skeleton.compiled.name
        return {
            terminal: sampler_for(
                oracle, skeleton.props[terminal],
                skeleton.values[terminal], model=name,
            )
            for terminal in skeleton.props
        }

    def _run_samplable(self, oracle, uops, max_steps):
        """The fast loop: per-decision sampler closures, no resolve
        dispatch, no event checks. Returns the µop count executed."""
        skeleton = self.skeleton
        samplers = self._samplers(oracle)
        hits = self._hits
        start = skeleton.start_edge
        branch_list = skeleton.branch_edge_list
        n = 0
        if skeleton.max_path_len <= max_steps and not skeleton.repeats:
            for op in uops:
                edge = start
                hits[edge.eid] += 1
                terminal = edge.terminal
                while terminal >= 0:
                    edge = branch_list[terminal][samplers[terminal](op)]
                    hits[edge.eid] += 1
                    terminal = edge.terminal
                n += 1
        else:
            props = skeleton.props
            values = skeleton.values
            branch_map = skeleton.branch_edges
            name = skeleton.compiled.name
            for op in uops:
                edge = start
                steps = 0
                assignments = {}
                while True:
                    steps += edge.steps
                    if steps > max_steps:
                        raise SimulationError(
                            "µop exceeded %d steps in %r" % (max_steps, name)
                        )
                    hits[edge.eid] += 1
                    terminal = edge.terminal
                    if terminal < 0:
                        break
                    prop = props[terminal]
                    label = assignments.get(prop)
                    if label is None:
                        branch = samplers[terminal](op)
                        assignments[prop] = values[terminal][branch]
                        edge = branch_list[terminal][branch]
                    else:
                        edge = branch_map[terminal].get(label)
                        if edge is None:
                            raise SimulationError(
                                "oracle resolved %s=%r but %r offers "
                                "branches %s"
                                % (prop, label, name,
                                   ", ".join(values[terminal]))
                            )
                n += 1
        if n:
            self._dirty = True
        return n

    # -- deferred counters --------------------------------------------------
    def flush(self, executor):
        """Fold pending macro-edge hits into the executor's totals."""
        if not self._dirty:
            return
        pending = np.asarray(self._hits, dtype=np.int64) @ self.skeleton.delta_matrix
        totals = executor.totals
        for index, value in enumerate(pending):
            if value:
                totals[index] += int(value)
        self._hits = [0] * len(self.skeleton.edges)
        self._dirty = False

    def reset(self):
        self._hits = [0] * len(self.skeleton.edges)
        self._dirty = False


__all__ = [
    "BACKENDS",
    "Skeleton",
    "VectorEngine",
    "hooks_are_noops",
    "resolve_backend",
    "sampler_for",
]
