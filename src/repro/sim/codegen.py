"""The codegen backend: specialised Python source per µDD.

Where :class:`~repro.sim.engines.VectorEngine` still dispatches each
decision through dicts, this backend unrolls the µDD's *decision tree*
— the skeleton expanded under the traversal rule, so a property
resolved earlier on a path is statically followed, never re-asked —
into one generated ``run_trace`` function: nested ``if``/``elif``
branch dispatch on sampler-returned indices, a leaf bucket increment
per µop, no per-edge dict lookups. Leaf buckets flush with one
``counts @ leaf_deltas`` multiply, exactly like the vector engine's
macro-edge buckets.

Generated programs are content-addressed by the µDD fingerprint
(:func:`repro.cone.cache.mudd_fingerprint` over the µDD plus counter
ordering) in two tiers mirroring :class:`~repro.cone.diskcache.
DiskConeCache`: an in-process memo of compiled code objects, and an
optional on-disk :class:`CodegenDiskCache` of JSON payloads (source +
leaf tables) with atomic writes, version stamps, corruption-as-miss,
and LRU pruning. Point the disk tier somewhere with
:func:`configure_codegen_cache` or the ``REPRO_CODEGEN_CACHE``
environment variable.

The tree form only runs when it provably cannot trip the ``max_steps``
valve (``max_path_len <= max_steps``) and the tree stays under the
expansion caps; anything else — device oracles with live hooks,
pathological fan-out, tight step bounds — falls back to the inherited
vector walk, which is bit-for-bit the interpreter.
"""

import json
import os
import tempfile
import time

import numpy as np

from repro.errors import SimulationError
from repro.obs.trace import get_tracer
from repro.sim.engines import VectorEngine, hooks_are_noops

#: Bump when the generated-source contract or payload layout changes;
#: old disk entries are then regenerated instead of trusted.
CODEGEN_FORMAT_VERSION = 1

_ENTRY_SUFFIX = ".codegen.json"
_STALE_TMP_SECONDS = 600.0

#: Expansion caps: beyond these the unrolled tree stops paying for
#: itself (and deep nesting strains the Python parser), so the engine
#: keeps the vector walk instead.
MAX_TREE_NODES = 20000
MAX_TREE_DEPTH = 60

_DISPATCH_ERROR = (
    "oracle resolved %s=%r but %r offers branches %s"
)


class CodegenDiskCache:
    """Content-addressed directory of generated simulator programs.

    Same contract as :class:`~repro.cone.diskcache.DiskConeCache`:
    atomic ``os.replace`` publishes, version-stamped entries echoing
    their own key, any read failure degrades to a miss, and file mtimes
    (ratcheted monotonic per instance) drive LRU pruning.
    """

    def __init__(self, cache_dir, max_bytes=64 * 1024 * 1024,
                 version=CODEGEN_FORMAT_VERSION):
        if max_bytes is not None and max_bytes <= 0:
            raise SimulationError("codegen cache max_bytes must be positive")
        self.cache_dir = os.fspath(cache_dir)
        self.max_bytes = max_bytes
        self.version = version
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._recency_clock = 0.0
        os.makedirs(self.cache_dir, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.cache_dir, key + _ENTRY_SUFFIX)

    def get(self, key):
        """The cached payload dict for ``key``, or ``None`` (any
        failure — missing, corrupt, wrong version, wrong key — is a
        miss, and bad files are dropped)."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            self._discard(path)
            self._miss()
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != key
        ):
            self._discard(path)
            self._miss()
            return None
        self._touch(path)
        self.hits += 1
        tracer = get_tracer()
        if tracer.enabled:
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            tracer.event("cache.hit", tier="codegen", bytes=size)
            tracer.metrics.counter("cache.codegen.hits").inc()
        return payload

    def _miss(self):
        self.misses += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.miss", tier="codegen")
            tracer.metrics.counter("cache.codegen.misses").inc()

    def put(self, key, payload):
        """Atomically publish ``payload`` under ``key`` and prune."""
        payload = dict(payload)
        payload["version"] = self.version
        payload["key"] = key
        data = json.dumps(payload).encode("utf-8")
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, self._path(key))
        except BaseException:
            self._discard(temp_path)
            raise
        self._touch(self._path(key))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.write", tier="codegen", bytes=len(data))
            tracer.metrics.counter("cache.codegen.writes").inc()
        self.prune()

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        return len(self._entries())

    def _entries(self):
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return []
        return [
            os.path.join(self.cache_dir, name)
            for name in names
            if name.endswith(_ENTRY_SUFFIX)
        ]

    def total_bytes(self):
        total = 0
        for path in self._entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def _sweep_stale_temps(self, max_age=_STALE_TMP_SECONDS):
        now = time.time()
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                if now - os.stat(path).st_mtime >= max_age:
                    self._discard(path)
            except OSError:
                continue

    def prune(self):
        """Evict LRU entries until under ``max_bytes``."""
        self._sweep_stale_temps()
        if self.max_bytes is None:
            return
        stats = []
        for path in self._entries():
            try:
                info = os.stat(path)
            except OSError:
                continue
            stats.append((info.st_mtime, info.st_size, path))
        total = sum(size for _, size, _ in stats)
        if total <= self.max_bytes:
            return
        stats.sort()
        tracer = get_tracer()
        for _, size, path in stats:
            if total <= self.max_bytes:
                break
            if self._discard(path):
                self.evictions += 1
                total -= size
                if tracer.enabled:
                    tracer.event(
                        "cache.evict", tier="codegen",
                        entry=os.path.basename(path), bytes=size,
                    )
                    tracer.metrics.counter("cache.codegen.evictions").inc()

    def clear(self):
        for path in self._entries():
            self._discard(path)
        self._sweep_stale_temps(max_age=0.0)

    def _touch(self, path):
        stamp = max(time.time(), self._recency_clock + 1e-6)
        self._recency_clock = stamp
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def __repr__(self):
        return "CodegenDiskCache(%r, %d entries, %d hits, %d misses)" % (
            self.cache_dir, len(self), self.hits, self.misses,
        )


# -- default cache wiring ---------------------------------------------------

_DEFAULT_DISK_CACHE = None
_DISK_CACHE_CONFIGURED = False


def configure_codegen_cache(cache_dir, max_bytes=64 * 1024 * 1024):
    """Set (or with ``None`` clear) the process-wide disk tier for
    generated simulator programs. Overrides ``REPRO_CODEGEN_CACHE``."""
    global _DEFAULT_DISK_CACHE, _DISK_CACHE_CONFIGURED
    _DISK_CACHE_CONFIGURED = True
    if cache_dir is None:
        _DEFAULT_DISK_CACHE = None
    else:
        _DEFAULT_DISK_CACHE = CodegenDiskCache(cache_dir, max_bytes=max_bytes)
    return _DEFAULT_DISK_CACHE


def default_codegen_cache():
    """The process-wide disk tier: whatever was configured, else the
    ``REPRO_CODEGEN_CACHE`` directory, else ``None`` (memo only)."""
    global _DEFAULT_DISK_CACHE, _DISK_CACHE_CONFIGURED
    if not _DISK_CACHE_CONFIGURED:
        _DISK_CACHE_CONFIGURED = True
        env_dir = os.environ.get("REPRO_CODEGEN_CACHE")
        if env_dir:
            _DEFAULT_DISK_CACHE = CodegenDiskCache(env_dir)
    return _DEFAULT_DISK_CACHE


# -- tree building and source emission --------------------------------------

class _TreeProgram:
    """One generated simulator: source text, its compiled code object,
    and the bind-time leaf tables."""

    __slots__ = ("source", "code", "leaf_deltas", "errors", "decisions")

    def __init__(self, source, leaf_deltas, errors, decisions):
        self.source = source
        self.code = compile(source, "<repro-codegen>", "exec")
        self.leaf_deltas = np.asarray(leaf_deltas, dtype=np.int64)
        self.errors = list(errors)
        self.decisions = list(decisions)

    def bind(self, samplers, counts):
        """Exec the program and close it over this run's samplers and
        leaf buckets; returns the ``run_trace(uops) -> n`` callable."""
        namespace = {"SimulationError": SimulationError}
        exec(self.code, namespace)
        return namespace["bind"](samplers, counts, self.errors)

    def payload(self):
        return {
            "source": self.source,
            "leaf_deltas": [
                [int(value) for value in row] for row in self.leaf_deltas
            ],
            "errors": list(self.errors),
            "decisions": list(self.decisions),
        }

    @classmethod
    def from_payload(cls, payload):
        return cls(
            payload["source"],
            payload["leaf_deltas"],
            payload["errors"],
            payload["decisions"],
        )


def _build_tree(skeleton):
    """Expand the skeleton into the decision tree, or ``None`` when the
    expansion caps are exceeded.

    Returns ``(root, leaf_deltas, errors)``. Tree nodes are
    ``("leaf", leaf_id)``, ``("raise", error_id)``, or
    ``("dec", decision_node, [children in edge order])``. Repeated
    properties are resolved statically: an already-assigned decision
    contributes no child fan-out (and no sampler call), exactly the
    interpreter's traversal rule.
    """
    n_counters = skeleton.delta_matrix.shape[1]
    leaf_deltas = []
    errors = []
    budget = [MAX_TREE_NODES]

    def expand(edge, assignments, deltas, depth):
        if depth > MAX_TREE_DEPTH:
            return None
        budget[0] -= 1
        if budget[0] < 0:
            return None
        deltas = [
            deltas[i] + edge.deltas[i] for i in range(n_counters)
        ]
        terminal = edge.terminal
        while terminal >= 0:
            prop = skeleton.props[terminal]
            assigned = assignments.get(prop)
            if assigned is None:
                break
            # Statically follow the earlier assignment; a label the
            # decision does not offer raises at runtime, like the
            # interpreter's dispatch error.
            nxt = skeleton.branch_edges[terminal].get(assigned)
            if nxt is None:
                errors.append(
                    _DISPATCH_ERROR
                    % (prop, assigned, skeleton.compiled.name,
                       ", ".join(skeleton.values[terminal]))
                )
                return ("raise", len(errors) - 1)
            budget[0] -= 1
            if budget[0] < 0:
                return None
            deltas = [
                deltas[i] + nxt.deltas[i] for i in range(n_counters)
            ]
            terminal = nxt.terminal
        if terminal < 0:
            leaf_deltas.append(deltas)
            return ("leaf", len(leaf_deltas) - 1)
        children = []
        for label in skeleton.values[terminal]:
            branch_assignments = dict(assignments)
            branch_assignments[prop] = label
            child = expand(
                skeleton.branch_edges[terminal][label],
                branch_assignments, deltas, depth + 1,
            )
            if child is None:
                return None
            children.append(child)
        return ("dec", terminal, children)

    root = expand(skeleton.start_edge, {}, [0] * n_counters, 0)
    if root is None:
        return None
    return root, leaf_deltas, errors


def _emit_source(root, decisions):
    """Generated module source for a decision tree.

    The module defines ``bind(samplers, counts, errors)`` returning
    ``run_trace(uops)``: one sampler call per fresh decision on the
    path, integer branch dispatch, one leaf bucket bump per µop.
    """
    lines = ["def bind(samplers, counts, errors):"]
    lines.append("    def run_trace(uops):")
    # Locals, not closure cells, inside the hot loop.
    for node in decisions:
        lines.append("        _s%d = samplers[%d]" % (node, node))
    lines.append("        _counts = counts")
    lines.append("        n = 0")
    lines.append("        for _op in uops:")

    def emit(node, indent):
        pad = "    " * indent
        kind = node[0]
        if kind == "leaf":
            lines.append("%s_counts[%d] += 1" % (pad, node[1]))
            return
        if kind == "raise":
            lines.append(
                "%sraise SimulationError(errors[%d])" % (pad, node[1])
            )
            return
        _, decision, children = node
        lines.append("%s_b = _s%d(_op)" % (pad, decision))
        if len(children) == 1:
            emit(children[0], indent)
            return
        for branch, child in enumerate(children):
            if branch == 0:
                lines.append("%sif _b == 0:" % pad)
            elif branch < len(children) - 1:
                lines.append("%selif _b == %d:" % (pad, branch))
            else:
                lines.append("%selse:" % pad)
            emit(child, indent + 1)

    emit(root, 3)
    lines.append("            n += 1")
    lines.append("        return n")
    lines.append("    return run_trace")
    return "\n".join(lines) + "\n"


def _tree_decisions(root):
    """Decision node ids a tree actually samples, in first-use order."""
    seen = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node[0] != "dec":
            continue
        if node[1] not in seen:
            seen.append(node[1])
        stack.extend(reversed(node[2]))
    return seen


#: In-process memo of compiled programs, keyed by µDD fingerprint.
#: ``False`` marks a µDD whose tree exceeded the expansion caps.
_PROGRAM_MEMO = {}
_PROGRAM_MEMO_CAP = 256


def _program_for(skeleton, fingerprint, disk_cache):
    """The generated program for a skeleton, through both cache tiers;
    ``None`` when the tree form is unavailable for this µDD."""
    cached = _PROGRAM_MEMO.get(fingerprint)
    if cached is not None:
        return cached or None
    if disk_cache is not None:
        payload = disk_cache.get(fingerprint)
        if payload is not None:
            try:
                program = _TreeProgram.from_payload(payload)
            except Exception:
                program = None  # regenerate below
            if program is not None:
                _memoize(fingerprint, program)
                return program
    built = _build_tree(skeleton)
    if built is None:
        _memoize(fingerprint, False)
        return None
    root, leaf_deltas, errors = built
    decisions = _tree_decisions(root)
    source = _emit_source(root, decisions)
    program = _TreeProgram(source, leaf_deltas, errors, decisions)
    if disk_cache is not None:
        disk_cache.put(fingerprint, program.payload())
    _memoize(fingerprint, program)
    return program


def _memoize(fingerprint, program):
    if len(_PROGRAM_MEMO) >= _PROGRAM_MEMO_CAP:
        _PROGRAM_MEMO.pop(next(iter(_PROGRAM_MEMO)))
    _PROGRAM_MEMO[fingerprint] = program


class CodegenEngine(VectorEngine):
    """The codegen backend.

    Samplable oracles run the generated tree-form ``run_trace`` when it
    provably cannot trip ``max_steps``; everything else inherits the
    vector walk. Leaf buckets are deferred and flushed alongside the
    macro-edge buckets.
    """

    name = "codegen"

    def __init__(self, compiled, cache=None):
        VectorEngine.__init__(self, compiled)
        self._disk_cache = cache
        self._program = None
        self._program_resolved = False
        self._counts = None
        self._counts_dirty = False

    def _resolve_program(self):
        if not self._program_resolved:
            self._program_resolved = True
            cache = self._disk_cache
            if cache is None:
                cache = default_codegen_cache()
            self._program = _program_for(
                self.skeleton, self.skeleton.compiled.fingerprint, cache
            )
            if self._program is not None:
                self._counts = [0] * len(self._program.leaf_deltas)
        return self._program

    def _run_samplable(self, oracle, uops, max_steps):
        if self.skeleton.max_path_len <= max_steps:
            program = self._resolve_program()
            if program is not None:
                runner = program.bind(self._samplers(oracle), self._counts)
                n = runner(uops)
                if n:
                    self._counts_dirty = True
                return n
        return VectorEngine._run_samplable(self, oracle, uops, max_steps)

    def flush(self, executor):
        VectorEngine.flush(self, executor)
        if not self._counts_dirty:
            return
        pending = (
            np.asarray(self._counts, dtype=np.int64)
            @ self._program.leaf_deltas
        )
        totals = executor.totals
        for index, value in enumerate(pending):
            if value:
                totals[index] += int(value)
        self._counts = [0] * len(self._program.leaf_deltas)
        self._counts_dirty = False

    def reset(self):
        VectorEngine.reset(self)
        if self._counts is not None:
            self._counts = [0] * len(self._program.leaf_deltas)
        self._counts_dirty = False


def auto_engine(compiled, cache=None):
    """The ``backend="auto"`` heuristic: codegen (it embeds the vector
    walk as its own fallback, so it never loses more than compile cost),
    dropping to plain vector only if program generation itself fails."""
    try:
        return CodegenEngine(compiled, cache=cache)
    except Exception:
        return VectorEngine(compiled)


__all__ = [
    "CODEGEN_FORMAT_VERSION",
    "CodegenDiskCache",
    "CodegenEngine",
    "auto_engine",
    "configure_codegen_cache",
    "default_codegen_cache",
]
