"""Vectorised batch simulation: many traces / many models in one pass.

Under a :class:`~repro.sim.oracles.RandomOracle`, every µop samples its
µpath independently: a fresh property on the path picks a branch with a
fixed probability, so the probability of a whole µpath is the product of
its branch choices. A run of ``U`` µops is therefore a multinomial draw
over the model's (deduplicated) µpath signatures — which means a batch
of ``T`` traces collapses to one ``rng.multinomial`` call and one
matrix multiply:

    counts  = multinomial(U, path_probabilities, size=T)    # T x P
    totals  = counts @ signature_matrix                     # T x N

:func:`path_distribution` walks the µDD once to produce the signature
matrix with exact path probabilities (honouring the traversal rule —
a property assigned earlier on the path contributes no extra factor),
and :func:`batch_simulate` turns that into batched observation vectors.
This is the scenario-sweep fast path: thousands of traces or dozens of
model variants per second, statistically indistinguishable from running
the event-driven executor with the same weights, µop by µop.

The ``backend`` knob (mirroring :class:`~repro.sim.executor.
MuDDExecutor`'s) controls the distribution compile step: any compiled
backend (``"vector"``/``"codegen"``/``"auto"``, the default) memoizes
``path_distribution`` output per (µDD fingerprint, counters, weights),
so dataset generation enumerates each model's µpaths once per process
instead of once per observation. ``"interpreter"`` recomputes every
call — the reference. Either way the draws are identical: the
distribution is deterministic, and one ``rng.multinomial(U, p, size=T)``
equals ``T`` sequential draws from the same generator (the
batched-vs-loop parity ``tests/test_sim_equivalence.py`` pins).
"""

import numpy as np

from repro.errors import SimulationError
from repro.mudd.graph import COUNTER, DECISION, END, MuDD
from repro.sim.engines import resolve_backend


def _branch_probabilities(prop, branches, weights):
    """Probability per branch value, honouring optional weights."""
    values = list(branches)
    table = (weights or {}).get(prop)
    if not table:
        share = 1.0 / len(values)
        return [(value, share) for value in values]
    raw = [float(table.get(value, 1.0)) for value in values]
    total = sum(raw)
    if total <= 0:
        raise SimulationError(
            "weights for property %r sum to zero over branches %s"
            % (prop, ", ".join(values))
        )
    return [(value, weight / total) for value, weight in zip(values, raw)]


def path_distribution(mudd, counters=None, weights=None, max_paths=2000000):
    """Signatures and exact probabilities of every µpath.

    Parameters
    ----------
    mudd:
        The model; any validated :class:`MuDD`.
    counters:
        Counter ordering for signature columns (defaults to the µDD's).
    weights:
        ``{property: {value: weight}}`` branch biases, matching the
        :class:`~repro.sim.oracles.RandomOracle` parameter.

    Returns
    -------
    ``(counters, signatures, probabilities)`` where ``signatures`` is a
    ``P x N`` integer array of deduplicated µpath signatures and
    ``probabilities`` the matching length-``P`` vector (sums to 1).
    """
    if not isinstance(mudd, MuDD):
        raise SimulationError("path_distribution expects a MuDD")
    if counters is None:
        counters = mudd.counters
    counters = list(counters)
    index = {name: position for position, name in enumerate(counters)}
    start = mudd.start_node()
    accumulated = {}
    produced = 0
    stack = [(start.node_id, {}, (0,) * len(counters), 1.0)]
    while stack:
        node_id, assignments, signature, probability = stack.pop()
        node = mudd.nodes[node_id]
        if node.kind == END:
            produced += 1
            if produced > max_paths:
                raise SimulationError("µDD has more than %d µpaths" % (max_paths,))
            accumulated[signature] = accumulated.get(signature, 0.0) + probability
            continue
        out = mudd.out_edges(node_id)
        if node.kind == DECISION:
            assigned = assignments.get(node.label)
            if assigned is not None:
                matching = [edge for edge in out if edge.value == assigned]
                if not matching:
                    raise SimulationError(
                        "decision %r has no branch for value %r assigned earlier"
                        % (node.label, assigned)
                    )
                follow = [(matching[0], assignments, 1.0)]
            else:
                shares = dict(
                    _branch_probabilities(
                        node.label, [edge.value for edge in out], weights
                    )
                )
                follow = []
                for edge in out:
                    branch = dict(assignments)
                    branch[node.label] = edge.value
                    follow.append((edge, branch, shares[edge.value]))
        else:
            follow = [(out[0], assignments, 1.0)]
        for edge, branch_assignments, share in follow:
            if share == 0.0:
                continue
            target = mudd.nodes[edge.target]
            branch_signature = signature
            if target.kind == COUNTER:
                position = index.get(target.label)
                if position is not None:
                    updated = list(signature)
                    updated[position] += 1
                    branch_signature = tuple(updated)
            stack.append(
                (edge.target, branch_assignments, branch_signature, probability * share)
            )
    signatures = np.array(sorted(accumulated), dtype=np.int64).reshape(
        len(accumulated), len(counters)
    )
    probabilities = np.array(
        [accumulated[tuple(row)] for row in signatures], dtype=float
    )
    return counters, signatures, probabilities


#: Memoized path distributions, keyed by µDD fingerprint + counter
#: ordering + canonical weights + path cap (the ``sim.compile`` moment
#: of the batch path). Bounded FIFO; entries are immutable tuples.
_DISTRIBUTION_MEMO = {}
_DISTRIBUTION_MEMO_CAP = 128


def _weights_token(weights):
    """Canonical, hashable form of a weights mapping."""
    return tuple(
        (prop, tuple(sorted(table.items())))
        for prop, table in sorted((weights or {}).items())
    )


def _distribution(model, counters, weights, max_paths, backend):
    """``path_distribution`` through the compile memo (compiled
    backends) or straight (interpreter)."""
    if backend == "interpreter":
        return path_distribution(
            model, counters=counters, weights=weights, max_paths=max_paths
        )
    from repro.cone.cache import mudd_fingerprint

    key = (
        mudd_fingerprint(model, counters),
        None if counters is None else tuple(counters),
        _weights_token(weights),
        max_paths,
    )
    cached = _DISTRIBUTION_MEMO.get(key)
    if cached is not None:
        return cached
    from repro.obs.trace import get_tracer

    with get_tracer().span("sim.compile", model=model.name, backend=backend):
        names, signatures, probabilities = path_distribution(
            model, counters=counters, weights=weights, max_paths=max_paths
        )
    signatures.setflags(write=False)
    probabilities.setflags(write=False)
    if len(_DISTRIBUTION_MEMO) >= _DISTRIBUTION_MEMO_CAP:
        _DISTRIBUTION_MEMO.pop(next(iter(_DISTRIBUTION_MEMO)))
    _DISTRIBUTION_MEMO[key] = (names, signatures, probabilities)
    return _DISTRIBUTION_MEMO[key]


class BatchResult:
    """Counter totals of a batch of simulated traces (``T x N``)."""

    def __init__(self, model_name, counters, totals, n_uops, seed):
        self.model_name = model_name
        self.counters = list(counters)
        self.totals = np.asarray(totals)
        self.n_uops = n_uops
        self.seed = seed

    @property
    def n_traces(self):
        return self.totals.shape[0]

    def observation(self, trace=0):
        """One trace's totals as a counter-name → value mapping."""
        return {
            name: int(self.totals[trace, column])
            for column, name in enumerate(self.counters)
        }

    def observations(self):
        """All traces as observation mappings."""
        return [self.observation(trace) for trace in range(self.n_traces)]

    def mean(self):
        """Mean totals across traces (counter name → float)."""
        means = self.totals.mean(axis=0)
        return {name: float(value) for name, value in zip(self.counters, means)}

    def feasibility(self, model_cone, backend="exact", screen="auto"):
        """Test every trace's totals against ``model_cone`` in one batch.

        Routed through
        :func:`repro.cone.feasibility.test_points_feasibility`: when the
        cone's facets are already deduced, traces are screened with
        exact integer dot products and only the survivors run the flow
        LP — the fast path for scenario sweeps that pit one model's
        synthetic traces against another's cone. Returns a list of
        :class:`~repro.cone.feasibility.FeasibilityResult`, one per
        trace.
        """
        from repro.cone import test_points_feasibility

        return test_points_feasibility(
            model_cone, self.observations(), backend=backend, screen=screen
        )

    def __repr__(self):
        return "BatchResult(%r, %d traces x %d counters, %d µops each)" % (
            self.model_name,
            self.n_traces,
            len(self.counters),
            self.n_uops,
        )


def batch_simulate(
    model, n_uops, n_traces=1, counters=None, weights=None, seed=0,
    max_paths=2000000, backend="auto",
):
    """Simulate ``n_traces`` independent traces of ``n_uops`` µops each.

    ``model`` is a single µDD or a list of µDDs; a list returns
    ``{model_name: BatchResult}`` with every variant evaluated over the
    same trace count (one pass per model — the model-sweep batch mode).
    ``backend`` picks the distribution compile step (see the module
    docstring); every choice draws identical totals.
    """
    backend = resolve_backend(backend)
    if isinstance(model, (list, tuple)):
        results = {}
        for variant_index, variant in enumerate(model):
            result = batch_simulate(
                variant,
                n_uops,
                n_traces=n_traces,
                counters=counters,
                weights=weights,
                seed=seed + variant_index,
                max_paths=max_paths,
                backend=backend,
            )
            results[result.model_name] = result
        return results
    if n_uops <= 0:
        raise SimulationError("n_uops must be positive")
    if n_traces <= 0:
        raise SimulationError("n_traces must be positive")
    from repro.obs.trace import get_tracer

    with get_tracer().span(
        "sim.batch", model=model.name, traces=n_traces, uops=n_uops,
        backend=backend,
    ):
        names, signatures, probabilities = _distribution(
            model, counters, weights, max_paths, backend
        )
        rng = np.random.default_rng(seed)
        counts = rng.multinomial(n_uops, probabilities, size=n_traces)
        totals = counts @ signatures
        return BatchResult(model.name, names, totals, n_uops, seed)


def expected_totals(model, n_uops, counters=None, weights=None):
    """Exact expected counter totals of an ``n_uops`` trace — the
    analytic mean the batched sampler converges to."""
    names, signatures, probabilities = path_distribution(
        model, counters=counters, weights=weights
    )
    means = n_uops * (probabilities @ signatures)
    return {name: float(value) for name, value in zip(names, means)}
