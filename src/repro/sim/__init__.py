"""``repro.sim`` — the trace-driven µDD execution engine.

CounterPoint's other layers point one direction: hardware measurements
in, refutations out. This subsystem points the other way — it *runs*
a compiled µDD as a program and emits the counter observations the
analysis layers consume, closing the loop (simulate model A, refute
model B) and unlocking unlimited synthetic scenario generation.

Layer map
---------
* :mod:`repro.sim.executor` — :class:`MuDDExecutor`: interprets a µDD
  edge-by-edge per µop, resolving decisions through an oracle and
  accumulating counter totals (plus per-interval time series). The
  ``backend`` knob swaps the interpreter for a compiled engine with
  bit-identical results.
* :mod:`repro.sim.engines` — the vectorised compiled backend: lowers a
  :class:`CompiledMuDD` into a decision skeleton (macro-edges between
  decisions, numpy delta matrix) and walks it with per-decision sampler
  closures (:data:`BACKENDS`, :func:`resolve_backend`).
* :mod:`repro.sim.codegen` — the codegen backend: emits specialised
  Python source per µDD (inlined branch dispatch, no per-edge dict
  lookups), cached in-process and optionally on disk by µDD fingerprint
  (:class:`CodegenDiskCache`, :func:`configure_codegen_cache`).
* :mod:`repro.sim.oracles` — decision resolvers: seeded
  :class:`RandomOracle`, scripted :class:`TableOracle`, and the
  device-backed :class:`MMUOracle` that answers the Haswell model
  vocabulary from live :mod:`repro.mmu` components over real address
  traces.
* :mod:`repro.sim.batch` — the vectorised fast path: a run under a
  random oracle is a multinomial draw over µpath signatures, so whole
  trace batches and model sweeps reduce to one matrix multiply
  (:func:`batch_simulate`, :func:`path_distribution`).
* :mod:`repro.sim.noise` — replay simulated truth through counter
  multiplexing to produce perf-realistic noisy sample matrices and
  confidence regions (:func:`simulate_interval_matrix`).
* :mod:`repro.sim.scenarios` — one-call observation/dataset builders
  and the :func:`closed_loop` simulate→refute workflow.

Quick start::

    from repro.models.bundled import load_bundled_model
    from repro.sim import closed_loop

    reports = closed_loop(
        "merging_load_side",                      # simulate this model
        ["merging_load_side", "no_merging_load_side"],
        weights={"Merged": {"Yes": 3.0, "No": 1.0}},
    )
    assert reports["merging_load_side"].feasible
    assert not reports["no_merging_load_side"].feasible
"""

from repro.sim.batch import BatchResult, batch_simulate, expected_totals, path_distribution
from repro.sim.codegen import CodegenDiskCache, configure_codegen_cache
from repro.sim.engines import BACKENDS, resolve_backend
from repro.sim.executor import CompiledMuDD, MuDDExecutor
from repro.sim.noise import default_multiplexer, noisy_samples, simulate_interval_matrix
from repro.sim.oracles import MMUOracle, Oracle, PrefetchUop, RandomOracle, TableOracle
from repro.sim.scenarios import (
    as_mudd,
    closed_loop,
    simulate_dataset,
    simulate_observation,
    trace_observation,
)

__all__ = [
    "BACKENDS",
    "BatchResult",
    "CodegenDiskCache",
    "CompiledMuDD",
    "MMUOracle",
    "MuDDExecutor",
    "Oracle",
    "PrefetchUop",
    "RandomOracle",
    "TableOracle",
    "as_mudd",
    "batch_simulate",
    "closed_loop",
    "configure_codegen_cache",
    "default_multiplexer",
    "expected_totals",
    "noisy_samples",
    "path_distribution",
    "resolve_backend",
    "simulate_dataset",
    "simulate_interval_matrix",
    "simulate_observation",
    "trace_observation",
]
