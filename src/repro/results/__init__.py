"""The unified result layer: typed, serializable pipeline outputs.

Every analysis entry point — ``CounterPoint.analyze`` / ``sweep`` /
``compare`` / ``cross_refute``, the parallel entry points, and the
guided exploration — returns (or is convertible to) a result object
from this package. All of them share one contract:

* ``to_dict()`` produces a stable, JSON-serializable schema (stamped
  with :data:`~repro.results.base.RESULTS_SCHEMA_VERSION` and a
  ``kind`` tag),
* ``from_dict()`` / :func:`result_from_dict` reconstruct an equal
  object from that schema,
* equality is structural (two results are equal iff their schemas are),
* ``summary()`` renders the human-readable report.

The schemas are also the wire format: :mod:`repro.parallel` workers
ship result dicts across the process pool instead of pickled ad-hoc
objects, and :class:`~repro.results.store.ArtifactStore` persists them
as content-addressed JSON artifacts — the substrate of
:class:`~repro.results.session.AnalysisSession`'s incremental verdict
memoization.
"""

from repro.results.base import (
    RESULTS_SCHEMA_VERSION,
    decode_number,
    decode_vector,
    encode_number,
    encode_vector,
    result_from_dict,
    result_from_json,
)
from repro.results.fingerprint import observation_fingerprint
from repro.results.session import AnalysisSession, SessionStats
from repro.results.store import ArtifactStore, ClaimTable
from repro.results.types import (
    AnalysisReport,
    CellVerdict,
    CompareResult,
    ModelSweep,
    RefutationMatrix,
)

__all__ = [
    "AnalysisReport",
    "AnalysisSession",
    "ArtifactStore",
    "CellVerdict",
    "ClaimTable",
    "CompareResult",
    "ModelSweep",
    "RESULTS_SCHEMA_VERSION",
    "RefutationMatrix",
    "SessionStats",
    "decode_number",
    "decode_vector",
    "encode_number",
    "encode_vector",
    "observation_fingerprint",
    "result_from_dict",
    "result_from_json",
]
