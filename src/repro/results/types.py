"""The typed result objects of the analysis pipeline.

* :class:`CellVerdict` — one (model, observation) feasibility verdict,
  the memoization unit of :class:`~repro.results.session.AnalysisSession`
  and the message workers ship across the process pool.
* :class:`AnalysisReport` — one observation against one model, with
  violated constraints and an optional Farkas certificate.
* :class:`ModelSweep` — one model against a dataset, now recording *why*
  each infeasible observation failed (its violated-constraint record),
  not just the names.
* :class:`CompareResult` — a model family over one dataset (Table 3).
  Behaves as a read-only mapping ``{model_name: ModelSweep}``.
* :class:`RefutationMatrix` — the closed-loop cross-refutation matrix;
  a read-only mapping ``{observed: CompareResult}``.

All of them serialize through the shared :mod:`repro.results.base`
contract: ``to_dict``/``from_dict``/``to_json``/``from_json``,
structural equality, and a stamped, stable JSON schema.
"""

from collections.abc import Mapping

from repro.errors import AnalysisError
from repro.results.base import (
    ResultBase,
    decode_vector,
    encode_vector,
    register,
)


def _violation_to_dict(violation):
    return None if violation is None else violation.to_dict()


def _violation_from_dict(data):
    from repro.cone.violations import Violation

    return None if data is None else Violation.from_dict(data)


@register
class CellVerdict(ResultBase):
    """One feasibility verdict: the unit of memoization and pool transfer.

    Attributes
    ----------
    feasible:
        Whether the observation intersects the model cone.
    violation:
        For infeasible cells, a :class:`repro.cone.violations.Violation`
        naming one violated model constraint (definite for point
        observations, at-mean for regions) — or ``None`` when no
        certificate was requested or found.
    """

    kind = "cell_verdict"
    __slots__ = ("feasible", "violation")

    def __init__(self, feasible, violation=None):
        self.feasible = bool(feasible)
        self.violation = violation

    def _payload(self):
        return {
            "feasible": self.feasible,
            "violation": _violation_to_dict(self.violation),
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls(payload["feasible"], _violation_from_dict(payload["violation"]))

    def __bool__(self):
        return self.feasible

    def __repr__(self):
        return "CellVerdict(feasible=%r)" % (self.feasible,)


@register
class AnalysisReport(ResultBase):
    """Outcome of analysing one observation against one model.

    Attributes
    ----------
    model_name:
        The model under test.
    feasible:
        The verdict.
    violations:
        For infeasible observations, every violated model constraint
        (:class:`repro.cone.violations.Violation`), definite violations
        first — the refinement feedback of the paper's Section 5.
    witness:
        For feasible observations, a counter vector inside both the
        observation/region and the cone.
    certificate:
        Optionally, a single violated constraint
        (:class:`repro.cone.constraints.ModelConstraint`) found at
        feasibility-test cost by the Farkas route — available even when
        the expensive full deduction was not run.
    """

    kind = "analysis_report"

    def __init__(self, model_name, feasible, violations, witness=None,
                 certificate=None):
        self.model_name = model_name
        self.feasible = feasible
        self.violations = violations
        self.witness = witness
        self.certificate = certificate

    def summary(self):
        """One-paragraph human rendering: the verdict, and for an
        infeasible observation every violated model constraint."""
        if self.feasible:
            return "%s: feasible" % (self.model_name,)
        lines = ["%s: INFEASIBLE (%d violated constraints)" % (
            self.model_name,
            len(self.violations),
        )]
        for violation in self.violations:
            lines.append("  " + violation.render())
        if not self.violations and self.certificate is not None:
            lines.append("  certificate: " + self.certificate.render())
        return "\n".join(lines)

    def _payload(self):
        return {
            "model": self.model_name,
            "feasible": bool(self.feasible),
            "violations": [violation.to_dict() for violation in self.violations],
            "witness": encode_vector(self.witness),
            "certificate": (
                None if self.certificate is None else self.certificate.to_dict()
            ),
        }

    @classmethod
    def _from_payload(cls, payload):
        from repro.cone.constraints import ModelConstraint
        from repro.cone.violations import Violation

        certificate = payload["certificate"]
        return cls(
            payload["model"],
            payload["feasible"],
            [Violation.from_dict(entry) for entry in payload["violations"]],
            witness=decode_vector(payload["witness"]),
            certificate=(
                None if certificate is None
                else ModelConstraint.from_dict(certificate)
            ),
        )

    def __repr__(self):
        return "AnalysisReport(%r, feasible=%r)" % (self.model_name, self.feasible)


@register
class ModelSweep(ResultBase):
    """Outcome of evaluating one model against many observations.

    ``why`` records, per infeasible observation name, the violated
    model constraint that refuted it (a
    :class:`repro.cone.violations.Violation`, or ``None`` when no
    certificate was available) — so a sweep survives serialization with
    its refutation evidence, not just a list of names.
    """

    kind = "model_sweep"

    def __init__(self, model_name, infeasible_names, n_observations, why=None):
        self.model_name = model_name
        self.infeasible_names = list(infeasible_names)
        self.n_observations = n_observations
        self.why = {} if why is None else dict(why)

    @property
    def n_infeasible(self):
        """How many observations the model failed to explain."""
        return len(self.infeasible_names)

    @property
    def feasible(self):
        """Whether the model explains *every* observation — one
        infeasible observation refutes a model (the paper's bar)."""
        return not self.infeasible_names

    def summary(self):
        """Human rendering: the verdict line, then one line per
        infeasible observation with its violated constraint."""
        if self.feasible:
            return "%s: feasible (%d observations)" % (
                self.model_name, self.n_observations,
            )
        lines = ["%s: %d/%d observations infeasible" % (
            self.model_name, self.n_infeasible, self.n_observations,
        )]
        for name in self.infeasible_names:
            violation = self.why.get(name)
            if violation is None:
                lines.append("  %s" % (name,))
            else:
                lines.append("  %s: %s" % (name, violation.render()))
        return "\n".join(lines)

    def _payload(self):
        return {
            "model": self.model_name,
            "n_observations": self.n_observations,
            "infeasible": list(self.infeasible_names),
            "why": {
                name: _violation_to_dict(violation)
                for name, violation in sorted(self.why.items())
            },
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls(
            payload["model"],
            payload["infeasible"],
            payload["n_observations"],
            why={
                name: _violation_from_dict(entry)
                for name, entry in payload["why"].items()
            },
        )

    def __repr__(self):
        return "ModelSweep(%r: %d/%d infeasible)" % (
            self.model_name,
            self.n_infeasible,
            self.n_observations,
        )


def sweep_from_verdicts(model_name, names, verdicts):
    """Assemble a :class:`ModelSweep` from per-observation verdicts
    (dataset order), recording refutation evidence in ``why``."""
    if len(names) != len(verdicts):
        raise AnalysisError(
            "%d verdicts for %d observations" % (len(verdicts), len(names))
        )
    infeasible = []
    why = {}
    for name, verdict in zip(names, verdicts):
        if verdict.feasible:
            continue
        infeasible.append(name)
        if verdict.violation is not None:
            why[name] = verdict.violation
    return ModelSweep(model_name, infeasible, len(names), why=why)


@register
class CompareResult(ResultBase, Mapping):
    """A model family swept over one dataset (the Table 3 workflow).

    A read-only ordered mapping ``{model_name: ModelSweep}`` — existing
    dict-style call sites keep working — plus ranking/rendering helpers
    and the shared serialization contract.
    """

    kind = "compare_result"

    def __init__(self, sweeps):
        if isinstance(sweeps, Mapping):
            entries = list(sweeps.items())
        else:
            entries = [(sweep.model_name, sweep) for sweep in sweeps]
        self._sweeps = dict(entries)
        if len(self._sweeps) != len(entries):
            raise AnalysisError("duplicate model names in comparison")

    # -- mapping protocol ------------------------------------------------
    def __getitem__(self, name):
        return self._sweeps[name]

    def __iter__(self):
        return iter(self._sweeps)

    def __len__(self):
        return len(self._sweeps)

    # -- queries -----------------------------------------------------------
    def ranking(self):
        """Model names ordered best-first (fewest infeasible, then
        name) — the paper's Table 3 ordering."""
        return sorted(
            self._sweeps,
            key=lambda name: (self._sweeps[name].n_infeasible, name),
        )

    @property
    def feasible_models(self):
        """Names of models that explain the whole dataset, in sweep
        order."""
        return [
            name for name, sweep in self._sweeps.items() if sweep.feasible
        ]

    def summary(self):
        lines = ["%d models x %d observations" % (
            len(self._sweeps),
            next(iter(self._sweeps.values())).n_observations if self._sweeps else 0,
        )]
        for name in self.ranking():
            sweep = self._sweeps[name]
            star = "*" if sweep.feasible else " "
            lines.append("%s %-24s %d/%d infeasible" % (
                star, name, sweep.n_infeasible, sweep.n_observations,
            ))
        return "\n".join(lines)

    def _payload(self):
        return {
            "sweeps": {
                name: sweep.to_dict() for name, sweep in self._sweeps.items()
            },
            "order": list(self._sweeps),
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls({
            name: ModelSweep.from_dict(payload["sweeps"][name])
            for name in payload["order"]
        })

    def __repr__(self):
        return "CompareResult(%d models, %d feasible)" % (
            len(self._sweeps),
            len(self.feasible_models),
        )


@register
class RefutationMatrix(ResultBase, Mapping):
    """The closed-loop matrix: simulate each model, sweep all models.

    A read-only mapping ``{observed_name: CompareResult}`` (each row is
    itself a mapping ``{candidate_name: ModelSweep}``, so the historical
    ``matrix[observed][candidate]`` access pattern is unchanged). The
    diagonal should be all-feasible by construction (counter
    conservation); an infeasible off-diagonal entry means the candidate
    cannot explain the observed model's behaviour.
    """

    kind = "refutation_matrix"

    def __init__(self, rows):
        self._rows = {
            observed: (row if isinstance(row, CompareResult) else CompareResult(row))
            for observed, row in dict(rows).items()
        }

    # -- mapping protocol ------------------------------------------------
    def __getitem__(self, observed):
        return self._rows[observed]

    def __iter__(self):
        return iter(self._rows)

    def __len__(self):
        return len(self._rows)

    # -- queries -----------------------------------------------------------
    def diagonal_feasible(self):
        """Whether every model explains its own synthetic data (the
        sanity property the paper's construction guarantees)."""
        return all(
            observed in row and row[observed].feasible
            for observed, row in self._rows.items()
        )

    def refuted(self, observed):
        """Candidate names the data simulated from ``observed`` refutes."""
        return [
            name for name, sweep in self._rows[observed].items()
            if not sweep.feasible
        ]

    def summary(self):
        names = list(self._rows)
        width = max([len(name) for name in names] + [8])
        lines = ["observed \\ candidate".ljust(width + 2)
                 + " ".join(name.ljust(width) for name in names)]
        for observed in names:
            row = self._rows[observed]
            cells = []
            for candidate in names:
                sweep = row.get(candidate)
                if sweep is None:
                    cells.append("-".ljust(width))
                else:
                    cells.append(
                        ("ok" if sweep.feasible else
                         "REFUTED(%d)" % sweep.n_infeasible).ljust(width)
                    )
            lines.append(observed.ljust(width + 2) + " ".join(cells))
        return "\n".join(lines)

    def _payload(self):
        return {
            "rows": {
                observed: row.to_dict() for observed, row in self._rows.items()
            },
            "order": list(self._rows),
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls({
            observed: CompareResult.from_dict(payload["rows"][observed])
            for observed in payload["order"]
        })

    def __repr__(self):
        return "RefutationMatrix(%d models, diagonal %s)" % (
            len(self._rows),
            "feasible" if self.diagonal_feasible() else "BROKEN",
        )


__all__ = [
    "AnalysisReport",
    "CellVerdict",
    "CompareResult",
    "ModelSweep",
    "RefutationMatrix",
    "sweep_from_verdicts",
]
