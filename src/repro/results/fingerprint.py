"""Content fingerprints for observation-shaped inputs.

The analysis entry points accept a zoo of observation forms — dataset
:class:`~repro.models.dataset.Observation` objects, plain counter
mappings, ordered value sequences, and confidence regions. The verdict
memo (:class:`~repro.results.session.AnalysisSession`) needs one
canonical content hash for any of them; :func:`observation_fingerprint`
is that dispatcher.

Hashes cover measured *content* only (values, counter names, region
geometry), never run names or metadata, so re-measuring identical data
under a different label still hits the memo. Exactness tiers matter:
``repr`` is used for scalar folding, so ``5`` and ``5.0`` hash
differently — which is correct, because exact and float observations can
receive different verdict details from the LP layer.
"""

import hashlib

from repro.errors import AnalysisError


def _digest(payload):
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def sample_matrix_fingerprint(matrix):
    """Content hash of a :class:`repro.counters.sampling.SampleMatrix`
    (counter names + every interval sample) — the one definition of
    region-mode observation identity, shared by
    :meth:`repro.models.dataset.Observation.fingerprint` and the
    duck-type path below."""
    import numpy as np

    head = repr((tuple(matrix.counters), matrix.samples.shape)).encode("utf-8")
    body = np.ascontiguousarray(matrix.samples).tobytes()
    return hashlib.sha256(head + body).hexdigest()


def observation_fingerprint(observation, samples=False):
    """Canonical content hash of any observation form.

    Parameters
    ----------
    observation:
        A dataset observation (``point()``/``fingerprint()``), a counter
        mapping, an ordered value sequence, or a region object
        (``box_constraints()``).
    samples:
        For dataset observations: hash the interval sample matrix
        instead of the exact totals (the region-analysis view).
    """
    fingerprint = getattr(observation, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint(samples=samples)
    point = getattr(observation, "point", None)
    if callable(point):
        # Observation-shaped duck types without their own fingerprint.
        if samples:
            matrix = getattr(observation, "samples", None)
            if matrix is not None:
                return sample_matrix_fingerprint(matrix)
        return observation_fingerprint(point())
    if hasattr(observation, "box_constraints"):
        boxes = tuple(
            (tuple(repr(float(value)) for value in direction),
             repr(float(lower)), repr(float(upper)))
            for direction, lower, upper in observation.box_constraints()
        )
        center = tuple(repr(float(value)) for value in observation.center())
        return _digest(repr(("region", center, boxes)))
    if isinstance(observation, dict):
        payload = tuple(sorted(
            (name, repr(value)) for name, value in observation.items()
        ))
        return _digest(repr(("point", payload)))
    try:
        values = tuple(repr(value) for value in observation)
    except TypeError:
        raise AnalysisError(
            "cannot fingerprint %r as an observation"
            % (type(observation).__name__,)
        ) from None
    return _digest(repr(("vector", values)))


__all__ = ["observation_fingerprint", "sample_matrix_fingerprint"]
