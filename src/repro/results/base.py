"""Shared serialization machinery for the result layer.

Numbers in CounterPoint results come in three exactness tiers — python
ints (counter totals, constraint normals), :class:`fractions.Fraction`
(exact LP verdict data), and floats (scipy/HiGHS witnesses, statistics).
JSON has no rational type, so :func:`encode_number` maps Fractions to
``"p/q"`` strings and everything integral to int; :func:`decode_number`
inverts the mapping exactly. Round-tripping therefore preserves both
value *and* exactness tier, which is what lets result equality be
structural.

:class:`ResultBase` implements the shared contract: ``to_dict()`` emits
``{"kind": ..., "schema": RESULTS_SCHEMA_VERSION, ...payload...}``,
``from_dict()`` validates the envelope and rebuilds, ``==`` compares
schemas, and ``to_json``/``from_json`` are the one-call file forms.
:func:`result_from_dict` dispatches on ``kind`` through the registry so
heterogeneous artifacts (a directory of mixed results, a pool message)
deserialize without knowing their type up front.
"""

import json
import numbers
from fractions import Fraction

from repro.errors import AnalysisError

#: Bump when any result schema changes incompatibly; golden-file tests
#: in ``tests/test_results.py`` pin the layouts for each version.
RESULTS_SCHEMA_VERSION = 1

_REGISTRY = {}


def register(cls):
    """Class decorator: make ``cls`` reachable by ``kind`` through
    :func:`result_from_dict`."""
    kind = getattr(cls, "kind", None)
    if not kind:
        raise AnalysisError("result classes must define a non-empty `kind`")
    existing = _REGISTRY.get(kind)
    if existing is not None and existing is not cls:
        raise AnalysisError("result kind %r registered twice" % (kind,))
    _REGISTRY[kind] = cls
    return cls


# -- number / vector codecs ------------------------------------------------

def encode_number(value):
    """JSON-encode one numeric value, preserving its exactness tier."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, Fraction):
        return "%d/%d" % (value.numerator, value.denominator)
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    raise AnalysisError("cannot encode %r as a result number" % (type(value).__name__,))


def decode_number(value):
    """Invert :func:`encode_number`."""
    if value is None or isinstance(value, (bool, int, float)):
        return value
    if isinstance(value, str):
        numerator, _, denominator = value.partition("/")
        try:
            return Fraction(int(numerator), int(denominator))
        except (ValueError, ZeroDivisionError):
            raise AnalysisError("malformed rational %r" % (value,)) from None
    raise AnalysisError("cannot decode %r as a result number" % (value,))


def encode_vector(values):
    """Encode an ordered sequence of numbers (``None`` passes through)."""
    if values is None:
        return None
    return [encode_number(value) for value in values]


def decode_vector(values):
    if values is None:
        return None
    return [decode_number(value) for value in values]


# -- the shared result contract --------------------------------------------

class ResultBase:
    """Base class for serializable result objects.

    Subclasses define ``kind`` and implement ``_payload()`` (the
    kind-specific dict body) and ``_from_payload(payload)`` (inverse
    classmethod). Everything else — envelope stamping, validation,
    structural equality, JSON round-trips — is shared.
    """

    kind = None

    def _payload(self):
        raise NotImplementedError

    @classmethod
    def _from_payload(cls, payload):
        raise NotImplementedError

    def to_dict(self):
        """The stable JSON-serializable schema of this result."""
        body = self._payload()
        envelope = {"kind": self.kind, "schema": RESULTS_SCHEMA_VERSION}
        envelope.update(body)
        return envelope

    @classmethod
    def from_dict(cls, data):
        """Rebuild a result from its :meth:`to_dict` schema."""
        if not isinstance(data, dict):
            raise AnalysisError("result schema must be a dict, got %r"
                                % (type(data).__name__,))
        kind = data.get("kind")
        if kind != cls.kind:
            raise AnalysisError(
                "schema kind %r does not match %s (%r)" % (kind, cls.__name__, cls.kind)
            )
        schema = data.get("schema")
        if schema != RESULTS_SCHEMA_VERSION:
            raise AnalysisError(
                "unsupported %s schema version %r (supported: %d)"
                % (cls.__name__, schema, RESULTS_SCHEMA_VERSION)
            )
        return cls._from_payload(data)

    def to_json(self, indent=None):
        """The schema as a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def __eq__(self, other):
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None


def result_from_dict(data):
    """Deserialize any registered result by its ``kind`` tag."""
    if not isinstance(data, dict) or "kind" not in data:
        raise AnalysisError("not a result schema: missing `kind`")
    kind = data["kind"]
    cls = _REGISTRY.get(kind)
    if cls is None:
        # Result types living outside this package (the explore and
        # plan layers) register on import; pull them in before giving
        # up.
        import repro.explore.search  # noqa: F401
        import repro.plan  # noqa: F401

        cls = _REGISTRY.get(kind)
    if cls is None:
        raise AnalysisError("unknown result kind %r" % (kind,))
    return cls.from_dict(data)


def result_from_json(text):
    return result_from_dict(json.loads(text))


__all__ = [
    "RESULTS_SCHEMA_VERSION",
    "ResultBase",
    "decode_number",
    "decode_vector",
    "encode_number",
    "encode_vector",
    "register",
    "result_from_dict",
    "result_from_json",
]
