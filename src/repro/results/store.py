"""A small content-addressed JSON artifact store.

This generalizes the :class:`repro.cone.diskcache.DiskConeCache`
pattern — atomic ``os.replace`` publication, version-stamped envelopes,
corruption-tolerant reads, LRU byte cap — from "pickled model cones"
to "any JSON result schema". It is the persistent tier behind
:class:`~repro.results.session.AnalysisSession`'s verdict memo: one
artifact per (kind, content key), safe to share between concurrent
processes and across runs.

Artifacts are JSON, not pickle, on purpose: they are the same stable
schemas the :mod:`repro.results` types emit, so a store directory is
readable by anything (a dashboard, ``jq``, a future service) and
survives class moves and refactors that would orphan pickles.
"""

import hashlib
import json
import os
import tempfile
import threading
import time

from repro.errors import AnalysisError
from repro.obs.trace import get_tracer

#: Bump when the envelope layout changes incompatibly; entries carrying
#: any other stamp are treated as misses and recomputed.
ARTIFACT_FORMAT_VERSION = 1

_ENTRY_SUFFIX = ".json"
_CLAIM_SUFFIX = ".claim"

#: Unpublished temp files older than this are garbage from a process
#: that died mid-write; prune() sweeps them.
_STALE_TMP_SECONDS = 600.0

#: Claim markers older than this belong to a worker that died
#: mid-compute; a new claimant steals them (and prune() sweeps them).
_STALE_CLAIM_SECONDS = 600.0


def content_key(*parts):
    """Deterministic hex key from hashable content parts."""
    payload = repr(tuple(parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Content-addressed directory of JSON artifacts.

    Parameters
    ----------
    root:
        Directory to store artifacts in (created if missing). Safe to
        share between concurrent processes and across runs.
    max_bytes:
        LRU size cap for the directory, pruned after each write;
        ``None`` disables pruning.
    version:
        Envelope format stamp (overridable for tests).
    """

    def __init__(self, root, max_bytes=64 * 1024 * 1024,
                 version=ARTIFACT_FORMAT_VERSION):
        if max_bytes is not None and max_bytes <= 0:
            raise AnalysisError("artifact store max_bytes must be positive")
        self.root = os.fspath(root)
        self.max_bytes = max_bytes
        self.version = version
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Running estimate of bytes on disk, so writes stay O(1): a
        # full directory scan happens only when this crosses the cap
        # (verdict stores hold thousands of small artifacts — scanning
        # on every put would make cold sweeps quadratic).
        self._approx_bytes = None
        # Highest recency stamp this instance has written; _touch
        # ratchets against it so a backwards wall-clock step cannot
        # reorder this process's own LRU recency.
        self._recency_clock = 0.0
        # Guards the mutable bookkeeping (_approx_bytes, counters,
        # _recency_clock) when one store instance is shared between
        # threads — the serve daemon's queued workers publish
        # concurrently. File operations themselves are already safe
        # (atomic os.replace publication, vanished-file-tolerant reads).
        self._lock = threading.Lock()
        os.makedirs(self.root, exist_ok=True)

    # -- key/path plumbing -------------------------------------------------
    @staticmethod
    def key(*parts):
        """Alias of :func:`content_key` for callers holding a store."""
        return content_key(*parts)

    def _path(self, kind, key):
        if not kind or any(ch in kind for ch in "/\\."):
            raise AnalysisError("artifact kind must be a bare label, got %r" % (kind,))
        return os.path.join(self.root, "%s-%s%s" % (kind, key, _ENTRY_SUFFIX))

    # -- entry I/O ---------------------------------------------------------
    def get(self, kind, key):
        """The stored payload dict for ``(kind, key)``, or ``None``.

        Every failure mode — missing file, version mismatch, torn or
        foreign bytes — counts as a miss so callers always fall back to
        recomputing. Hits refresh the entry mtime so LRU pruning tracks
        use, not just creation.
        """
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self._miss(kind)
            return None
        except Exception:
            self._discard(path)
            self._miss(kind)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != self.version
            or envelope.get("kind") != kind
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            self._discard(path)
            self._miss(kind)
            return None
        self._touch(path)
        with self._lock:
            self.hits += 1
        tracer = get_tracer()
        if tracer.enabled:
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            tracer.event("cache.hit", tier="artifact", kind=kind, bytes=size)
            tracer.metrics.counter("cache.artifact.hits").inc()
            tracer.metrics.counter("cache.artifact.bytes_read").inc(size)
        return envelope["payload"]

    def _miss(self, kind):
        with self._lock:
            self.misses += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.miss", tier="artifact", kind=kind)
            tracer.metrics.counter("cache.artifact.misses").inc()

    def put(self, kind, key, payload):
        """Atomically publish ``payload`` (a JSON-serializable dict)
        under ``(kind, key)`` and prune to the byte cap."""
        envelope = {
            "version": self.version,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        data = json.dumps(envelope, sort_keys=True).encode("utf-8")
        descriptor, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, self._path(kind, key))
        except BaseException:
            self._discard(temp_path)
            raise
        self._touch(self._path(kind, key))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "cache.write", tier="artifact", kind=kind, bytes=len(data)
            )
            tracer.metrics.counter("cache.artifact.writes").inc()
            tracer.metrics.counter(
                "cache.artifact.bytes_written"
            ).inc(len(data))
        if self.max_bytes is None:
            return
        with self._lock:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(data)
            over_cap = self._approx_bytes > self.max_bytes
        if over_cap:
            self.prune()

    def contains(self, kind, key):
        return os.path.exists(self._path(kind, key))

    def discard(self, kind, key):
        """Drop the entry for ``(kind, key)`` if present (used by
        readers that found the payload undecodable)."""
        self._discard(self._path(kind, key))

    # -- in-flight claims --------------------------------------------------
    def _claim_path(self, kind, key):
        return os.path.join(
            self.root, "%s-%s%s" % (kind, key, _CLAIM_SUFFIX)
        )

    def claim(self, kind, key, stale_after=_STALE_CLAIM_SECONDS):
        """Atomically claim ``(kind, key)`` for computation.

        Returns ``True`` when this caller now owns the claim — it must
        :meth:`release_claim` when the artifact is published (or the
        computation fails). ``False`` means another live worker holds
        it; wait and re-read instead of computing. Claims left behind
        by a worker that died mid-compute go stale after
        ``stale_after`` seconds and are stolen by the next claimant.
        """
        path = self._claim_path(kind, key)
        for _ in range(2):
            try:
                descriptor = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    age = time.time() - os.stat(path).st_mtime
                except OSError:
                    continue  # released between open and stat: retry
                if age < stale_after:
                    return False
                self._discard(path)  # stale: steal on the next lap
                continue
            except OSError:
                return False  # unusable directory: act unclaimed-by-us
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            return True
        return False

    def release_claim(self, kind, key):
        """Drop a claim taken with :meth:`claim` (idempotent)."""
        self._discard(self._claim_path(kind, key))

    def claimed(self, kind, key):
        """Whether an unexpired claim marker exists for ``(kind, key)``."""
        try:
            age = time.time() - os.stat(self._claim_path(kind, key)).st_mtime
        except OSError:
            return False
        return age < _STALE_CLAIM_SECONDS

    def __len__(self):
        return len(self._entries())

    # -- maintenance -------------------------------------------------------
    def _entries(self):
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [
            os.path.join(self.root, name)
            for name in names
            if name.endswith(_ENTRY_SUFFIX)
        ]

    def total_bytes(self):
        """Bytes currently used by artifacts."""
        total = 0
        for path in self._entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def _sweep_stale_temps(self, max_age=_STALE_TMP_SECONDS):
        """Remove temp files abandoned by processes killed mid-write
        (young ones may belong to a concurrent writer about to
        publish)."""
        now = time.time()
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if name.endswith(".tmp"):
                horizon = max_age
            elif name.endswith(_CLAIM_SUFFIX):
                # Claim markers from dead workers block dedup-waiters
                # until stolen; sweep them on the same maintenance pass
                # (clear(), which passes max_age=0, drops them all).
                horizon = _STALE_CLAIM_SECONDS if max_age > 0 else 0.0
            else:
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.stat(path).st_mtime >= horizon:
                    self._discard(path)
            except OSError:
                continue

    def prune(self):
        """Evict least-recently-used artifacts until under the byte cap
        (and sweep temp files orphaned by dead writers)."""
        self._sweep_stale_temps()
        if self.max_bytes is None:
            return
        stats = []
        for path in self._entries():
            try:
                info = os.stat(path)
            except OSError:
                continue
            stats.append((info.st_mtime, info.st_size, path))
        total = sum(size for _, size, _ in stats)
        if total <= self.max_bytes:
            self._approx_bytes = total
            return
        stats.sort()  # oldest mtime first
        tracer = get_tracer()
        for _, size, path in stats:
            if total <= self.max_bytes:
                break
            if self._discard(path):
                self.evictions += 1
                total -= size
                if tracer.enabled:
                    tracer.event(
                        "cache.evict", tier="artifact",
                        entry=os.path.basename(path), bytes=size,
                    )
                    tracer.metrics.counter(
                        "cache.artifact.evictions"
                    ).inc()
        self._approx_bytes = total

    def clear(self):
        """Remove every artifact and temp file (counters are kept)."""
        for path in self._entries():
            self._discard(path)
        self._sweep_stale_temps(max_age=0.0)
        self._approx_bytes = 0

    def _touch(self, path):
        # Recency must be monotonic within this instance: a plain
        # os.utime uses the wall clock, which can step backwards and
        # make a just-used entry look LRU-oldest. Ratchet the stamp so
        # every touch/publish orders after the previous one.
        with self._lock:
            stamp = max(time.time(), self._recency_clock + 1e-6)
            self._recency_clock = stamp
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def __repr__(self):
        return "ArtifactStore(%r, %d artifacts, %d hits, %d misses)" % (
            self.root,
            len(self),
            self.hits,
            self.misses,
        )


class ClaimTable:
    """In-flight computation claims: one owner per content key.

    The :class:`ArtifactStore` deduplicates *completed* work; this
    table deduplicates work *in flight*. Before computing a cell a
    worker calls :meth:`claim` — ``True`` makes it the owner (compute,
    record, :meth:`release`), ``False`` means someone else is already
    computing it (:meth:`wait`, then re-read the memo/store; if the
    owner failed the verdict is still absent and the waiter computes
    it itself).

    Claims are process-local :class:`threading.Event`\\ s; with a
    ``store`` attached, claim *files* extend the protocol across
    processes (a second daemon on the same cache directory): remote
    owners are detected via the store's claim markers and waited on by
    polling for the published artifact.
    """

    def __init__(self, store=None, kind="verdict", poll_interval=0.05):
        self.store = store
        self.kind = kind
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self._events = {}

    def claim(self, key):
        """Try to become the computing owner of ``key``."""
        with self._lock:
            if key in self._events:
                return False
            event = threading.Event()
            self._events[key] = event
        if self.store is not None and not self.store.claim(self.kind, key):
            # A *remote* process owns the cell. Keep our local event
            # registered (so threads here coalesce onto one waiter) but
            # mark it remote: wait() then polls the store.
            event.remote = True
            return False
        return True

    def release(self, key):
        """Drop ownership of ``key`` and wake every waiter (idempotent).

        Called whether the computation succeeded or failed — waiters
        re-read the memo/store and fall back to computing themselves
        when the verdict never arrived.
        """
        with self._lock:
            event = self._events.pop(key, None)
        if event is not None:
            event.set()
        if self.store is not None:
            self.store.release_claim(self.kind, key)

    def wait(self, key, timeout=600.0):
        """Block until ``key``'s owner releases it (or ``timeout``).

        Returns ``True`` when the owner finished (locally or, for
        remote owners, when the artifact appeared or their claim
        lapsed); ``False`` on timeout. Either way the caller re-reads
        and computes itself if the verdict is still missing — wait can
        only cost time, never correctness.
        """
        with self._lock:
            event = self._events.get(key)
        if event is None:
            return True
        if not getattr(event, "remote", False):
            return event.wait(timeout)
        deadline = time.time() + timeout
        store = self.store
        while time.time() < deadline:
            if store.contains(self.kind, key) or \
                    not store.claimed(self.kind, key):
                with self._lock:
                    stale = self._events.pop(key, None)
                if stale is not None:
                    stale.set()
                return True
            time.sleep(self.poll_interval)
        return False

    def __len__(self):
        with self._lock:
            return len(self._events)

    def __repr__(self):
        return "ClaimTable(%d in flight%s)" % (
            len(self),
            ", store=%r" % (self.store.root,) if self.store is not None
            else "",
        )


__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactStore",
    "ClaimTable",
    "content_key",
]
