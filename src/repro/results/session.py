"""Incremental analysis sessions with content-addressed verdict memoization.

Every pipeline workload — ``sweep``, ``compare``, ``cross_refute`` —
is a matrix of independent feasibility cells, and production use
re-analyzes the same growing matrix after each addition: append one
observation to a 1000-cell sweep, or one candidate model to a
cross-refutation matrix, and a recompute-everything pipeline pays the
full matrix again. :class:`AnalysisSession` memoizes each cell verdict
under a content-addressed key::

    (cone fingerprint, observation content hash, backend, mode)

in memory, and — when given a store — through a persistent
:class:`~repro.results.store.ArtifactStore` tier, so only genuinely new
cells are ever tested. The keys are pure content hashes (no model or
run names), so renamed models and re-measured-but-identical data still
hit.

:class:`~repro.pipeline.CounterPoint` owns a session per instance and
routes its analysis methods through it; sessions can also be built
standalone around any pipeline. With ``workers > 1`` only the *pending*
cells are sharded across the process pool (session-aware sharding), and
pool workers given a ``cache_dir`` share the same artifact store, so
incrementality survives process boundaries.
"""

from repro.cone import (
    identify_violations,
    separating_constraint,
    test_points_feasibility,
    test_region_feasibility,
)
from repro.cone.violations import Violation
from repro.errors import ReproError
from repro.geometry.halfspace import EQUALITY
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.results.fingerprint import observation_fingerprint
from repro.results.store import ArtifactStore, content_key
from repro.results.types import (
    AnalysisReport,
    CellVerdict,
    CompareResult,
    RefutationMatrix,
    sweep_from_verdicts,
)


def _registry_counter(name):
    """An attribute-style view over a registry counter, so the historic
    ``stats.tests += 1`` arithmetic keeps working on the facade."""

    def read(self):
        return self.registry.counter(name).value

    def write(self, value):
        self.registry.counter(name).value = value

    return property(read, write)


class SessionStats:
    """Counters proving (or disproving) incrementality.

    ``tests`` counts feasibility cells actually computed — the number
    the incrementality contract is stated in: appending one observation
    to a warmed sweep must raise it by exactly one, and a session warmed
    from disk must not raise it at all.

    Since the :mod:`repro.obs` rework this is a facade over a
    :class:`~repro.obs.metrics.MetricsRegistry` — the four counters are
    registry counters (``session.tests`` etc.), so trace summaries and
    session statistics reconcile by construction — but the attribute
    API and ``as_dict`` layout are unchanged.
    """

    __slots__ = ("registry",)

    tests = _registry_counter("session.tests")
    memo_hits = _registry_counter("session.memo_hits")
    store_hits = _registry_counter("session.store_hits")
    reports = _registry_counter("session.reports")

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def as_dict(self):
        return {
            "tests": self.tests,
            "memo_hits": self.memo_hits,
            "store_hits": self.store_hits,
            "reports": self.reports,
        }

    def __repr__(self):
        return ("SessionStats(tests=%d, memo_hits=%d, store_hits=%d, "
                "reports=%d)") % (
            self.tests, self.memo_hits, self.store_hits, self.reports,
        )


def _certificate_violation(cone, point, result, backend, explain, definite):
    """Refutation evidence for an infeasible cell.

    The batched facet screen's certificate is free when present; with
    ``explain`` a missing certificate is filled in by the Farkas route
    (:func:`repro.cone.certificates.separating_constraint`) at
    feasibility-test cost — never by the exponential full deduction.
    """
    constraint = result.certificate
    if constraint is None and explain:
        try:
            constraint = separating_constraint(cone, point, backend=backend)
        except ReproError:
            constraint = None
    if constraint is None:
        return None
    margin = constraint.evaluate(cone.vector_from_observation(point))
    if constraint.kind == EQUALITY:
        margin = -abs(margin)
    return Violation(constraint, margin, definite=definite)


def compute_cell_verdicts(cone, targets, backend="exact", use_regions=False,
                          explain=False):
    """Compute the verdicts of a batch of cells (no memo involved).

    This is the one function both the serial path and the pool workers
    run, which is what makes ``workers=N`` results bit-for-bit equal to
    serial ones. Point batches keep the exact facet screen's batching;
    region cells run the Appendix A region LP. ``explain`` guarantees a
    violated-constraint record for every infeasible cell.
    """
    verdicts = []
    if use_regions:
        for target in targets:
            result = test_region_feasibility(cone, target, backend=backend)
            if result.feasible:
                verdicts.append(CellVerdict(True))
            else:
                # The region's centre is itself infeasible (it lies in
                # the region), so a point certificate at the centre is
                # valid evidence — flagged at-mean, not definite.
                violation = _certificate_violation(
                    cone, target.center(), result, backend, explain,
                    definite=False,
                )
                verdicts.append(CellVerdict(False, violation))
    else:
        results = test_points_feasibility(cone, targets, backend=backend)
        for target, result in zip(targets, results):
            if result.feasible:
                verdicts.append(CellVerdict(True))
            else:
                violation = _certificate_violation(
                    cone, target, result, backend, explain, definite=True,
                )
                verdicts.append(CellVerdict(False, violation))
    return verdicts


class AnalysisSession:
    """Incremental, memoizing front-end over a CounterPoint pipeline.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.pipeline.CounterPoint` to compute through.
        ``None`` builds one from the remaining keyword options.
    store:
        Persistent verdict tier: an
        :class:`~repro.results.store.ArtifactStore`, a directory path to
        build one over, or ``None`` (memory-only memoization). A warmed
        store makes re-analysis of unchanged cells free *across
        processes and runs*.
    pipeline_options:
        Passed to :class:`~repro.pipeline.CounterPoint` when
        ``pipeline`` is ``None`` (``backend=``, ``workers=``, ...).
    """

    def __init__(self, pipeline=None, store=None, **pipeline_options):
        if pipeline is None:
            from repro.pipeline import CounterPoint

            pipeline = CounterPoint(**pipeline_options)
        elif pipeline_options:
            raise ReproError(
                "pass pipeline options or a ready pipeline, not both: %s"
                % ", ".join(sorted(pipeline_options))
            )
        self.pipeline = pipeline
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self._memo = {}
        self.stats = SessionStats()
        # Optional in-flight dedup (repro.results.store.ClaimTable):
        # when set, sweep() claims each pending cell before computing
        # it, so concurrent jobs sharing this session (or its store)
        # never compute the same cell twice. None — the default — is
        # exactly the historic single-owner behaviour.
        self.claims = None

    # -- memo plumbing -----------------------------------------------------
    def _point_key(self, cone, observation, explain):
        return content_key(
            "point",
            cone.fingerprint(),
            observation_fingerprint(observation),
            self.pipeline.backend,
            bool(explain),
        )

    def _region_key(self, cone, observation, correlated, explain):
        return content_key(
            "region",
            cone.fingerprint(),
            observation_fingerprint(observation, samples=True),
            self.pipeline.backend,
            repr(float(self.pipeline.confidence)),
            bool(correlated),
            bool(explain),
        )

    def _lookup(self, key):
        verdict = self._memo.get(key)
        if verdict is not None:
            self.stats.memo_hits += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("session.memo_hit")
                tracer.metrics.counter("session.memo_hits").inc()
            return verdict
        if self.store is not None:
            payload = self.store.get("verdict", key)
            if payload is not None:
                try:
                    verdict = CellVerdict.from_dict(payload)
                except Exception:
                    # A valid envelope around a foreign payload (torn
                    # by a racing writer, or left by an older schema):
                    # drop it and recompute — never crash a sweep.
                    self.store.discard("verdict", key)
                    return None
                self._memo[key] = verdict
                self.stats.store_hits += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event("session.store_hit")
                    tracer.metrics.counter("session.store_hits").inc()
                return verdict
        return None

    def _record(self, key, verdict):
        self._memo[key] = verdict
        if self.store is not None:
            self.store.put("verdict", key, verdict.to_dict())

    def forget(self):
        """Drop the in-memory memo (the store, if any, is untouched)."""
        self._memo.clear()

    # -- sweeps ------------------------------------------------------------
    def sweep(self, model, observations, use_regions=False, correlated=True,
              explain=False, compute=None):
        """Evaluate a model against a dataset, testing only new cells.

        Identical contract to :meth:`repro.pipeline.CounterPoint.sweep`
        (which routes here through the plan engine); cells already
        answered by this session — or by any earlier run sharing the
        store — are served from the memo. Returns a
        :class:`~repro.results.types.ModelSweep` whose ``why`` carries
        refutation evidence (guaranteed per infeasible cell with
        ``explain``, best-effort otherwise).

        ``compute`` overrides how the pending batch is solved — a
        callable ``(cone, targets, use_regions, explain) -> verdicts``.
        The plan engine's pluggable schedulers hook in here; the
        default is the session's own serial-or-pool dispatch. Lookup,
        recording, and statistics stay with the session either way, so
        an override can change wall-clock but never memo semantics.
        """
        pipeline = self.pipeline
        tracer = get_tracer()
        with tracer.span("session.sweep", model=getattr(
            model, "name", str(model)
        )) as span:
            cone = pipeline.model_cone(model)
            observations = list(observations)
            names = [
                getattr(observation, "name", "obs%d" % index)
                for index, observation in enumerate(observations)
            ]
            verdicts = [None] * len(observations)
            pending = []
            for index, observation in enumerate(observations):
                if use_regions:
                    key = self._region_key(
                        cone, observation, correlated, explain
                    )
                else:
                    key = self._point_key(cone, observation, explain)
                verdict = self._lookup(key)
                if verdict is None:
                    pending.append((index, key))
                else:
                    verdicts[index] = verdict
            span.set(cells=len(observations), pending=len(pending))
            if pending:
                if compute is None:
                    compute = self._compute
                if self.claims is None:
                    self._compute_pending(
                        cone, pending, observations, verdicts,
                        compute, use_regions, correlated, explain, tracer,
                    )
                else:
                    self._compute_claimed(
                        cone, pending, observations, verdicts,
                        compute, use_regions, correlated, explain, tracer,
                    )
            return sweep_from_verdicts(cone.name, names, verdicts)

    def _compute_pending(self, cone, pending, observations, verdicts,
                         compute, use_regions, correlated, explain, tracer):
        """Solve one batch of pending ``(index, key)`` cells and record
        the verdicts (the historic unconditional path)."""
        targets = [
            self._target(observations[index], use_regions, correlated)
            for index, _ in pending
        ]
        computed = compute(cone, targets, use_regions, explain)
        self.stats.tests += len(pending)
        if tracer.enabled:
            tracer.metrics.counter("session.tests").inc(len(pending))
        for (index, key), verdict in zip(pending, computed):
            self._record(key, verdict)
            verdicts[index] = verdict

    def _compute_claimed(self, cone, pending, observations, verdicts,
                         compute, use_regions, correlated, explain, tracer):
        """The claim-mediated pending path: compute only cells this
        caller wins, wait for (then re-read) cells another worker owns.

        The protocol is deadlock-free by construction — an owner never
        waits while holding claims: it computes its claimed subset,
        records, releases, and only *then* waits on other owners'
        cells. A waiter whose owner failed (the verdict is still absent
        after the release) computes the cell itself, so claims can cost
        wall-clock but never correctness.
        """
        claims = self.claims
        mine, theirs = [], []
        for entry in pending:
            (mine if claims.claim(entry[1]) else theirs).append(entry)
        try:
            if mine:
                self._compute_pending(
                    cone, mine, observations, verdicts,
                    compute, use_regions, correlated, explain, tracer,
                )
        finally:
            for _, key in mine:
                claims.release(key)
        orphaned = []
        for index, key in theirs:
            claims.wait(key)
            verdict = self._lookup(key)
            if verdict is None:
                orphaned.append((index, key))
            else:
                verdicts[index] = verdict
        if orphaned:
            self._compute_pending(
                cone, orphaned, observations, verdicts,
                compute, use_regions, correlated, explain, tracer,
            )

    def _target(self, observation, use_regions, correlated):
        """The solvable form of an observation for one mode."""
        if use_regions:
            region = getattr(observation, "region", None)
            if callable(region):
                return region(
                    confidence=self.pipeline.confidence, correlated=correlated
                )
            return observation  # already a region
        point = getattr(observation, "point", None)
        if callable(point):
            return point()
        return observation  # a mapping or ordered sequence

    def _compute(self, cone, targets, use_regions, explain):
        pipeline = self.pipeline
        if pipeline._parallel() and len(targets) > 1:
            from repro.parallel.tasks import dispatch_verdicts

            return dispatch_verdicts(
                pipeline.runner(),
                cone,
                targets,
                backend=pipeline.backend,
                use_regions=use_regions,
                explain=explain,
            )
        return compute_cell_verdicts(
            cone,
            targets,
            backend=pipeline.backend,
            use_regions=use_regions,
            explain=explain,
        )

    def compare(self, models, observations, **sweep_options):
        """Sweep several candidate models over one dataset.

        The multi-model view of :meth:`sweep` — appending one model to
        a warmed comparison tests only the new model's cells. Returns a
        :class:`~repro.results.types.CompareResult`.
        """
        # A list, not a dict: CompareResult's duplicate-name guard must
        # see every sweep (a dict would silently drop earlier ones).
        return CompareResult([
            self.sweep(model, observations, **sweep_options)
            for model in models
        ])

    # -- single-observation analysis ---------------------------------------
    def analyze(self, model, observation, explain=False):
        """Test one observation (point or region) against one model.

        Returns an :class:`~repro.results.types.AnalysisReport`. Reports
        are memoized whole — including the violated-constraint list,
        whose deduction is the pipeline's most expensive step — so
        re-analyzing a known-infeasible observation is free even in a
        fresh process sharing the store.
        """
        pipeline = self.pipeline
        tracer = get_tracer()
        with tracer.span("session.analyze", model=getattr(
            model, "name", str(model)
        )) as span:
            return self._analyze(pipeline, model, observation, explain, span)

    def _analyze(self, pipeline, model, observation, explain, span):
        cone = pipeline.model_cone(model)
        is_region = hasattr(observation, "box_constraints")
        key = content_key(
            "report",
            cone.fingerprint(),
            observation_fingerprint(observation, samples=False),
            pipeline.backend,
            bool(explain),
        )
        tracer = get_tracer()
        cached = self._memo.get(key)
        if cached is None and self.store is not None:
            payload = self.store.get("report", key)
            if payload is not None:
                try:
                    cached = AnalysisReport.from_dict(payload)
                except Exception:
                    # Corrupt-but-enveloped payload: discard, recompute.
                    self.store.discard("report", key)
                    cached = None
                else:
                    self._memo[key] = cached
                    self.stats.store_hits += 1
                    if tracer.enabled:
                        tracer.metrics.counter("session.store_hits").inc()
        elif cached is not None:
            self.stats.memo_hits += 1
            if tracer.enabled:
                tracer.metrics.counter("session.memo_hits").inc()
        if cached is not None:
            # Content keys ignore model names; hand back a relabeled
            # *copy* — mutating the memo entry would corrupt reports
            # already returned to earlier callers.
            span.set(outcome="memoized")
            report = AnalysisReport.from_dict(cached.to_dict())
            report.model_name = cone.name
            return report
        span.set(outcome="computed")
        if is_region:
            result = test_region_feasibility(
                cone, observation, backend=pipeline.backend
            )
        else:
            result = test_points_feasibility(
                cone, [observation], backend=pipeline.backend
            )[0]
        violations = []
        certificate = result.certificate
        if not result.feasible:
            violations = identify_violations(
                cone, observation, backend=pipeline.backend
            )
            if certificate is None and explain:
                try:
                    point = (
                        observation.center() if is_region else observation
                    )
                    certificate = separating_constraint(
                        cone, point, backend=pipeline.backend
                    )
                except ReproError:
                    certificate = None
        report = AnalysisReport(
            cone.name,
            result.feasible,
            violations,
            witness=result.witness,
            certificate=certificate,
        )
        self.stats.tests += 1
        self.stats.reports += 1
        if tracer.enabled:
            tracer.metrics.counter("session.tests").inc()
            tracer.metrics.counter("session.reports").inc()
        self._memo[key] = report
        if self.store is not None:
            self.store.put("report", key, report.to_dict())
        return report

    # -- the closed loop ---------------------------------------------------
    def cross_refute(self, models, n_observations=3, n_uops=20000,
                     weights=None, seed=0, explain=False):
        """The closed-loop matrix: simulate each model, sweep all models.

        Returns a :class:`~repro.results.types.RefutationMatrix`. On
        the serial path cells are memoized individually in this
        session, so re-running with one model appended re-tests only
        the new row and column. With ``workers > 1`` the matrix shards
        by row across the pool and the verdicts are computed (and
        memoized) in the worker processes — incremental re-runs then
        require a ``cache_dir`` on the pipeline, whose shared artifact
        store plays the memo role across workers and runs; this
        session's own memo and ``stats`` are not consulted or updated
        by the pooled path.
        """
        from repro.sim import as_mudd, simulate_dataset

        pipeline = self.pipeline
        mudds = [as_mudd(model) for model in models]
        if pipeline._parallel() and len(mudds) > 1:
            from repro.parallel import parallel_cross_refute

            return parallel_cross_refute(
                pipeline.runner(),
                mudds,
                n_observations=n_observations,
                n_uops=n_uops,
                weights=weights,
                seed=seed,
                backend=pipeline.backend,
                confidence=pipeline.confidence,
                explain=explain,
            )
        rows = {}
        for row, observed in enumerate(mudds):
            observations = simulate_dataset(
                observed,
                n_observations,
                n_uops=n_uops,
                weights=weights,
                seed=seed + 1000 * row,
            )
            counters = observations[0].samples.counters
            sweeps = {}
            for candidate in mudds:
                cone = pipeline.model_cone(candidate, counters=counters)
                sweeps[candidate.name] = self.sweep(
                    cone, observations, explain=explain
                )
            rows[observed.name] = CompareResult(sweeps)
        return RefutationMatrix(rows)

    def __repr__(self):
        return "AnalysisSession(%d memoized, %r%s)" % (
            len(self._memo),
            self.stats,
            ", store=%r" % (self.store.root,) if self.store is not None else "",
        )


__all__ = ["AnalysisSession", "SessionStats", "compute_cell_verdicts"]
