"""Guided model exploration (Section 5 of the paper).

CounterPoint's feasibility verdicts drive an expert-in-the-loop search
over the space of microarchitectural feature sets:

* **Discovery** — starting from a conservative model, add every feature
  that eliminates constraint violations until a feasible µDD emerges,
* **Elimination** — recursively prune features from the feasible
  candidate; infeasible sub-models prune their whole subtree (the
  paper's empirical monotonicity heuristic),
* **Classification** — features present in *every* feasible model are
  confirmed; features present in only some are possible-but-ambiguous
  (Figure 7).
"""

from repro.explore.search import GuidedSearch, ModelEvaluation, SearchResult
from repro.explore.classification import classify_features, essential_features
from repro.explore.refinement import (
    PathRequirement,
    describe_required_path,
    suggest_features,
)

__all__ = [
    "GuidedSearch",
    "ModelEvaluation",
    "PathRequirement",
    "SearchResult",
    "classify_features",
    "describe_required_path",
    "essential_features",
    "suggest_features",
]
