"""Refinement suggestions: from violated constraints to candidate features.

Section 5's mechanics: when constraint ``a·x <= b·x`` is violated, every
feasible refinement must contain a µpath whose signature satisfies
``a·S(p) > b·S(p)`` — i.e. a hardware behaviour that increments the
left-hand counters without (as many of) the right-hand ones. This module
mechanises the expert's reading of that requirement:

* :func:`describe_required_path` — turn a violated constraint into the
  µpath requirement, stated over counter names;
* :func:`suggest_features` — match the requirement against a knowledge
  base of microarchitectural feature archetypes (the Table 4 features,
  described by which counter relationships they decouple) and rank the
  candidates.

The suggestions drive the same discovery loop `GuidedSearch` automates,
but surfaced as human-readable guidance — the tool's actual interaction
model in the paper.
"""

from repro.errors import AnalysisError
from repro.models.features import (
    EARLY_PSC,
    MERGING,
    PML4E_CACHE,
    TLB_PF,
    WALK_BYPASS,
)


class PathRequirement:
    """What any feasible refinement's new µpath must look like."""

    __slots__ = ("must_increment", "without_incrementing", "constraint")

    def __init__(self, must_increment, without_incrementing, constraint):
        self.must_increment = list(must_increment)
        self.without_incrementing = list(without_incrementing)
        self.constraint = constraint

    def render(self):
        return (
            "need a µpath incrementing {%s} more than {%s} (violates: %s)"
            % (
                ", ".join(self.must_increment) or "nothing",
                ", ".join(self.without_incrementing) or "nothing",
                self.constraint.render(),
            )
        )

    def __repr__(self):
        return "PathRequirement(%s)" % self.render()


def describe_required_path(constraint):
    """The Section 5 reading of a violated model constraint.

    For ``normal . x >= 0`` violated, a resolving µpath must have
    ``normal . S(p) < 0``: it increments the negative-coefficient
    counters (the constraint's left side) without enough of the
    positive-coefficient ones.
    """
    negatives = [
        name
        for name, coefficient in zip(constraint.counters, constraint.normal)
        if coefficient < 0
    ]
    positives = [
        name
        for name, coefficient in zip(constraint.counters, constraint.normal)
        if coefficient > 0
    ]
    if not negatives and not positives:
        raise AnalysisError("constraint has an empty normal")
    return PathRequirement(negatives, positives, constraint)


class FeatureArchetype:
    """A microarchitectural feature, described by what it decouples.

    ``decouples`` maps counter-substring patterns the feature lets fire
    *without* the patterns in ``from_patterns`` firing alongside.
    """

    __slots__ = ("feature", "description", "emits_patterns", "without_patterns")

    def __init__(self, feature, description, emits_patterns, without_patterns):
        self.feature = feature
        self.description = description
        self.emits_patterns = tuple(emits_patterns)
        self.without_patterns = tuple(without_patterns)

    def score(self, requirement):
        """How well this feature matches the path requirement: fraction
        of must-increment counters it can emit, provided it avoids at
        least one suppressed counter the requirement needs avoided."""
        if not requirement.must_increment:
            return 0.0
        emitted = sum(
            1
            for name in requirement.must_increment
            if any(pattern in name for pattern in self.emits_patterns)
        )
        if emitted == 0:
            return 0.0
        avoids = (
            not requirement.without_incrementing
            or any(
                any(pattern in name for pattern in self.without_patterns)
                for name in requirement.without_incrementing
            )
        )
        if not avoids:
            return 0.0
        return emitted / len(requirement.must_increment)


# The Table 4 features, as decoupling archetypes. "emits" are the counters
# the feature's new µpaths can increment; "without" are the counters those
# paths avoid — the decoupling that resolves violations.
HASWELL_ARCHETYPES = (
    FeatureArchetype(
        TLB_PF,
        "A translation prefetcher injects page-walker references (and PSC "
        "probes) without demand walks or retired misses.",
        emits_patterns=("walk_ref", "pde$_miss"),
        without_patterns=("causes_walk", "walk_done", "ret"),
    ),
    FeatureArchetype(
        EARLY_PSC,
        "Probing the paging-structure caches before MSHR allocation lets "
        "pde$_miss fire for requests that never start a walk.",
        emits_patterns=("pde$_miss",),
        without_patterns=("causes_walk", "walk_done"),
    ),
    FeatureArchetype(
        MERGING,
        "MSHR walk merging retires STLB-missing µops without walks of "
        "their own.",
        emits_patterns=("ret_stlb_miss", "pde$_miss"),
        without_patterns=("causes_walk", "walk_done", "walk_ref"),
    ),
    FeatureArchetype(
        PML4E_CACHE,
        "A root-level MMU cache completes walks with fewer walker "
        "references.",
        emits_patterns=("causes_walk", "walk_done"),
        without_patterns=("walk_ref",),
    ),
    FeatureArchetype(
        WALK_BYPASS,
        "Replayed walks complete without visible walker references.",
        emits_patterns=("causes_walk", "walk_done", "ret_stlb_miss"),
        without_patterns=("walk_ref",),
    ),
)


def suggest_features(violations, archetypes=HASWELL_ARCHETYPES, threshold=0.0):
    """Rank candidate features for a set of violations.

    Parameters
    ----------
    violations:
        Iterable of :class:`repro.cone.Violation` (or of
        :class:`repro.cone.ModelConstraint` directly).
    archetypes:
        The feature knowledge base.
    threshold:
        Minimum per-violation match score to count.

    Returns
    -------
    List of ``(feature, total_score, explanations)`` sorted by descending
    score; ``explanations`` pairs each matched violation's rendered
    constraint with the archetype description.
    """
    requirements = []
    for violation in violations:
        constraint = getattr(violation, "constraint", violation)
        if constraint.is_equality:
            continue  # equalities are structural, not feature-resolvable
        requirements.append(describe_required_path(constraint))
    if not requirements:
        return []

    ranked = []
    for archetype in archetypes:
        total = 0.0
        explanations = []
        for requirement in requirements:
            score = archetype.score(requirement)
            if score > threshold:
                total += score
                explanations.append(
                    (requirement.constraint.render(), archetype.description)
                )
        if total > 0:
            ranked.append((archetype.feature, total, explanations))
    ranked.sort(key=lambda item: -item[1])
    return ranked
