"""Textual reports for guided-exploration runs.

Renders the artefacts the paper presents as tables: the model-by-model
feasibility table (Table 3 style), a discovery-trail narrative, and the
Figure 7 feature classification.
"""

from repro.explore.classification import classify_features
from repro.errors import AnalysisError


def render_evaluation_table(evaluations, feature_order, title="Model search"):
    """Render evaluations as a Table 3-style text table.

    ``evaluations`` is an iterable (or dict values) of
    :class:`repro.explore.ModelEvaluation`; ``feature_order`` fixes the
    column order of the feature checkmarks.
    """
    if isinstance(evaluations, dict):
        evaluations = list(evaluations.values())
    evaluations = sorted(
        evaluations, key=lambda ev: (ev.n_infeasible, sorted(ev.features))
    )
    if not evaluations:
        raise AnalysisError("no evaluations to render")

    header = ["model".ljust(28)] + [name[:8].ljust(9) for name in feature_order] + ["#inf"]
    lines = [title, "-" * len(title), " ".join(header)]
    for index, evaluation in enumerate(evaluations):
        star = "*" if evaluation.feasible else " "
        label = "%s{%s}" % (star, ",".join(sorted(evaluation.features)) or "")
        row = [label[:28].ljust(28)]
        for feature in feature_order:
            row.append(("yes" if feature in evaluation.features else "-").ljust(9))
        row.append(str(evaluation.n_infeasible))
        lines.append(" ".join(row))
        del index
    return "\n".join(lines)


def render_discovery_trail(search, trail):
    """Narrate a discovery run: feature set and score per step."""
    lines = ["Discovery trail:"]
    previous = None
    for step, features in enumerate(trail):
        evaluation = search.evaluate(features)
        added = ""
        if previous is not None:
            gained = sorted(features - previous)
            if gained:
                added = "  (+%s)" % ",".join(gained)
        lines.append(
            "  step %d: %d/%d infeasible%s"
            % (step, evaluation.n_infeasible, evaluation.n_observations, added)
        )
        previous = features
    return "\n".join(lines)


def render_classification(evaluations, feature_order):
    """Render the Figure 7 classification as text."""
    classification = classify_features(evaluations, feature_order)
    lines = ["Feature classification:"]
    for feature in feature_order:
        lines.append("  %-14s %s" % (feature, classification[feature]))
    return "\n".join(lines)


def render_search_result(search, result, feature_order):
    """Complete report for a :class:`repro.explore.SearchResult`."""
    sections = [
        render_evaluation_table(result.evaluations, feature_order),
        "",
        render_discovery_trail(search, result.discovery_trail),
        "",
    ]
    if result.candidate is not None:
        sections.append(
            "Candidate model: {%s}" % ",".join(sorted(result.candidate))
        )
        minimal = result.minimal_feasible
        sections.append(
            "Minimal feasible models: %s"
            % "; ".join("{%s}" % ",".join(sorted(f)) for f in minimal)
        )
        sections.append("")
        sections.append(render_classification(result.evaluations, feature_order))
    else:
        sections.append("Discovery did not reach a feasible model.")
    return "\n".join(sections)
