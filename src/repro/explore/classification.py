"""Model classification (Figure 7): what do feasible models agree on?

If the workload dataset has covered the relevant behaviour space, a
feature present in *every* feasible model must be present in the
hardware; a feature present in some feasible models is possible but
unconfirmed; a feature in no feasible model is unsupported by the data.
"""

from repro.errors import AnalysisError

CONFIRMED = "confirmed"
POSSIBLE = "possible"
UNSUPPORTED = "unsupported"


def essential_features(evaluations):
    """Features present in every feasible model (Figure 7's F_Y)."""
    feasible_sets = [ev.features for ev in _iter_evaluations(evaluations) if ev.feasible]
    if not feasible_sets:
        raise AnalysisError("no feasible models to classify")
    essential = set(feasible_sets[0])
    for features in feasible_sets[1:]:
        essential &= features
    return frozenset(essential)


def classify_features(evaluations, candidate_features):
    """Classify each candidate feature as confirmed / possible /
    unsupported given the evaluated model population."""
    feasible_sets = [ev.features for ev in _iter_evaluations(evaluations) if ev.feasible]
    if not feasible_sets:
        raise AnalysisError("no feasible models to classify")
    classification = {}
    for feature in candidate_features:
        present = sum(1 for features in feasible_sets if feature in features)
        if present == len(feasible_sets):
            classification[feature] = CONFIRMED
        elif present > 0:
            classification[feature] = POSSIBLE
        else:
            classification[feature] = UNSUPPORTED
    return classification


def _iter_evaluations(evaluations):
    if isinstance(evaluations, dict):
        return list(evaluations.values())
    return list(evaluations)
