"""The discovery/elimination search over feature sets.

The paper's algorithm (Section 5) has an expert in the loop: Counter-
Point reports violated constraints, the expert proposes features that
could eliminate them. Here the "expert move" is mechanised as a greedy
test — a feature is added when adding it strictly reduces the number of
infeasible observations — which is exactly how the paper's Figure 8
search tree unfolds for the Haswell case study (each feature resolves a
distinct violation family).
"""

from repro.errors import AnalysisError
from repro.cone import test_point_feasibility
from repro.results.base import ResultBase, register


@register
class ModelEvaluation(ResultBase):
    """Feasibility of one feature set against the dataset.

    Serializes through the shared :mod:`repro.results` contract, so
    search artefacts (the Figure 10 graph's nodes) can be stored and
    compared across runs.
    """

    kind = "model_evaluation"

    def __init__(self, features, infeasible, n_observations):
        self.features = frozenset(features)
        self.infeasible = list(infeasible)
        self.n_observations = n_observations

    @property
    def n_infeasible(self):
        return len(self.infeasible)

    @property
    def feasible(self):
        return not self.infeasible

    def _payload(self):
        return {
            "features": sorted(self.features),
            "infeasible": list(self.infeasible),
            "n_observations": self.n_observations,
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls(
            payload["features"], payload["infeasible"], payload["n_observations"]
        )

    def __repr__(self):
        return "ModelEvaluation({%s}: %d/%d infeasible)" % (
            ",".join(sorted(self.features)),
            self.n_infeasible,
            self.n_observations,
        )


@register
class SearchResult(ResultBase):
    """Everything the search learned.

    Attributes
    ----------
    evaluations:
        Mapping feature-frozenset → :class:`ModelEvaluation` for every
        model evaluated (the Figure 10 graph's nodes).
    discovery_trail:
        Feature sets visited during discovery, in order.
    candidate:
        The feasible feature set discovery converged to (or None).
    minimal_feasible:
        Feasible feature sets none of whose evaluated children (one
        feature removed) are feasible.
    """

    kind = "search_result"

    def __init__(self, evaluations, discovery_trail, candidate):
        self.evaluations = dict(evaluations)
        self.discovery_trail = list(discovery_trail)
        self.candidate = candidate

    @property
    def feasible_sets(self):
        return [ev.features for ev in self.evaluations.values() if ev.feasible]

    @property
    def minimal_feasible(self):
        minimal = []
        for features in self.feasible_sets:
            children_feasible = False
            for feature in features:
                child = features - {feature}
                evaluation = self.evaluations.get(child)
                if evaluation is not None and evaluation.feasible:
                    children_feasible = True
                    break
            if not children_feasible:
                minimal.append(features)
        return minimal

    def _payload(self):
        evaluations = [
            self.evaluations[features].to_dict()
            for features in sorted(self.evaluations, key=sorted)
        ]
        return {
            "evaluations": evaluations,
            "discovery_trail": [sorted(features) for features in self.discovery_trail],
            "candidate": (
                None if self.candidate is None else sorted(self.candidate)
            ),
        }

    @classmethod
    def _from_payload(cls, payload):
        evaluations = {}
        for entry in payload["evaluations"]:
            evaluation = ModelEvaluation.from_dict(entry)
            evaluations[evaluation.features] = evaluation
        return cls(
            evaluations,
            [frozenset(features) for features in payload["discovery_trail"]],
            None if payload["candidate"] is None
            else frozenset(payload["candidate"]),
        )

    def __repr__(self):
        return "SearchResult(%d models, %d feasible)" % (
            len(self.evaluations),
            len(self.feasible_sets),
        )


class GuidedSearch:
    """Discovery/elimination search over microarchitectural features.

    Parameters
    ----------
    cone_builder:
        Callable mapping a feature frozenset to a
        :class:`repro.cone.ModelCone`.
    observations:
        Objects with ``name`` and ``point()`` (see
        :class:`repro.models.dataset.Observation`).
    candidate_features:
        The feature universe to search over.
    backend:
        LP backend for feasibility tests (``"scipy"`` recommended for
        sweeps; ``"exact"`` for certification).
    runner:
        Optional :class:`repro.parallel.ParallelRunner`. Each search
        step evaluates many independent feature sets (discovery tries
        every missing feature; elimination tries every child); with a
        runner they shard across the process pool. ``cone_builder``
        must then be picklable (a module-level function) — anything
        else falls back to serial evaluation with identical results.
    """

    def __init__(self, cone_builder, observations, candidate_features,
                 backend="scipy", runner=None):
        if not observations:
            raise AnalysisError("guided search needs at least one observation")
        self.cone_builder = cone_builder
        self.observations = list(observations)
        self.candidate_features = tuple(candidate_features)
        self.backend = backend
        self.runner = runner
        self._cache = {}

    def evaluate(self, features):
        """Evaluate one feature set (memoised)."""
        features = frozenset(features)
        if features not in self._cache:
            cone = self.cone_builder(features)
            infeasible = []
            for observation in self.observations:
                result = test_point_feasibility(
                    cone, observation.point(), backend=self.backend
                )
                if not result.feasible:
                    infeasible.append(observation.name)
            self._cache[features] = ModelEvaluation(
                features, infeasible, len(self.observations)
            )
        return self._cache[features]

    def evaluate_many(self, feature_sets):
        """Evaluate several feature sets, sharding across the runner's
        process pool when one is configured (memoised like
        :meth:`evaluate`; results are identical either way)."""
        pending = []
        for features in feature_sets:
            features = frozenset(features)
            if features not in self._cache and features not in pending:
                pending.append(features)
        if self.runner is None or self.runner.serial or len(pending) <= 1:
            for features in pending:
                self.evaluate(features)
            return
        from repro.parallel.tasks import run_feature_evaluation

        points = [
            (observation.name, observation.point())
            for observation in self.observations
        ]
        cells = [
            {
                "cone_builder": self.cone_builder,
                "features": features,
                "points": points,
                "backend": self.backend,
            }
            for features in pending
        ]
        for features, infeasible in self.runner.map_cells(
            run_feature_evaluation, cells
        ):
            self._cache[features] = ModelEvaluation(
                features, infeasible, len(self.observations)
            )

    # -- discovery -------------------------------------------------------
    def discovery(self, initial=frozenset()):
        """Add violation-resolving features until feasible (or stuck).

        Returns ``(candidate_or_None, trail)``.
        """
        current = frozenset(initial)
        trail = [current]
        evaluation = self.evaluate(current)
        while not evaluation.feasible:
            improvers = []
            missing = [f for f in self.candidate_features if f not in current]
            # One discovery step's trials are independent: warm the
            # memo for all of them in parallel, then rank serially.
            self.evaluate_many([current | {f} for f in missing])
            for feature in missing:
                trial = self.evaluate(current | {feature})
                if trial.n_infeasible < evaluation.n_infeasible:
                    improvers.append(feature)
            if not improvers:
                return None, trail
            # Paper: "When more than one feature can eliminate a
            # constraint, all features should be added to their model."
            current = current | set(improvers)
            trail.append(current)
            evaluation = self.evaluate(current)
        return current, trail

    # -- elimination -----------------------------------------------------
    def elimination(self, features):
        """Recursively prune features; infeasible subtrees stop (the
        paper's pruning heuristic)."""
        features = frozenset(features)
        visited = set()

        def recurse(current):
            children = []
            for feature in sorted(current):
                child = current - {feature}
                if child in visited:
                    continue
                visited.add(child)
                children.append(child)
            # A node's children are independent; evaluate the frontier
            # in one sharded batch, then descend into the feasible ones.
            self.evaluate_many(children)
            for child in children:
                if self.evaluate(child).feasible:
                    recurse(child)

        recurse(features)

    # -- full run ----------------------------------------------------------
    def run(self, initial=frozenset()):
        candidate, trail = self.discovery(initial)
        if candidate is not None:
            self.elimination(candidate)
        return SearchResult(self._cache, trail, candidate)
