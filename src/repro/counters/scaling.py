"""HEC population scaling across microarchitectures (Figure 1a).

The paper counts event names in the Linux perf database per
microarchitecture ("Named", single core) and estimates "Addressable"
events system-wide by removing deprecated events, splitting core vs
uncore, and multiplying core events by the typical server core count.

We have no network access to the perf database, so this module embeds a
reconstruction of the figure's data points (microarchitecture, release
year, named core/uncore event counts, deprecated fraction, typical
server core count) chosen to match the published curve: named counts
roughly tripling 2009→2019 while addressable counts grow more than 10×
(log-scale y-axis, ~10^3 to ~10^5).
"""

from repro.errors import ConfigurationError


class MicroarchHecCensus:
    """HEC population data for one microarchitecture generation."""

    __slots__ = (
        "name",
        "year",
        "named_core",
        "named_uncore",
        "deprecated_fraction",
        "typical_cores",
    )

    def __init__(self, name, year, named_core, named_uncore, deprecated_fraction, typical_cores):
        self.name = name
        self.year = year
        self.named_core = named_core
        self.named_uncore = named_uncore
        self.deprecated_fraction = deprecated_fraction
        self.typical_cores = typical_cores

    @property
    def named_total(self):
        """Documented event names assuming a single core (blue line)."""
        return self.named_core + self.named_uncore

    @property
    def addressable_total(self):
        """System-wide addressable events (red line): deprecated events
        removed, core events replicated per core, uncore added once."""
        live = 1.0 - self.deprecated_fraction
        core = int(self.named_core * live) * self.typical_cores
        uncore = int(self.named_uncore * live)
        return core + uncore

    def __repr__(self):
        return "MicroarchHecCensus(%s, %d)" % (self.name, self.year)


# Reconstruction of Figure 1a's data points. Yearly placement and core
# counts come from the figure labels (e.g. "HSX | 18"); event counts are
# calibrated so both curves match the published log-scale trajectory.
HEC_CENSUS = (
    MicroarchHecCensus("NHM-EX", 2009, named_core=730, named_uncore=390, deprecated_fraction=0.08, typical_cores=8),
    MicroarchHecCensus("WSM-EX", 2010, named_core=780, named_uncore=450, deprecated_fraction=0.08, typical_cores=10),
    MicroarchHecCensus("IVT", 2013, named_core=880, named_uncore=900, deprecated_fraction=0.06, typical_cores=15),
    MicroarchHecCensus("HSX", 2014, named_core=960, named_uncore=1350, deprecated_fraction=0.05, typical_cores=18),
    MicroarchHecCensus("KNL", 2016, named_core=640, named_uncore=720, deprecated_fraction=0.04, typical_cores=72),
    MicroarchHecCensus("CLX", 2019, named_core=1200, named_uncore=2400, deprecated_fraction=0.04, typical_cores=56),
)


def census_by_name(name):
    for census in HEC_CENSUS:
        if census.name == name:
            return census
    raise ConfigurationError("unknown microarchitecture %r" % (name,))


def named_series():
    """(year, named event count) pairs — the figure's blue line."""
    return [(census.year, census.named_total) for census in HEC_CENSUS]


def addressable_series():
    """(year, addressable event count) pairs — the figure's red line."""
    return [(census.year, census.addressable_total) for census in HEC_CENSUS]


def growth_factor(series):
    """Last-to-first ratio of a (year, count) series."""
    if len(series) < 2:
        raise ConfigurationError("growth factor needs at least two points")
    return series[-1][1] / series[0][1]
