"""Reading and writing ``perf stat`` interval CSV.

CounterPoint consumes time-series HEC samples; on real hardware those
come from ``perf stat -I <ms> -x, -e <events>``. This module parses that
CSV format into a :class:`repro.counters.sampling.SampleMatrix` (mapping
full perf event names to the paper's short names via the Table 2
database) and can emit the same format, so simulator output and real
measurements are interchangeable downstream.

The perf interval CSV format (one line per counter per interval)::

    1.000545382,12345,,dtlb_load_misses.miss_causes_a_walk,800246,80.00
    1.000545382,<not counted>,,some_event,0,0.00
    ...

Fields: timestamp, count (or ``<not counted>``/``<not supported>``),
unit, event name, effective run time, percentage of time enabled.
"""

import io

from repro.counters.events import HASWELL_MMU_EVENTS
from repro.counters.sampling import SampleMatrix
from repro.errors import ConfigurationError

_NOT_COUNTED = ("<not counted>", "<not supported>")

_FULL_TO_SHORT = {event.full_name: event.name for event in HASWELL_MMU_EVENTS}
_SHORT_TO_FULL = {event.name: event.full_name for event in HASWELL_MMU_EVENTS}


def parse_perf_csv(text, strict=True):
    """Parse perf interval CSV text into a :class:`SampleMatrix`.

    Event names are translated to paper-style short names when they
    appear in the Table 2 database; unknown events are kept verbatim
    (``strict=True`` raises instead). Missing counts (``<not counted>``)
    become 0.0 for that interval.
    """
    per_interval = {}
    order = []
    for line_number, raw_line in enumerate(text.splitlines(), 1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 4:
            raise ConfigurationError(
                "perf CSV line %d has %d fields (need >= 4): %r"
                % (line_number, len(fields), raw_line)
            )
        timestamp_text, count_text, _unit, event = fields[0], fields[1], fields[2], fields[3]
        try:
            timestamp = float(timestamp_text)
        except ValueError:
            raise ConfigurationError(
                "perf CSV line %d has bad timestamp %r" % (line_number, timestamp_text)
            ) from None
        if count_text in _NOT_COUNTED:
            count = 0.0
        else:
            try:
                count = float(count_text)
            except ValueError:
                raise ConfigurationError(
                    "perf CSV line %d has bad count %r" % (line_number, count_text)
                ) from None
        name = _FULL_TO_SHORT.get(event)
        if name is None:
            if strict:
                raise ConfigurationError(
                    "perf CSV line %d: unknown event %r (use strict=False to keep)"
                    % (line_number, event)
                )
            name = event
        bucket = per_interval.setdefault(timestamp, {})
        bucket[name] = bucket.get(name, 0.0) + count
        if name not in order:
            order.append(name)

    if len(per_interval) < 2:
        raise ConfigurationError("perf CSV needs at least 2 sampling intervals")

    timestamps = sorted(per_interval)
    rows = []
    for timestamp in timestamps:
        bucket = per_interval[timestamp]
        rows.append([bucket.get(name, 0.0) for name in order])
    return SampleMatrix(order, rows)


def read_perf_csv(path, strict=True):
    """Parse a perf interval CSV file (see :func:`parse_perf_csv`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_perf_csv(handle.read(), strict=strict)


def format_perf_csv(sample_matrix, interval_seconds=1.0):
    """Render a :class:`SampleMatrix` as perf interval CSV text.

    Short counter names are translated back to full perf event names
    where known. The synthetic run-time/percentage fields are emitted as
    fully-counted (100%).
    """
    buffer = io.StringIO()
    for index, row in enumerate(sample_matrix.samples):
        timestamp = (index + 1) * interval_seconds
        for name, value in zip(sample_matrix.counters, row):
            event = _SHORT_TO_FULL.get(name, name)
            buffer.write(
                "%.9f,%d,,%s,%d,100.00\n"
                % (timestamp, round(float(value)), event, int(interval_seconds * 1e9))
            )
    return buffer.getvalue()


def write_perf_csv(sample_matrix, path, interval_seconds=1.0):
    """Write :func:`format_perf_csv` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_perf_csv(sample_matrix, interval_seconds=interval_seconds))
