"""The Haswell MMU event database (the paper's Table 2).

Events are parameterised by access type ``T in {load, store}`` except
the page-walker reference counters. Short names follow the paper
(``load.causes_walk``); full names follow the Linux perf event database
(``dtlb_load_misses.miss_causes_a_walk`` style prefixes given in
Table 2's caption).

Groups and their sizes match Table 2: Walk (12), Refs (4), Ret (4),
STLB (6) — 26 counters total. The cumulative group ordering used on the
x-axes of Figures 1b and 9 is exposed as :data:`GROUP_ORDER`.
"""

from repro.errors import ConfigurationError

ACCESS_TYPES = ("load", "store")

WALK = "Walk"
REFS = "Refs"
RET = "Ret"
STLB = "STLB"

GROUPS = (WALK, REFS, RET, STLB)

# Cumulative x-axis ordering of Figures 1b / 9 ("Ret | 4", "L2TLB | 10",
# "Walk | 22", "Refs | 26"). The paper's axis label says "Refs | 23"
# because it plots a 23-counter subset; we keep all four Refs counters
# (26 total) — the scaling *shape* is what the reproduction targets.
GROUP_ORDER = (RET, STLB, WALK, REFS)


class EventDefinition:
    """One HEC: paper-style short name, perf full name and group."""

    __slots__ = ("name", "full_name", "group", "access_type", "description")

    def __init__(self, name, full_name, group, access_type, description):
        self.name = name
        self.full_name = full_name
        self.group = group
        self.access_type = access_type
        self.description = description

    def __repr__(self):
        return "EventDefinition(%r, group=%s)" % (self.name, self.group)


def _walk_events():
    events = []
    for t in ACCESS_TYPES:
        prefix = "dtlb_%s_misses" % t  # stlb_T_misses in Table 2's shorthand
        events.extend(
            [
                EventDefinition(
                    "%s.causes_walk" % t,
                    "%s.miss_causes_a_walk" % prefix,
                    WALK,
                    t,
                    "STLB miss that initiates a page table walk (%s)" % t,
                ),
                EventDefinition(
                    "%s.walk_done_4k" % t,
                    "%s.walk_completed_4k" % prefix,
                    WALK,
                    t,
                    "Completed walk for a 4KB page (%s)" % t,
                ),
                EventDefinition(
                    "%s.walk_done_2m" % t,
                    "%s.walk_completed_2m_4m" % prefix,
                    WALK,
                    t,
                    "Completed walk for a 2MB/4MB page (%s)" % t,
                ),
                EventDefinition(
                    "%s.walk_done_1g" % t,
                    "%s.walk_completed_1g" % prefix,
                    WALK,
                    t,
                    "Completed walk for a 1GB page (%s)" % t,
                ),
                EventDefinition(
                    "%s.walk_done" % t,
                    "%s.walk_completed" % prefix,
                    WALK,
                    t,
                    "Completed page table walk, any page size (%s)" % t,
                ),
                EventDefinition(
                    "%s.pde$_miss" % t,
                    "%s.pde_cache_miss" % prefix,
                    WALK,
                    t,
                    "PDE cache miss during translation (%s)" % t,
                ),
            ]
        )
    return events


def _refs_events():
    return [
        EventDefinition(
            "walk_ref.l1",
            "page_walker_loads.dtlb_l1",
            REFS,
            None,
            "Page walker load that hit the L1 data cache",
        ),
        EventDefinition(
            "walk_ref.l2",
            "page_walker_loads.dtlb_l2",
            REFS,
            None,
            "Page walker load that hit the L2 cache",
        ),
        EventDefinition(
            "walk_ref.l3",
            "page_walker_loads.dtlb_l3",
            REFS,
            None,
            "Page walker load that hit the L3 cache",
        ),
        EventDefinition(
            "walk_ref.mem",
            "page_walker_loads.memory",
            REFS,
            None,
            "Page walker load served from memory",
        ),
    ]


def _ret_events():
    events = []
    for t in ACCESS_TYPES:
        events.extend(
            [
                EventDefinition(
                    "%s.ret_stlb_miss" % t,
                    "mem_uops_retired.stlb_miss_%ss" % t,
                    RET,
                    t,
                    "Retired %s µop that missed the STLB" % t,
                ),
                EventDefinition(
                    "%s.ret" % t,
                    "mem_uops_retired.all_%ss" % t,
                    RET,
                    t,
                    "Retired %s µop" % t,
                ),
            ]
        )
    return events


def _stlb_events():
    events = []
    for t in ACCESS_TYPES:
        prefix = "dtlb_%s_misses" % t
        events.extend(
            [
                EventDefinition(
                    "%s.stlb_hit_4k" % t,
                    "%s.stlb_hit_4k" % prefix,
                    STLB,
                    t,
                    "L1 TLB miss that hit the STLB, 4KB page (%s)" % t,
                ),
                EventDefinition(
                    "%s.stlb_hit_2m" % t,
                    "%s.stlb_hit_2m" % prefix,
                    STLB,
                    t,
                    "L1 TLB miss that hit the STLB, 2MB page (%s)" % t,
                ),
                EventDefinition(
                    "%s.stlb_hit" % t,
                    "%s.stlb_hit" % prefix,
                    STLB,
                    t,
                    "L1 TLB miss that hit the STLB, any page size (%s)" % t,
                ),
            ]
        )
    return events


HASWELL_MMU_EVENTS = tuple(
    _ret_events() + _stlb_events() + _walk_events() + _refs_events()
)

_BY_NAME = {event.name: event for event in HASWELL_MMU_EVENTS}


def event_by_name(name):
    """Look up an :class:`EventDefinition` by its paper-style name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError("unknown HEC %r" % (name,)) from None


def counters_in_groups(groups):
    """Ordered counter names belonging to the given groups."""
    for group in groups:
        if group not in GROUPS:
            raise ConfigurationError("unknown counter group %r" % (group,))
    wanted = set(groups)
    return [event.name for event in HASWELL_MMU_EVENTS if event.group in wanted]


def cumulative_group_counters():
    """The Figure 1b / Figure 9 x-axis: ``[(label, counters)]`` where
    each step adds one group in :data:`GROUP_ORDER` order."""
    steps = []
    so_far = []
    for group in GROUP_ORDER:
        so_far.append(group)
        counters = counters_in_groups(so_far)
        steps.append(("%s | %d" % (group, len(counters)), list(counters)))
    return steps
