"""perf-like interval sampling glue.

CounterPoint consumes HEC measurements as time series: vectors of
counter values recorded at regular intervals over a program's execution
(Section 4). :func:`collect_interval_samples` turns any per-interval
count source (the MMU simulator, a synthetic generator, a trace reader)
into a :class:`SampleMatrix`, optionally passing the ground truth
through a :class:`~repro.counters.multiplexing.MultiplexingSimulator`.
"""

import numpy as np

from repro.errors import ConfigurationError
from repro.stats import ConfidenceRegion


class SampleMatrix:
    """An ``M x N`` matrix of interval samples with counter names.

    This is the hand-off object between measurement and analysis: it
    knows how to summarise itself as a confidence region.
    """

    def __init__(self, counters, samples, truth=None):
        self.counters = list(counters)
        self.samples = np.asarray(samples, dtype=float)
        if self.samples.ndim != 2:
            raise ConfigurationError("samples must be a 2-D matrix")
        if self.samples.shape[1] != len(self.counters):
            raise ConfigurationError(
                "sample matrix has %d columns for %d counters"
                % (self.samples.shape[1], len(self.counters))
            )
        self.truth = None if truth is None else np.asarray(truth, dtype=float)

    @property
    def n_samples(self):
        return self.samples.shape[0]

    def confidence_region(self, confidence=0.99, correlated=True):
        """Summarise the samples as a counter confidence region."""
        return ConfidenceRegion.from_samples(
            self.samples, confidence=confidence, correlated=correlated
        )

    def mean_observation(self):
        """Counter-name → mean-value mapping (a point observation)."""
        means = self.samples.mean(axis=0)
        return {name: float(value) for name, value in zip(self.counters, means)}

    def true_totals(self):
        """Ground-truth totals when available (simulator runs)."""
        if self.truth is None:
            raise ConfigurationError("no ground truth recorded for this run")
        totals = self.truth.sum(axis=0)
        return {name: float(value) for name, value in zip(self.counters, totals)}

    def subset(self, counters):
        """Project onto a counter subset (e.g. one Figure 1b group step)."""
        indices = []
        for name in counters:
            if name not in self.counters:
                raise ConfigurationError("counter %r not in sample matrix" % (name,))
            indices.append(self.counters.index(name))
        truth = None if self.truth is None else self.truth[:, indices]
        return SampleMatrix(list(counters), self.samples[:, indices], truth=truth)

    def __repr__(self):
        return "SampleMatrix(%d samples x %d counters)" % (
            self.n_samples,
            len(self.counters),
        )


def collect_interval_samples(counters, interval_counts, multiplexer=None):
    """Build a :class:`SampleMatrix` from per-interval ground truth.

    Parameters
    ----------
    counters:
        Counter names (columns).
    interval_counts:
        Iterable of per-interval mappings or vectors of ground-truth
        counts (one entry per sampling interval).
    multiplexer:
        Optional :class:`MultiplexingSimulator`; when given, the matrix
        holds noisy scale-estimated samples and keeps the ground truth
        alongside.
    """
    rows = []
    for entry in interval_counts:
        if isinstance(entry, dict):
            missing = [name for name in counters if name not in entry]
            if missing:
                raise ConfigurationError(
                    "interval counts missing counters: %s" % ", ".join(missing)
                )
            rows.append([float(entry[name]) for name in counters])
        else:
            row = [float(value) for value in entry]
            if len(row) != len(counters):
                raise ConfigurationError(
                    "interval row has %d values for %d counters"
                    % (len(row), len(counters))
                )
            rows.append(row)
    if len(rows) < 2:
        raise ConfigurationError("need at least 2 intervals of samples")
    truth = np.asarray(rows, dtype=float)
    if multiplexer is None:
        return SampleMatrix(counters, truth, truth=truth)
    noisy = multiplexer.observe_run(truth)
    return SampleMatrix(counters, noisy, truth=truth)
