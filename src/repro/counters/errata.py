"""HEC errata handling (the paper's footnote 9).

The paper: "We ensured that all of our HEC measurements were unaffected
by any published HEC errata. For errata that are triggered when SMT is
enabled (e.g., HSD29/HSM30 affecting mem_uops_retired), we addressed
this by disabling SMT in the BIOS."

This module carries the erratum database and a pre-measurement check:
given a machine configuration and the counters about to be collected,
it reports which measurements would be corrupted. The simulator honours
the same errata (``MMUConfig(smt_enabled=True)`` overcounts the affected
events), so the full loop — corrupted data → impossible observation →
errata lookup — is reproducible.
"""

from repro.counters.events import HASWELL_MMU_EVENTS, event_by_name
from repro.errors import ConfigurationError

TRIGGER_SMT = "smt"


class Erratum:
    """One published counter erratum."""

    __slots__ = ("erratum_id", "description", "event_prefix", "trigger")

    def __init__(self, erratum_id, description, event_prefix, trigger):
        self.erratum_id = erratum_id
        self.description = description
        self.event_prefix = event_prefix
        self.trigger = trigger

    def affects(self, full_event_name):
        return full_event_name.startswith(self.event_prefix)

    def __repr__(self):
        return "Erratum(%s)" % (self.erratum_id,)


HASWELL_ERRATA = (
    Erratum(
        "HSD29",
        "MEM_UOPS_RETIRED events may overcount when Intel Hyper-Threading "
        "is enabled (Haswell desktop/server specification update).",
        "mem_uops_retired",
        TRIGGER_SMT,
    ),
    Erratum(
        "HSM30",
        "MEM_UOPS_RETIRED events may overcount when Intel Hyper-Threading "
        "is enabled (Haswell mobile specification update).",
        "mem_uops_retired",
        TRIGGER_SMT,
    ),
)


def errata_for_event(name, smt_enabled):
    """Errata affecting the (short-named) counter under a configuration."""
    event = event_by_name(name)
    active = []
    for erratum in HASWELL_ERRATA:
        if erratum.trigger == TRIGGER_SMT and not smt_enabled:
            continue
        if erratum.affects(event.full_name):
            active.append(erratum)
    return active


def check_measurement_plan(counters, smt_enabled):
    """Pre-flight check: which requested counters are unreliable?

    Returns a list of ``(counter_name, erratum)`` pairs. An empty list
    means the measurement plan is errata-clean (the paper's setup).
    """
    findings = []
    for name in counters:
        for erratum in errata_for_event(name, smt_enabled):
            findings.append((name, erratum))
    return findings


def affected_counters(smt_enabled=True):
    """All Table 2 counters any active erratum corrupts."""
    names = []
    for event in HASWELL_MMU_EVENTS:
        if errata_for_event(event.name, smt_enabled):
            names.append(event.name)
    return names


def assert_errata_clean(counters, smt_enabled):
    """Raise :class:`ConfigurationError` when the plan hits an erratum."""
    findings = check_measurement_plan(counters, smt_enabled)
    if findings:
        details = "; ".join(
            "%s hit by %s" % (name, erratum.erratum_id) for name, erratum in findings
        )
        raise ConfigurationError(
            "measurement plan is affected by counter errata (%s) — "
            "disable SMT as the paper does" % details
        )
