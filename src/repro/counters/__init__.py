"""Hardware event counter (HEC) infrastructure.

This subpackage is the measurement substrate standing in for ``perf`` on
a real Haswell machine:

* :mod:`repro.counters.events` — the paper's Table 2 event database: the
  26 Haswell MMU HECs, their perf event names and their group
  classification (Walk / Refs / Ret / STLB),
* :mod:`repro.counters.multiplexing` — a time-multiplexing simulator:
  logical counters rotate over a handful of physical counters, partial
  counts are scaled up, and the resulting estimates carry noise that
  grows with the number of active HECs (Figure 1c) and is *correlated*
  across counters sharing time slices (the effect CounterPoint's
  confidence regions exploit),
* :mod:`repro.counters.sampling` — perf-like interval sampling glue
  producing ``M x N`` sample matrices from any per-interval count
  source,
* :mod:`repro.counters.scaling` — the HEC-population database behind
  Figure 1a (named vs addressable events per microarchitecture).
"""

from repro.counters.events import (
    EventDefinition,
    GROUPS,
    GROUP_ORDER,
    HASWELL_MMU_EVENTS,
    counters_in_groups,
    cumulative_group_counters,
    event_by_name,
)
from repro.counters.multiplexing import MultiplexingSimulator
from repro.counters.sampling import SampleMatrix, collect_interval_samples

__all__ = [
    "EventDefinition",
    "GROUPS",
    "GROUP_ORDER",
    "HASWELL_MMU_EVENTS",
    "MultiplexingSimulator",
    "SampleMatrix",
    "collect_interval_samples",
    "counters_in_groups",
    "cumulative_group_counters",
    "event_by_name",
]
