"""Time-multiplexing of logical HECs onto physical counters.

Modern PMUs expose thousands of logical events but only 4–8 physical
counters; ``perf`` rotates the requested events through the physical
slots and *scales* each partial count by the inverse of the fraction of
time it was scheduled. The scaled estimate is noisy whenever the event
rate varies over the interval — and the noise grows as more logical
counters compete for the same slots (the paper's Figure 1c).

:class:`MultiplexingSimulator` reproduces this mechanism faithfully:

* each sampling interval is divided into ``slices_per_interval`` time
  slices,
* logical counters are scheduled round-robin onto ``n_physical`` slots,
* the workload's activity varies slice-to-slice via a shared *phase
  weight* sequence (plus small per-counter jitter),
* each counter's estimate is its count over its active slices, scaled by
  total-weight / active-weight — exactly perf's extrapolation.

Because every counter's estimate error is driven by the *same* phase
weights, estimates are strongly correlated — the structure
CounterPoint's correlated confidence regions exploit (Section 4).
"""

import numpy as np

from repro.errors import ConfigurationError


class MultiplexingSimulator:
    """Simulates perf-style counter multiplexing and scaling.

    Parameters
    ----------
    n_physical:
        Number of physical counter slots (Haswell has 4 programmable
        counters per core with SMT enabled, 8 with SMT off).
    slices_per_interval:
        Scheduler rotations per sampling interval.
    phase_noise:
        Relative magnitude of slice-to-slice workload variation (the
        shared component; drives the correlated noise).
    jitter:
        Relative magnitude of independent per-counter, per-slice noise.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        n_physical=4,
        slices_per_interval=24,
        phase_noise=0.35,
        jitter=0.01,
        seed=0,
    ):
        if n_physical < 1:
            raise ConfigurationError("need at least one physical counter")
        if slices_per_interval < 1:
            raise ConfigurationError("need at least one slice per interval")
        self.n_physical = n_physical
        self.slices_per_interval = slices_per_interval
        self.phase_noise = phase_noise
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)

    def schedule(self, n_counters):
        """Round-robin schedule: ``active[t][j]`` — is logical counter
        ``j`` scheduled during slice ``t``? With ``n_counters <=
        n_physical`` everything is always scheduled (no multiplexing)."""
        slices = self.slices_per_interval
        active = np.zeros((slices, n_counters), dtype=bool)
        if n_counters <= self.n_physical:
            active[:, :] = True
            return active
        cursor = 0
        for t in range(slices):
            for slot in range(self.n_physical):
                active[t, (cursor + slot) % n_counters] = True
            cursor = (cursor + self.n_physical) % n_counters
        return active

    def observe_interval(self, true_counts):
        """One sampling interval: scale-estimated counts per counter.

        ``true_counts`` is the vector of ground-truth event counts for
        the interval. Returns the vector of perf-style estimates.
        """
        true_counts = np.asarray(true_counts, dtype=float)
        n = true_counts.shape[0]
        slices = self.slices_per_interval
        active = self.schedule(n)

        # Shared per-slice activity weights (workload phase behaviour).
        weights = 1.0 + self.phase_noise * self._rng.standard_normal(slices)
        weights = np.clip(weights, 0.05, None)
        weights = weights / weights.sum()

        estimates = np.empty(n)
        for j in range(n):
            per_slice = true_counts[j] * weights
            if self.jitter > 0:
                per_slice = per_slice * (
                    1.0 + self.jitter * self._rng.standard_normal(slices)
                )
                per_slice = np.clip(per_slice, 0.0, None)
            active_mask = active[:, j]
            observed = float(per_slice[active_mask].sum())
            # perf scales by the fraction of time the event was
            # scheduled; the scheduler believes slices are equal-length,
            # so it scales by slice count — the source of the bias/noise
            # when per-slice activity actually varies.
            time_fraction = active_mask.sum() / slices
            if time_fraction == 0:
                estimates[j] = 0.0
            else:
                estimates[j] = observed / time_fraction
        return estimates

    def observe_run(self, true_interval_counts):
        """Estimate a whole run: ``M x N`` true counts → ``M x N``
        noisy estimates (one row per sampling interval)."""
        matrix = np.asarray(true_interval_counts, dtype=float)
        if matrix.ndim != 2:
            raise ConfigurationError("true_interval_counts must be M x N")
        return np.stack([self.observe_interval(row) for row in matrix])

    def noise_profile(self, true_counts, n_intervals=200):
        """Standard deviation of the estimates of a steady workload —
        the Figure 1c noise metric — per counter."""
        matrix = np.tile(np.asarray(true_counts, dtype=float), (n_intervals, 1))
        estimates = self.observe_run(matrix)
        return estimates.std(axis=0, ddof=1)
