"""The high-level CounterPoint pipeline (Figure 2).

:class:`CounterPoint` ties the layers together: model specification
(DSL source or µDD) → model cone → counter confidence regions →
feasibility testing → violation reporting. It is the API the examples
and benchmarks drive.
"""

from repro.cone import (
    ModelCone,
    identify_violations,
    test_point_feasibility,
    test_region_feasibility,
)
from repro.dsl import compile_dsl
from repro.errors import AnalysisError
from repro.mudd import MuDD


class AnalysisReport:
    """Outcome of analysing one observation against one model."""

    def __init__(self, model_name, feasible, violations, witness=None):
        self.model_name = model_name
        self.feasible = feasible
        self.violations = violations
        self.witness = witness

    def summary(self):
        if self.feasible:
            return "%s: feasible" % (self.model_name,)
        lines = ["%s: INFEASIBLE (%d violated constraints)" % (
            self.model_name,
            len(self.violations),
        )]
        for violation in self.violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)

    def __repr__(self):
        return "AnalysisReport(%r, feasible=%r)" % (self.model_name, self.feasible)


class ModelSweep:
    """Outcome of evaluating one model against many observations."""

    def __init__(self, model_name, infeasible_names, n_observations):
        self.model_name = model_name
        self.infeasible_names = list(infeasible_names)
        self.n_observations = n_observations

    @property
    def n_infeasible(self):
        return len(self.infeasible_names)

    @property
    def feasible(self):
        return not self.infeasible_names

    def __repr__(self):
        return "ModelSweep(%r: %d/%d infeasible)" % (
            self.model_name,
            self.n_infeasible,
            self.n_observations,
        )


class CounterPoint:
    """Facade over the CounterPoint analysis pipeline.

    Parameters
    ----------
    counters:
        Counter ordering for model cones built from µDDs; defaults to
        each µDD's own counters.
    backend:
        LP backend: ``"exact"`` (rational simplex; exact verdicts) or
        ``"scipy"`` (HiGHS; fast sweeps).
    confidence:
        Confidence level for regions built from sample matrices.
    """

    def __init__(self, counters=None, backend="exact", confidence=0.99):
        self.counters = counters
        self.backend = backend
        self.confidence = confidence

    # -- model ingestion ---------------------------------------------------
    def model_cone(self, model):
        """Accepts DSL source, a µDD, or a ready ModelCone."""
        if isinstance(model, ModelCone):
            return model
        if isinstance(model, MuDD):
            return ModelCone.from_mudd(model, counters=self.counters)
        if isinstance(model, str):
            return ModelCone.from_mudd(
                compile_dsl(model), counters=self.counters
            )
        raise AnalysisError("cannot interpret %r as a model" % (type(model).__name__,))

    # -- single-observation analysis ---------------------------------------
    def analyze(self, model, observation):
        """Test one observation (point or region) against one model.

        Returns an :class:`AnalysisReport`; when infeasible, the report
        carries the violated model constraints (the expensive constraint
        deduction runs only in that case, mirroring the paper).
        """
        cone = self.model_cone(model)
        if hasattr(observation, "box_constraints"):
            result = test_region_feasibility(cone, observation, backend=self.backend)
        else:
            result = test_point_feasibility(cone, observation, backend=self.backend)
        violations = []
        if not result.feasible:
            violations = identify_violations(cone, observation, backend=self.backend)
        return AnalysisReport(cone.name, result.feasible, violations, witness=result.witness)

    # -- dataset sweeps -------------------------------------------------------
    def sweep(self, model, observations, use_regions=False, correlated=True):
        """Evaluate a model against a dataset of observations.

        ``use_regions=True`` summarises each observation's samples as a
        confidence region (correlated or independent) instead of using
        exact totals.
        """
        cone = self.model_cone(model)
        infeasible = []
        for observation in observations:
            if use_regions:
                region = observation.region(
                    confidence=self.confidence, correlated=correlated
                )
                result = test_region_feasibility(cone, region, backend=self.backend)
            else:
                result = test_point_feasibility(
                    cone, observation.point(), backend=self.backend
                )
            if not result.feasible:
                infeasible.append(observation.name)
        return ModelSweep(cone.name, infeasible, len(list(observations)))

    def compare(self, models, observations, **sweep_options):
        """Sweep several models; returns ``{model_name: ModelSweep}``."""
        results = {}
        for model in models:
            sweep = self.sweep(model, observations, **sweep_options)
            results[sweep.model_name] = sweep
        return results
