"""The high-level CounterPoint pipeline (Figure 2).

:class:`CounterPoint` ties the layers together: model specification
(DSL source or µDD) → model cone → counter confidence regions →
feasibility testing → violation reporting. It is the API the examples
and benchmarks drive.

The pipeline also runs in reverse: :meth:`CounterPoint.simulate`
executes a µDD through :mod:`repro.sim` and returns observations in the
same shape the analysis methods consume, and
:meth:`CounterPoint.cross_refute` runs the full closed loop — simulate
each model, sweep every model against each synthetic dataset — whose
diagonal should be all-feasible and whose off-diagonal entries expose
which mechanism hypotheses the data can distinguish.

Analysis methods return the typed, JSON-serializable result objects of
:mod:`repro.results`. Each is a *one-op plan* executed by the
pipeline's :class:`~repro.plan.engine.PlanEngine` through its
:class:`~repro.results.session.AnalysisSession`, which memoizes each
feasibility verdict by content — so re-analyzing a grown dataset or
model family only tests the new cells (see ``session()``). Multi-op
:class:`~repro.plan.Plan` specs describe whole campaigns and run
through the same engine (``run()``): overlapping ops deduplicate
globally, dry runs price the work, and store-backed runs resume.
"""

from repro.cone import ModelCone, ModelConeCache
from repro.dsl import compile_dsl
from repro.errors import AnalysisError
from repro.mudd import MuDD

# Result types historically lived here; the canonical home is now
# repro.results, re-exported for compatibility.
from repro.results.types import AnalysisReport, ModelSweep  # noqa: F401


class CounterPoint:
    """Facade over the CounterPoint analysis pipeline.

    Parameters
    ----------
    counters:
        Counter ordering for model cones built from µDDs; defaults to
        each µDD's own counters.
    backend:
        LP backend: ``"exact"`` (rational simplex; exact verdicts) or
        ``"scipy"`` (HiGHS; fast sweeps).
    confidence:
        Confidence level for regions built from sample matrices.
    cache:
        Reuse model cones across calls, keyed by µDD content
        (:mod:`repro.cone.cache`): signature enumeration and constraint
        deduction then run once per model per pipeline. ``False`` opts
        out (every call rebuilds from scratch); an existing
        :class:`~repro.cone.cache.ModelConeCache` may also be passed to
        share one cache between pipelines.
    workers:
        Process-pool size for the sharded workloads (:meth:`sweep`,
        :meth:`cross_refute`, :meth:`simulate_dataset`); ``1`` (the
        default) keeps everything in-process, ``None`` means one worker
        per CPU. Parallel runs produce results identical to serial ones
        — same seeds, same ordering, same verdicts (see
        :mod:`repro.parallel`).
    cache_dir:
        Directory for the persistent tiers: the on-disk cone cache
        (:mod:`repro.cone.diskcache`; cones and their deduced
        constraints computed once per model *ever*) and the session's
        verdict artifact store (``<cache_dir>/artifacts`` — see
        :mod:`repro.results.store`), both shared between pool workers
        and across runs. Requires the default ``cache=True`` (to
        combine a custom cache with a disk tier, pass
        ``cache=ModelConeCache(disk=cache_dir)`` instead).
    sim_backend:
        Simulation engine for :meth:`simulate` /
        :meth:`simulate_dataset` (and plan ops that simulate):
        ``"interpreter"`` (the bit-for-bit reference), ``"vector"``
        (numpy-lowered skeleton walk), ``"codegen"`` (specialised
        generated source, cached by µDD fingerprint), or ``"auto"``
        (the default: codegen with vector fallback). Every choice
        produces identical observations; only wall-clock differs. A
        per-call ``backend=`` option still wins.
    trace:
        Observability (:mod:`repro.obs`). ``True`` builds a fresh
        enabled :class:`~repro.obs.Tracer`; an existing tracer may be
        passed to share one across pipelines. Every analysis run on
        this pipeline then records spans (LP solves, cone deduction,
        verdicts, simulation, scheduler dispatch) and cache events into
        ``pipeline.tracer`` — including spans recorded inside pool
        workers, which ship back with their results. ``None`` (the
        default) records nothing and costs nearly nothing.

    The pipeline owns a lazily-built process pool; call :meth:`close`
    (or use the pipeline as a context manager) to shut workers down
    deterministically instead of waiting for garbage collection.
    """

    def __init__(self, counters=None, backend="exact", confidence=0.99,
                 cache=True, workers=1, cache_dir=None, sim_backend="auto",
                 trace=None):
        from repro.sim.engines import resolve_backend

        self.counters = counters
        self.backend = backend
        self.confidence = confidence
        self.sim_backend = resolve_backend(sim_backend)
        self.cache_dir = cache_dir
        if cache_dir is not None and cache is not True:
            # cache=False has nothing to attach a disk tier to, and an
            # explicit cache instance would silently shadow cache_dir.
            raise AnalysisError(
                "cache_dir requires the default cache=True (got cache=%r); "
                "pass ModelConeCache(disk=cache_dir) explicitly to combine "
                "a custom cache with a disk tier" % (cache,)
            )
        if cache_dir is not None and cache is True:
            from repro.cone.cache import shared_cache

            self.cone_cache = shared_cache(cache_dir)
        elif cache is True:
            self.cone_cache = ModelConeCache()
        elif cache is False or cache is None:
            self.cone_cache = None
        else:
            self.cone_cache = cache
        if workers is not None and workers < 1:
            raise AnalysisError("workers must be at least 1, got %r" % (workers,))
        self.workers = workers
        if trace is True:
            from repro.obs import Tracer

            self.tracer = Tracer()
        elif trace is False:
            self.tracer = None
        else:
            self.tracer = trace
        self._runner = None
        self._session = None
        self._plan_engine = None

    def runner(self):
        """The pipeline's :class:`~repro.parallel.ParallelRunner`
        (built lazily; callers may share it for custom sharding)."""
        if self._runner is None:
            from repro.parallel import ParallelRunner

            self._runner = ParallelRunner(
                workers=self.workers, cache_dir=self.cache_dir
            )
        return self._runner

    def session(self):
        """The pipeline's :class:`~repro.results.session.AnalysisSession`.

        Built lazily and shared by every analysis call on this
        pipeline, so verdicts memoize across calls. With ``cache_dir``
        the session persists verdicts to
        ``<cache_dir>/artifacts`` — a later process re-testing the same
        cells does no LP work at all.
        """
        if self._session is None:
            import os

            from repro.results.session import AnalysisSession

            store = None
            if self.cache_dir is not None:
                store = os.path.join(self.cache_dir, "artifacts")
            self._session = AnalysisSession(pipeline=self, store=store)
        return self._session

    def plan_engine(self):
        """The pipeline's :class:`~repro.plan.engine.PlanEngine`.

        Every analysis method on this facade is a one-op plan run
        through this engine; hand it a multi-op
        :class:`~repro.plan.Plan` to schedule a whole experiment —
        overlapping ops deduplicate globally through the session's
        content-addressed memo, and ``dry_run`` prices a campaign
        without solving.
        """
        if self._plan_engine is None:
            from repro.plan import PlanEngine

            self._plan_engine = PlanEngine(self)
        return self._plan_engine

    def run(self, plan, scheduler=None, collect_errors=False):
        """Execute a :class:`~repro.plan.Plan` against this pipeline;
        returns a :class:`~repro.plan.PlanResult` keyed by op id.

        With ``collect_errors=True`` a failing op is recorded on
        ``result.errors`` (op id, cell keys, exception repr) instead of
        aborting the whole plan — the engine's partial-failure
        contract."""
        return self.plan_engine().run(
            plan, scheduler=scheduler, collect_errors=collect_errors
        )

    def _one_op(self, build):
        """Run a single facade call as a one-op plan (the thin-facade
        contract: identical results, one engine)."""
        from repro.plan import Plan

        plan = Plan()
        op_id = build(plan)
        return self.plan_engine().run(plan)[op_id]

    def close(self):
        """Shut down the lazily-built process pool (idempotent).

        The session memo survives; only pool workers are reaped. A
        later sharded call transparently builds a fresh pool.
        """
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def _parallel(self):
        """Whether sharded workloads should route to the pool."""
        return self.workers is None or self.workers > 1

    # -- model ingestion ---------------------------------------------------
    def model_cone(self, model, counters=None):
        """Accepts DSL source, a µDD, or a ready ModelCone.

        ``counters`` overrides the pipeline's counter ordering for this
        call (used by :meth:`cross_refute`, where the ordering comes
        from the simulated dataset). Cones built from µDDs or DSL text
        are served from the content-addressed cache when enabled.
        """
        if counters is None:
            counters = self.counters
        if isinstance(model, ModelCone):
            return model
        if isinstance(model, str):
            model = compile_dsl(model)
        if isinstance(model, MuDD):
            if self.cone_cache is not None:
                return self.cone_cache.get(model, counters=counters)
            return ModelCone.from_mudd(model, counters=counters)
        raise AnalysisError("cannot interpret %r as a model" % (type(model).__name__,))

    # -- single-observation analysis ---------------------------------------
    def analyze(self, model, observation, explain=False):
        """Test one observation (point or region) against one model.

        Returns an :class:`~repro.results.AnalysisReport`; when
        infeasible, the report carries the violated model constraints
        (the expensive constraint deduction runs only in that case,
        mirroring the paper) and — with ``explain`` — a Farkas
        certificate found at feasibility-test cost. Reports are
        memoized by the pipeline's session; the call itself is a one-op
        plan over :meth:`plan_engine`.
        """
        return self._one_op(
            lambda plan: plan.analyze(model, observation, explain=explain)
        )

    # -- dataset sweeps -------------------------------------------------------
    def sweep(self, model, observations, use_regions=False, correlated=True,
              explain=False):
        """Evaluate a model against a dataset of observations.

        Parameters
        ----------
        model:
            Anything :meth:`model_cone` accepts (DSL source, µDD, or a
            ready :class:`~repro.cone.ModelCone`).
        observations:
            Objects with ``name`` and ``point()`` — typically
            :class:`repro.models.dataset.Observation`.
        use_regions:
            Summarise each observation's samples as a confidence region
            (correlated or independent) instead of using exact totals.
        correlated:
            With ``use_regions``, whether regions model cross-counter
            covariance (the paper's Section 4 estimator) or the
            independent-counter baseline.
        explain:
            Guarantee refutation evidence (one violated model
            constraint) for every infeasible observation, via the
            Farkas certificate LP when the free facet-screen
            certificate is unavailable.

        Returns a :class:`~repro.results.ModelSweep` naming the
        infeasible observations in dataset order, with per-observation
        refutation evidence in ``why``. Verdicts are memoized by
        content: re-sweeping a grown dataset only tests the new
        observations. With ``workers > 1`` the pending cells are
        sharded across the process pool (identical results). The call
        is a one-op plan over :meth:`plan_engine`.
        """
        observations = list(observations)
        return self._one_op(
            lambda plan: plan.sweep(
                model,
                observations,
                use_regions=use_regions,
                correlated=correlated,
                explain=explain,
            )
        )

    def compare(self, models, observations, **sweep_options):
        """Sweep several candidate models over one dataset.

        The multi-model view of :meth:`sweep` — the workflow behind the
        paper's Table 3: rank a model family by how many observations
        each member fails to explain. Keyword options pass through to
        :meth:`sweep`. Returns a
        :class:`~repro.results.CompareResult` mapping model names to
        sweeps in model order; each sweep shards across the pool when
        ``workers > 1``, and only cells not already memoized are
        tested. The call is a one-op plan over :meth:`plan_engine`.
        """
        models = list(models)
        observations = list(observations)
        return self._one_op(
            lambda plan: plan.compare(models, observations, **sweep_options)
        )

    # -- simulation (the closed loop) -----------------------------------------
    def simulate(self, model, n_uops=20000, **options):
        """Execute a model and return a synthetic observation.

        ``model`` is anything :meth:`model_cone` accepts as a µDD source
        (µDD, DSL text) or a bundled-model name. Options pass through to
        :func:`repro.sim.simulate_observation` (``weights``, ``seed``,
        ``noisy``, ``n_intervals``, ...). The pipeline's
        ``sim_backend`` picks the execution engine unless the call
        passes its own ``backend=``. The result is an
        :class:`~repro.models.dataset.Observation`: feed ``.point()`` to
        :meth:`analyze` or the object itself to :meth:`sweep`.
        """
        from repro.obs.trace import activate, tracer_for
        from repro.sim import simulate_observation

        options.setdefault("backend", self.sim_backend)
        with activate(tracer_for(self)):
            return simulate_observation(model, n_uops=n_uops, **options)

    def simulate_dataset(self, model, n_observations, n_uops=20000, **options):
        """Independent simulated observations of one model, ready for
        :meth:`sweep` / :meth:`compare`.

        Run ``i`` draws from seed ``seed + i``, so datasets are
        reproducible; with ``workers > 1`` the runs are sharded across
        the process pool under the same per-run seeds (identical
        observations, faster wall-clock). Options pass through to
        :func:`repro.sim.simulate_observation`; the pipeline's
        ``sim_backend`` applies unless overridden with ``backend=``.
        """
        from repro.obs.trace import activate, tracer_for
        from repro.sim import simulate_dataset

        options.setdefault("backend", self.sim_backend)
        with activate(tracer_for(self)):
            if self._parallel() and n_observations > 1:
                from repro.parallel import parallel_simulate_dataset

                return parallel_simulate_dataset(
                    self.runner(), model, n_observations, n_uops=n_uops,
                    **options
                )
            return simulate_dataset(
                model, n_observations, n_uops=n_uops, **options
            )

    def cross_refute(
        self, models, n_observations=3, n_uops=20000, weights=None, seed=0,
        explain=False,
    ):
        """The closed-loop matrix: simulate each model, sweep all models.

        Returns a :class:`~repro.results.RefutationMatrix` (a mapping
        ``{observed_name: {candidate_name: ModelSweep}}``). Every
        diagonal entry is feasible by construction (counter
        conservation: simulated totals lie in the generating model's
        cone); an off-diagonal infeasible entry means the candidate's
        mechanisms cannot explain the observed model's behaviour.

        Row ``r`` simulates from seed ``seed + 1000 * r``. Every cell
        is memoized in the pipeline's session, so re-refuting a grown
        model family re-tests only the new row and column. With
        ``workers > 1`` the row simulations and the pending verdict
        cells shard across the process pool (identical results), and
        ``cache_dir`` persists the memo across runs and processes. The
        call is a one-op plan over :meth:`plan_engine` — the matrix,
        a sweep, and a compare touching the same (cone, observation)
        cell in one plan compute it exactly once.
        """
        models = list(models)
        return self._one_op(
            lambda plan: plan.cross_refute(
                models,
                n_observations=n_observations,
                n_uops=n_uops,
                weights=weights,
                seed=seed,
                explain=explain,
            )
        )
