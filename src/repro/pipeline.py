"""The high-level CounterPoint pipeline (Figure 2).

:class:`CounterPoint` ties the layers together: model specification
(DSL source or µDD) → model cone → counter confidence regions →
feasibility testing → violation reporting. It is the API the examples
and benchmarks drive.

The pipeline also runs in reverse: :meth:`CounterPoint.simulate`
executes a µDD through :mod:`repro.sim` and returns observations in the
same shape the analysis methods consume, and
:meth:`CounterPoint.cross_refute` runs the full closed loop — simulate
each model, sweep every model against each synthetic dataset — whose
diagonal should be all-feasible and whose off-diagonal entries expose
which mechanism hypotheses the data can distinguish.
"""

from repro.cone import (
    ModelCone,
    ModelConeCache,
    identify_violations,
    test_points_feasibility,
    test_region_feasibility,
)
from repro.dsl import compile_dsl
from repro.errors import AnalysisError
from repro.mudd import MuDD


class AnalysisReport:
    """Outcome of analysing one observation against one model."""

    def __init__(self, model_name, feasible, violations, witness=None):
        self.model_name = model_name
        self.feasible = feasible
        self.violations = violations
        self.witness = witness

    def summary(self):
        """One-paragraph human rendering: the verdict, and for an
        infeasible observation every violated model constraint."""
        if self.feasible:
            return "%s: feasible" % (self.model_name,)
        lines = ["%s: INFEASIBLE (%d violated constraints)" % (
            self.model_name,
            len(self.violations),
        )]
        for violation in self.violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)

    def __repr__(self):
        return "AnalysisReport(%r, feasible=%r)" % (self.model_name, self.feasible)


class ModelSweep:
    """Outcome of evaluating one model against many observations."""

    def __init__(self, model_name, infeasible_names, n_observations):
        self.model_name = model_name
        self.infeasible_names = list(infeasible_names)
        self.n_observations = n_observations

    @property
    def n_infeasible(self):
        """How many observations the model failed to explain."""
        return len(self.infeasible_names)

    @property
    def feasible(self):
        """Whether the model explains *every* observation — one
        infeasible observation refutes a model (the paper's bar)."""
        return not self.infeasible_names

    def __repr__(self):
        return "ModelSweep(%r: %d/%d infeasible)" % (
            self.model_name,
            self.n_infeasible,
            self.n_observations,
        )


class CounterPoint:
    """Facade over the CounterPoint analysis pipeline.

    Parameters
    ----------
    counters:
        Counter ordering for model cones built from µDDs; defaults to
        each µDD's own counters.
    backend:
        LP backend: ``"exact"`` (rational simplex; exact verdicts) or
        ``"scipy"`` (HiGHS; fast sweeps).
    confidence:
        Confidence level for regions built from sample matrices.
    cache:
        Reuse model cones across calls, keyed by µDD content
        (:mod:`repro.cone.cache`): signature enumeration and constraint
        deduction then run once per model per pipeline. ``False`` opts
        out (every call rebuilds from scratch); an existing
        :class:`~repro.cone.cache.ModelConeCache` may also be passed to
        share one cache between pipelines.
    workers:
        Process-pool size for the sharded workloads (:meth:`sweep`,
        :meth:`cross_refute`, :meth:`simulate_dataset`); ``1`` (the
        default) keeps everything in-process, ``None`` means one worker
        per CPU. Parallel runs produce results identical to serial ones
        — same seeds, same ordering, same verdicts (see
        :mod:`repro.parallel`).
    cache_dir:
        Directory for the persistent on-disk cone-cache tier
        (:mod:`repro.cone.diskcache`). Cones — including their deduced
        constraints — then survive the process and are shared between
        pool workers and across runs, so each model is deduced once
        *ever*. Requires the default ``cache=True`` (to combine a
        custom cache with a disk tier, pass
        ``cache=ModelConeCache(disk=cache_dir)`` instead).
    """

    def __init__(self, counters=None, backend="exact", confidence=0.99,
                 cache=True, workers=1, cache_dir=None):
        self.counters = counters
        self.backend = backend
        self.confidence = confidence
        self.cache_dir = cache_dir
        if cache_dir is not None and cache is not True:
            # cache=False has nothing to attach a disk tier to, and an
            # explicit cache instance would silently shadow cache_dir.
            raise AnalysisError(
                "cache_dir requires the default cache=True (got cache=%r); "
                "pass ModelConeCache(disk=cache_dir) explicitly to combine "
                "a custom cache with a disk tier" % (cache,)
            )
        if cache_dir is not None and cache is True:
            from repro.cone.cache import shared_cache

            self.cone_cache = shared_cache(cache_dir)
        elif cache is True:
            self.cone_cache = ModelConeCache()
        elif cache is False or cache is None:
            self.cone_cache = None
        else:
            self.cone_cache = cache
        if workers is not None and workers < 1:
            raise AnalysisError("workers must be at least 1, got %r" % (workers,))
        self.workers = workers
        self._runner = None

    def runner(self):
        """The pipeline's :class:`~repro.parallel.ParallelRunner`
        (built lazily; callers may share it for custom sharding)."""
        if self._runner is None:
            from repro.parallel import ParallelRunner

            self._runner = ParallelRunner(
                workers=self.workers, cache_dir=self.cache_dir
            )
        return self._runner

    def _parallel(self):
        """Whether sharded workloads should route to the pool."""
        return self.workers is None or self.workers > 1

    # -- model ingestion ---------------------------------------------------
    def model_cone(self, model, counters=None):
        """Accepts DSL source, a µDD, or a ready ModelCone.

        ``counters`` overrides the pipeline's counter ordering for this
        call (used by :meth:`cross_refute`, where the ordering comes
        from the simulated dataset). Cones built from µDDs or DSL text
        are served from the content-addressed cache when enabled.
        """
        if counters is None:
            counters = self.counters
        if isinstance(model, ModelCone):
            return model
        if isinstance(model, str):
            model = compile_dsl(model)
        if isinstance(model, MuDD):
            if self.cone_cache is not None:
                return self.cone_cache.get(model, counters=counters)
            return ModelCone.from_mudd(model, counters=counters)
        raise AnalysisError("cannot interpret %r as a model" % (type(model).__name__,))

    # -- single-observation analysis ---------------------------------------
    def analyze(self, model, observation):
        """Test one observation (point or region) against one model.

        Returns an :class:`AnalysisReport`; when infeasible, the report
        carries the violated model constraints (the expensive constraint
        deduction runs only in that case, mirroring the paper).
        """
        cone = self.model_cone(model)
        if hasattr(observation, "box_constraints"):
            result = test_region_feasibility(cone, observation, backend=self.backend)
        else:
            result = test_points_feasibility(
                cone, [observation], backend=self.backend
            )[0]
        violations = []
        if not result.feasible:
            violations = identify_violations(cone, observation, backend=self.backend)
        return AnalysisReport(cone.name, result.feasible, violations, witness=result.witness)

    # -- dataset sweeps -------------------------------------------------------
    def sweep(self, model, observations, use_regions=False, correlated=True):
        """Evaluate a model against a dataset of observations.

        Parameters
        ----------
        model:
            Anything :meth:`model_cone` accepts (DSL source, µDD, or a
            ready :class:`~repro.cone.ModelCone`).
        observations:
            Objects with ``name`` and ``point()`` — typically
            :class:`repro.models.dataset.Observation`.
        use_regions:
            Summarise each observation's samples as a confidence region
            (correlated or independent) instead of using exact totals.
        correlated:
            With ``use_regions``, whether regions model cross-counter
            covariance (the paper's Section 4 estimator) or the
            independent-counter baseline.

        Returns a :class:`ModelSweep` naming the infeasible
        observations in dataset order. With ``workers > 1`` the dataset
        is sharded across the process pool (identical results).
        """
        cone = self.model_cone(model)
        observations = list(observations)
        if self._parallel() and len(observations) > 1:
            from repro.parallel import parallel_sweep

            return parallel_sweep(
                self.runner(),
                cone,
                observations,
                backend=self.backend,
                confidence=self.confidence,
                use_regions=use_regions,
                correlated=correlated,
            )
        infeasible = []
        if use_regions:
            for observation in observations:
                region = observation.region(
                    confidence=self.confidence, correlated=correlated
                )
                result = test_region_feasibility(cone, region, backend=self.backend)
                if not result.feasible:
                    infeasible.append(observation.name)
        else:
            results = test_points_feasibility(
                cone,
                [observation.point() for observation in observations],
                backend=self.backend,
            )
            infeasible = [
                observation.name
                for observation, result in zip(observations, results)
                if not result.feasible
            ]
        return ModelSweep(cone.name, infeasible, len(observations))

    def compare(self, models, observations, **sweep_options):
        """Sweep several candidate models over one dataset.

        The multi-model view of :meth:`sweep` — the workflow behind the
        paper's Table 3: rank a model family by how many observations
        each member fails to explain. Keyword options pass through to
        :meth:`sweep`. Returns ``{model_name: ModelSweep}`` in model
        order; each sweep shards across the pool when ``workers > 1``.
        """
        results = {}
        for model in models:
            sweep = self.sweep(model, observations, **sweep_options)
            results[sweep.model_name] = sweep
        return results

    # -- simulation (the closed loop) -----------------------------------------
    def simulate(self, model, n_uops=20000, **options):
        """Execute a model and return a synthetic observation.

        ``model`` is anything :meth:`model_cone` accepts as a µDD source
        (µDD, DSL text) or a bundled-model name. Options pass through to
        :func:`repro.sim.simulate_observation` (``weights``, ``seed``,
        ``noisy``, ``n_intervals``, ...). The result is an
        :class:`~repro.models.dataset.Observation`: feed ``.point()`` to
        :meth:`analyze` or the object itself to :meth:`sweep`.
        """
        from repro.sim import simulate_observation

        return simulate_observation(model, n_uops=n_uops, **options)

    def simulate_dataset(self, model, n_observations, n_uops=20000, **options):
        """Independent simulated observations of one model, ready for
        :meth:`sweep` / :meth:`compare`.

        Run ``i`` draws from seed ``seed + i``, so datasets are
        reproducible; with ``workers > 1`` the runs are sharded across
        the process pool under the same per-run seeds (identical
        observations, faster wall-clock). Options pass through to
        :func:`repro.sim.simulate_observation`.
        """
        from repro.sim import simulate_dataset

        if self._parallel() and n_observations > 1:
            from repro.parallel import parallel_simulate_dataset

            return parallel_simulate_dataset(
                self.runner(), model, n_observations, n_uops=n_uops, **options
            )
        return simulate_dataset(model, n_observations, n_uops=n_uops, **options)

    def cross_refute(
        self, models, n_observations=3, n_uops=20000, weights=None, seed=0
    ):
        """The closed-loop matrix: simulate each model, sweep all models.

        Returns ``{observed_name: {candidate_name: ModelSweep}}``. Every
        diagonal entry is feasible by construction (counter
        conservation: simulated totals lie in the generating model's
        cone); an off-diagonal infeasible entry means the candidate's
        mechanisms cannot explain the observed model's behaviour.

        Row ``r`` simulates from seed ``seed + 1000 * r``. With
        ``workers > 1`` the matrix shards by row across the process
        pool — rows are independent — and with ``cache_dir`` set the
        workers share candidate cones through the on-disk cache instead
        of each deducing its own.
        """
        from repro.sim import as_mudd, simulate_dataset

        mudds = [as_mudd(model) for model in models]
        if self._parallel() and len(mudds) > 1:
            from repro.parallel import parallel_cross_refute

            return parallel_cross_refute(
                self.runner(),
                mudds,
                n_observations=n_observations,
                n_uops=n_uops,
                weights=weights,
                seed=seed,
                backend=self.backend,
                confidence=self.confidence,
            )
        matrix = {}
        for row, observed in enumerate(mudds):
            observations = simulate_dataset(
                observed,
                n_observations,
                n_uops=n_uops,
                weights=weights,
                seed=seed + 1000 * row,
            )
            counters = observations[0].samples.counters
            sweeps = {}
            for candidate in mudds:
                cone = self.model_cone(candidate, counters=counters)
                sweeps[candidate.name] = self.sweep(cone, observations)
            matrix[observed.name] = sweeps
        return matrix
