"""``repro.parallel`` — process-pool orchestration for sweeps.

The analysis workloads worth running at scale are matrices: every model
against every observation set (``cross_refute``), every observation
against one cone (``sweep``), every feature set against a dataset
(``explore.search``), every seed against a simulator (``repro.sim``
batches). The cells are independent, so they shard across a process
pool — this package supplies the shared machinery:

* :class:`ParallelRunner` — a thin, deterministic wrapper over
  :class:`concurrent.futures.ProcessPoolExecutor` with chunked
  dispatch, pre-flight picklability checks, and a graceful serial
  fallback (``workers=1``, a single cell, or unpicklable work always
  runs in-process with identical results).
* :mod:`repro.parallel.tasks` — module-level worker functions (the
  pool pickles them by name) plus the high-level entry points
  :func:`parallel_sweep`, :func:`parallel_cross_refute`,
  :func:`parallel_simulate_dataset`, and
  :func:`parallel_closed_loop`.

Workers coordinate through the persistent on-disk cone cache
(:mod:`repro.cone.diskcache`): give every worker the same ``cache_dir``
and a model's µpath enumeration/constraint deduction runs in exactly
one process, ever — the others load the pickled cone.

Determinism: every parallel entry point produces *identical* results to
its serial counterpart. Simulation seeds are split per cell exactly as
the serial loops split them (``seed + run``, ``seed + 1000 * row``), so
``workers=N`` changes wall-clock time, never verdicts.

Quick start::

    from repro import CounterPoint

    counterpoint = CounterPoint(
        backend="scipy", workers=4, cache_dir=".repro-cache"
    )
    matrix = counterpoint.cross_refute(
        ["merging_load_side", "no_merging_load_side", "pde_initial"]
    )
"""

from repro.parallel.runner import ParallelRunner, split_seeds
from repro.parallel.tasks import (
    parallel_closed_loop,
    parallel_cross_refute,
    parallel_simulate_dataset,
    parallel_sweep,
)

__all__ = [
    "ParallelRunner",
    "parallel_closed_loop",
    "parallel_cross_refute",
    "parallel_simulate_dataset",
    "parallel_sweep",
    "split_seeds",
]
