"""The process-pool core: chunked, deterministic, fallback-safe maps.

:class:`ParallelRunner` deliberately exposes only order-preserving map
operations — ``map_cells`` (one function over many work items) and
``map_models`` (a convenience alias with the same contract) — because
every CounterPoint workload that shards is a matrix of independent
cells. Keeping the surface to "a map that cannot change results" is
what makes ``workers=N`` safe to default on everywhere: the serial path
and the pooled path are the same function applied to the same cells in
the same order.

The pool itself is persistent: the first pooled ``map_cells`` spawns
the workers and later calls reuse them, so a pipeline that sweeps
twenty models pays worker startup once, not twenty times. ``close()``
(or garbage collection) shuts the pool down.

Fallback rules (all produce results identical to the pool path):

* ``workers=1`` or a single cell: run in-process, no pool spawned.
* the function or the first cell fails a pre-flight pickle check
  (closures, lambdas, live device handles), or a later cell turns out
  unpicklable at dispatch: run in-process and count it in
  ``fallbacks`` rather than raising mid-flight. (Cells at our call
  sites are homogeneous payload dicts, so checking one is cheap and
  representative — the dispatch-time catch covers the rest.)
* the pool itself dies (:class:`~concurrent.futures.process.
  BrokenProcessPool`, e.g. a worker OOM-killed): discard it, retry
  in-process; the next call builds a fresh pool.
"""

import logging
import os
import pickle

from repro.errors import AnalysisError
from repro.obs.trace import get_tracer

try:  # pragma: no cover - import shape varies across Python versions
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError

logger = logging.getLogger("repro.parallel")


def split_seeds(seed, n, stride=1):
    """The serial loops' seed schedule, reified.

    ``simulate_dataset`` gives run ``i`` seed ``seed + i``;
    ``cross_refute`` gives row ``r`` seed ``seed + 1000 * r``. Cells
    dispatched to workers carry these exact per-cell seeds, so a pooled
    run draws the same random streams as the serial one.
    """
    if n < 0:
        raise AnalysisError("cannot split a negative number of seeds")
    return [seed + stride * index for index in range(n)]


def _picklable(obj):
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class ParallelRunner:
    """Shard independent work cells across a persistent process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` means ``os.cpu_count()``. ``1`` disables
        the pool entirely (pure serial execution, nothing pickled).
    cache_dir:
        Persistent cone-cache directory handed to workers that build
        model cones, so deduction work is shared instead of repeated
        per worker (see :mod:`repro.cone.diskcache`).
    chunk_size:
        Cells per dispatched chunk; ``None`` picks ``ceil(n_cells /
        (4 * workers))`` — large enough to amortise IPC, small enough
        to load-balance uneven cells.
    """

    def __init__(self, workers=None, cache_dir=None, chunk_size=None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise AnalysisError("workers must be at least 1, got %r" % (workers,))
        if chunk_size is not None and chunk_size < 1:
            raise AnalysisError("chunk_size must be at least 1")
        self.workers = int(workers)
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.chunk_size = chunk_size
        self.fallbacks = 0
        self.dispatches = 0
        #: ``(reason, task_type)`` of the most recent serial fallback,
        #: or ``None`` — the structured detail behind ``fallbacks``.
        self.last_fallback = None
        self._executor = None

    @property
    def serial(self):
        """Whether this runner always executes in-process."""
        return self.workers == 1

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self):
        """Shut the worker pool down (idempotent; a later pooled call
        transparently builds a fresh pool)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _note_fallback(self, reason, fn, n_cells):
        """Record a degrade-to-serial decision loudly: a counter, a
        structured warning on the ``repro.parallel`` logger, and a
        trace event — so a ``workers=N`` run that silently went serial
        is visible in logs and in any trace file."""
        self.fallbacks += 1
        task_type = getattr(fn, "__qualname__", repr(fn))
        self.last_fallback = (reason, task_type)
        logger.warning(
            "parallel dispatch of %s fell back to serial (%s); "
            "%d cells ran in-process", task_type, reason, n_cells,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "parallel.fallback", reason=reason, task=task_type,
                cells=n_cells,
            )
            tracer.metrics.counter("parallel.fallbacks").inc()

    def _chunk_size_for(self, n_cells, chunk_size):
        if chunk_size is not None:
            return chunk_size
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n_cells // (4 * self.workers)))

    def map_cells(self, fn, cells, chunk_size=None):
        """Apply ``fn`` to every cell, preserving order.

        ``fn`` must be a module-level callable for the pooled path (the
        pool pickles it by qualified name); anything else triggers the
        serial fallback, never an error. Exceptions raised by ``fn``
        propagate to the caller in both paths.
        """
        cells = list(cells)
        if self.workers == 1 or len(cells) <= 1:
            return [fn(cell) for cell in cells]
        if not _picklable(fn) or not _picklable(cells[0]):
            self._note_fallback("unpicklable task", fn, len(cells))
            return [fn(cell) for cell in cells]
        chunk = self._chunk_size_for(len(cells), chunk_size)
        self.dispatches += 1
        try:
            return list(self._pool().map(fn, cells, chunksize=chunk))
        except (pickle.PicklingError, TypeError, AttributeError):
            # A later, heterogeneous cell slipped past the pre-flight
            # check (C-extension handles raise TypeError, closures
            # AttributeError — not just PicklingError). Cells are pure
            # functions of their payloads (cache writes are idempotent),
            # so rerunning serially is safe; a genuine TypeError from
            # ``fn`` itself re-raises identically from the serial rerun.
            self._note_fallback("cell failed to pickle", fn, len(cells))
            return [fn(cell) for cell in cells]
        except BrokenProcessPool:
            # A worker died (OOM, signal). The cells are pure functions
            # of their payloads, so re-running serially is safe; drop
            # the dead pool so the next call starts a fresh one.
            self.close()
            self._note_fallback("broken process pool", fn, len(cells))
            return [fn(cell) for cell in cells]

    def map_models(self, fn, models, chunk_size=None):
        """Alias of :meth:`map_cells` for model-shaped work — reads
        better at call sites that shard a model library."""
        return self.map_cells(fn, models, chunk_size=chunk_size)

    def __repr__(self):
        return "ParallelRunner(workers=%d%s, %d dispatches, %d fallbacks)" % (
            self.workers,
            ", cache_dir=%r" % (self.cache_dir,) if self.cache_dir else "",
            self.dispatches,
            self.fallbacks,
        )


__all__ = ["ParallelRunner", "split_seeds"]
