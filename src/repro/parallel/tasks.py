"""Worker functions and the high-level sharded entry points.

Every worker here is a module-level function of one picklable payload
dict — the shape :class:`repro.parallel.runner.ParallelRunner` requires
for the pooled path. Payloads carry *models and parameters*, not live
solver state: each worker rebuilds its own :class:`CounterPoint` (with
``workers=1`` — workers never nest pools) and, when a ``cache_dir`` is
present, coordinates through the shared on-disk cone cache so expensive
deduction happens in exactly one process.

The high-level functions (:func:`parallel_sweep`,
:func:`parallel_cross_refute`, :func:`parallel_simulate_dataset`,
:func:`parallel_closed_loop`) are what :class:`repro.pipeline.
CounterPoint` and :func:`repro.sim.scenarios.closed_loop` route to when
``workers > 1``; each is bit-for-bit equivalent to its serial
counterpart (same seeds, same ordering, same verdicts).
"""

from repro.parallel.runner import split_seeds


def _chunks(items, n_chunks):
    """Split ``items`` into at most ``n_chunks`` contiguous runs,
    preserving order (sizes differ by at most one)."""
    items = list(items)
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    out, start = [], 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


# -- sweep -----------------------------------------------------------------

def run_sweep_chunk(payload):
    """Worker: sweep one observation chunk against a shipped cone.

    Returns the chunk's infeasible observation names in dataset order,
    so concatenating chunk results reproduces the serial name list.
    """
    from repro.pipeline import CounterPoint

    counterpoint = CounterPoint(
        backend=payload["backend"],
        confidence=payload["confidence"],
        cache=False,
    )
    sweep = counterpoint.sweep(
        payload["cone"],
        payload["observations"],
        use_regions=payload["use_regions"],
        correlated=payload["correlated"],
    )
    return sweep.infeasible_names


def parallel_sweep(runner, cone, observations, backend="exact",
                   confidence=0.99, use_regions=False, correlated=True):
    """Shard one model's dataset sweep across the pool.

    The cone is built once by the caller and shipped to every worker
    (cones pickle without their process-local solver state); each
    worker runs the normal batched feasibility path on a contiguous
    observation chunk. One chunk per worker keeps the exact facet
    screen's batching intact.
    """
    from repro.pipeline import ModelSweep

    observations = list(observations)
    cells = [
        {
            "cone": cone,
            "observations": chunk,
            "backend": backend,
            "confidence": confidence,
            "use_regions": use_regions,
            "correlated": correlated,
        }
        for chunk in _chunks(observations, runner.workers)
    ]
    infeasible = []
    for names in runner.map_cells(run_sweep_chunk, cells, chunk_size=1):
        infeasible.extend(names)
    return ModelSweep(cone.name, infeasible, len(observations))


# -- cross_refute ----------------------------------------------------------

def run_cross_refute_row(payload):
    """Worker: one (row, candidate-subset) cell of the closed-loop
    matrix — simulate the row's observed model, sweep the cell's
    candidates against the dataset.

    The row seed is the serial schedule's ``seed + 1000 * row``, so the
    simulated observations are identical to a serial run's regardless
    of how the row's candidates were split across cells (every cell of
    a row re-simulates the same dataset — simulation is cheap next to
    the sweeps the split parallelises).
    """
    from repro.pipeline import CounterPoint
    from repro.sim import simulate_dataset

    observed = payload["observed"]
    observations = simulate_dataset(
        observed,
        payload["n_observations"],
        n_uops=payload["n_uops"],
        weights=payload["weights"],
        seed=payload["row_seed"],
    )
    counters = observations[0].samples.counters
    counterpoint = CounterPoint(
        backend=payload["backend"],
        confidence=payload["confidence"],
        cache_dir=payload["cache_dir"],
    )
    sweeps = {}
    for candidate in payload["candidates"]:
        cone = counterpoint.model_cone(candidate, counters=counters)
        sweeps[candidate.name] = counterpoint.sweep(cone, observations)
    return observed.name, sweeps


def parallel_cross_refute(runner, mudds, n_observations=3, n_uops=20000,
                          weights=None, seed=0, backend="exact",
                          confidence=0.99):
    """Shard the cross-refutation matrix across the pool.

    The base unit is a row (observed model): rows are fully
    independent, and candidate cones are shared between rows through
    the runner's ``cache_dir`` when set. When the matrix has fewer
    rows than would keep the pool busy (``rows < 2 * workers``), each
    row's candidate list is additionally split so every worker gets
    work — the merged result is identical either way.
    """
    mudds = list(mudds)
    row_seeds = split_seeds(seed, len(mudds), stride=1000)
    # ceil(2*workers / rows) candidate chunks per row keeps ~2 cells
    # per worker in flight for load balancing on uneven rows.
    n_splits = max(1, -(-2 * runner.workers // max(1, len(mudds))))
    candidate_chunks = _chunks(mudds, n_splits)
    cells = [
        {
            "observed": observed,
            "candidates": chunk,
            "n_observations": n_observations,
            "n_uops": n_uops,
            "weights": weights,
            "row_seed": row_seed,
            "backend": backend,
            "confidence": confidence,
            "cache_dir": runner.cache_dir,
        }
        for observed, row_seed in zip(mudds, row_seeds)
        for chunk in candidate_chunks
    ]
    matrix = {}
    for name, sweeps in runner.map_cells(run_cross_refute_row, cells, chunk_size=1):
        matrix.setdefault(name, {}).update(sweeps)
    return matrix


# -- simulated datasets ----------------------------------------------------

def run_simulate_chunk(payload):
    """Worker: simulate a contiguous run-index chunk of one dataset,
    reproducing the serial per-run seeds and observation names."""
    from repro.sim.scenarios import simulate_observation

    mudd = payload["mudd"]
    return [
        simulate_observation(
            mudd,
            n_uops=payload["n_uops"],
            weights=payload["weights"],
            seed=payload["seed"] + run,
            noisy=payload["noisy"],
            name="sim:%s/run%d" % (mudd.name, run),
            **payload["options"]
        )
        for run in payload["runs"]
    ]


def parallel_simulate_dataset(runner, model, n_observations, n_uops=20000,
                              weights=None, seed=0, noisy=False, **options):
    """Shard dataset simulation across the pool by run index.

    Run ``i`` always draws from seed ``seed + i`` (the serial
    schedule), so the pooled dataset equals the serial one
    observation-for-observation regardless of how runs were chunked.
    """
    from repro.sim.scenarios import as_mudd

    mudd = as_mudd(model)
    cells = [
        {
            "mudd": mudd,
            "runs": chunk,
            "n_uops": n_uops,
            "weights": weights,
            "seed": seed,
            "noisy": noisy,
            "options": options,
        }
        for chunk in _chunks(range(n_observations), runner.workers)
    ]
    observations = []
    for chunk in runner.map_cells(run_simulate_chunk, cells, chunk_size=1):
        observations.extend(chunk)
    return tuple(observations)


# -- closed loop -----------------------------------------------------------

def run_closed_loop_candidate(payload):
    """Worker: analyse the shared simulated target against one
    candidate model (cone served from the disk cache when present)."""
    from repro.pipeline import CounterPoint
    from repro.sim.scenarios import as_mudd

    counterpoint = CounterPoint(
        backend=payload["backend"],
        confidence=payload["confidence"],
        cache_dir=payload["cache_dir"],
    )
    cone = counterpoint.model_cone(
        as_mudd(payload["candidate"]), counters=payload["counters"]
    )
    return counterpoint.analyze(cone, payload["target"])


def parallel_closed_loop(runner, observation, candidate_models,
                         backend="exact", confidence=0.99,
                         use_regions=False):
    """Shard :func:`repro.sim.scenarios.closed_loop`'s candidate loop.

    The observation is simulated once by the caller; each worker tests
    it against one candidate. Returns ``{candidate_name:
    AnalysisReport}`` in candidate order, like the serial loop.
    """
    counters = observation.samples.counters
    target = (
        observation.region(confidence=confidence)
        if use_regions
        else observation.point()
    )
    cells = [
        {
            "candidate": candidate,
            "counters": counters,
            "target": target,
            "backend": backend,
            "confidence": confidence,
            "cache_dir": runner.cache_dir,
        }
        for candidate in candidate_models
    ]
    reports = {}
    for report in runner.map_cells(run_closed_loop_candidate, cells):
        reports[report.model_name] = report
    return reports


# -- guided search ---------------------------------------------------------

def run_feature_evaluation(payload):
    """Worker: feasibility of one feature set against the dataset
    (the guided search's unit of work)."""
    from repro.cone import test_point_feasibility

    cone = payload["cone_builder"](payload["features"])
    infeasible = [
        name
        for name, point in payload["points"]
        if not test_point_feasibility(
            cone, point, backend=payload["backend"]
        ).feasible
    ]
    return frozenset(payload["features"]), infeasible


__all__ = [
    "parallel_closed_loop",
    "parallel_cross_refute",
    "parallel_simulate_dataset",
    "parallel_sweep",
    "run_closed_loop_candidate",
    "run_cross_refute_row",
    "run_feature_evaluation",
    "run_simulate_chunk",
    "run_sweep_chunk",
]
