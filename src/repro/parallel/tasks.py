"""Worker functions and the high-level sharded entry points.

Every worker here is a module-level function of one picklable payload
dict — the shape :class:`repro.parallel.runner.ParallelRunner` requires
for the pooled path. Payloads carry *models and parameters*, not live
solver state: workers that need a pipeline rebuild their own
:class:`CounterPoint` with ``workers=1`` (workers never nest pools).
Worker results come back as :mod:`repro.results` schema dicts, not
pickled ad-hoc objects: the wire format between pool processes is the
same stable JSON-serializable schema the result layer persists and
renders.
Workers that build model cones coordinate through the shared on-disk
cone cache (``cache_dir``) so expensive deduction happens in exactly
one process, and workers that test feasibility coordinate through the
session artifact store under the same directory so memoized verdicts
are never recomputed anywhere.

The high-level functions (:func:`parallel_sweep`,
:func:`parallel_cross_refute`, :func:`parallel_simulate_dataset`,
:func:`parallel_closed_loop`) are what :class:`repro.pipeline.
CounterPoint`'s session and :func:`repro.sim.scenarios.closed_loop`
route to when ``workers > 1``; each is bit-for-bit equivalent to its
serial counterpart (same seeds, same ordering, same verdicts).
"""

from repro.parallel.runner import split_seeds


def _worker_tracer(payload):
    """The tracer a worker records into: enabled iff the dispatching
    parent was tracing (payloads carry a ``trace`` flag), so untraced
    runs ship no extra bytes and pay no recording cost."""
    from repro.obs.trace import Tracer

    return Tracer(enabled=bool(payload.get("trace")))


def _obs_shipment(tracer):
    """The worker's trace records and metrics, ready to ride back with
    its results (``None`` when the worker was not tracing)."""
    if not tracer.enabled:
        return None
    import os

    return {
        "pid": os.getpid(),
        "records": tracer.drain(),
        "metrics": tracer.metrics.as_dict(),
    }


def _absorb_obs(shipment):
    """Merge a worker's shipped records/metrics into the parent's
    active tracer, preserving the worker's pid/tid tags."""
    if not shipment:
        return
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    if tracer.enabled:
        tracer.absorb(shipment.get("records") or [])
        tracer.metrics.absorb(shipment.get("metrics") or {})
        tracer.metrics.counter(
            "workers.tasks.pid_%d" % shipment.get("pid", 0)
        ).inc()


def _tracing():
    from repro.obs.trace import get_tracer

    return get_tracer().enabled


def _chunks(items, n_chunks):
    """Split ``items`` into at most ``n_chunks`` contiguous runs,
    preserving order (sizes differ by at most one)."""
    items = list(items)
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    out, start = [], 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


# -- verdict cells (sweep and session sharding) ----------------------------

def run_verdict_chunk(payload):
    """Worker: feasibility verdicts for one target chunk against a
    shipped cone, returned as ``CellVerdict`` schema dicts.

    Runs the exact function the serial path runs
    (:func:`repro.results.session.compute_cell_verdicts`), so chunk
    boundaries cannot change verdicts; point chunks keep the batched
    facet screen intact.

    When the dispatching parent was tracing (``payload["trace"]``), the
    chunk runs under a worker-local tracer and the result wraps the
    verdicts together with the recorded spans/metrics for the parent to
    absorb; otherwise the historic bare-list shape is returned.
    """
    from repro.obs.trace import activate
    from repro.results.session import compute_cell_verdicts

    tracer = _worker_tracer(payload)
    with activate(tracer):
        verdicts = compute_cell_verdicts(
            payload["cone"],
            payload["targets"],
            backend=payload["backend"],
            use_regions=payload["use_regions"],
            explain=payload["explain"],
        )
    entries = [verdict.to_dict() for verdict in verdicts]
    if tracer.enabled:
        return {"verdicts": entries, "obs": _obs_shipment(tracer)}
    return entries


def dispatch_verdicts(runner, cone, targets, backend="exact",
                      use_regions=False, explain=False):
    """Shard verdict computation for ``targets`` across the pool.

    The cone is built once by the caller and shipped to every worker
    (cones pickle without their process-local solver state). Returns
    :class:`~repro.results.types.CellVerdict` objects in target order —
    the session's unit of memoization, reconstructed from the schema
    dicts the workers ship back.
    """
    from repro.results.types import CellVerdict

    targets = list(targets)
    tracing = _tracing()
    cells = [
        {
            "cone": cone,
            "targets": chunk,
            "backend": backend,
            "use_regions": use_regions,
            "explain": explain,
            "trace": tracing,
        }
        for chunk in _chunks(targets, runner.workers)
    ]
    verdicts = []
    for chunk in runner.map_cells(run_verdict_chunk, cells, chunk_size=1):
        if isinstance(chunk, dict):
            _absorb_obs(chunk.get("obs"))
            chunk = chunk["verdicts"]
        verdicts.extend(CellVerdict.from_dict(entry) for entry in chunk)
    return verdicts


# -- sweep -----------------------------------------------------------------

def parallel_sweep(runner, cone, observations, backend="exact",
                   confidence=0.99, use_regions=False, correlated=True,
                   explain=False):
    """Shard one model's dataset sweep across the pool.

    The direct (session-less) entry point: every observation is turned
    into its solvable target in the parent — points keep exact totals,
    regions are summarised once at ``confidence`` — and the verdict
    cells shard across the workers. One chunk per worker keeps the
    exact facet screen's batching intact.
    """
    from repro.results.types import sweep_from_verdicts

    observations = list(observations)
    names = [observation.name for observation in observations]
    if use_regions:
        targets = [
            observation.region(confidence=confidence, correlated=correlated)
            for observation in observations
        ]
    else:
        targets = [observation.point() for observation in observations]
    verdicts = dispatch_verdicts(
        runner, cone, targets, backend=backend, use_regions=use_regions,
        explain=explain,
    )
    return sweep_from_verdicts(cone.name, names, verdicts)


# -- cross_refute ----------------------------------------------------------

def run_cross_refute_row(payload):
    """Worker: one (row, candidate-subset) cell of the closed-loop
    matrix — simulate the row's observed model, sweep the cell's
    candidates against the dataset. Sweeps come back as ``ModelSweep``
    schema dicts, alongside the worker's trace shipment (``None``
    unless the dispatching parent was tracing).

    The row seed is the serial schedule's ``seed + 1000 * row``, so the
    simulated observations are identical to a serial run's regardless
    of how the row's candidates were split across cells (every cell of
    a row re-simulates the same dataset — simulation is cheap next to
    the sweeps the split parallelises).
    """
    from repro.obs.trace import activate
    from repro.pipeline import CounterPoint
    from repro.sim import simulate_dataset

    tracer = _worker_tracer(payload)
    with activate(tracer):
        observed = payload["observed"]
        observations = simulate_dataset(
            observed,
            payload["n_observations"],
            n_uops=payload["n_uops"],
            weights=payload["weights"],
            seed=payload["row_seed"],
        )
        counters = observations[0].samples.counters
        # workers=1: pool workers never nest pools.
        with CounterPoint(
            backend=payload["backend"],
            confidence=payload["confidence"],
            cache_dir=payload["cache_dir"],
            workers=1,
        ) as counterpoint:
            sweeps = {}
            for candidate in payload["candidates"]:
                cone = counterpoint.model_cone(candidate, counters=counters)
                sweep = counterpoint.sweep(
                    cone, observations, explain=payload["explain"]
                )
                sweeps[candidate.name] = sweep.to_dict()
    return observed.name, sweeps, _obs_shipment(tracer)


def parallel_cross_refute(runner, mudds, n_observations=3, n_uops=20000,
                          weights=None, seed=0, backend="exact",
                          confidence=0.99, explain=False):
    """Shard the cross-refutation matrix across the pool.

    The base unit is a row (observed model): rows are fully
    independent, and candidate cones *and memoized verdicts* are shared
    between rows through the runner's ``cache_dir`` when set. When the
    matrix has fewer rows than would keep the pool busy (``rows < 2 *
    workers``), each row's candidate list is additionally split so
    every worker gets work — the merged result is identical either way.
    Returns a :class:`~repro.results.types.RefutationMatrix`.
    """
    from repro.results.types import ModelSweep, RefutationMatrix

    mudds = list(mudds)
    row_seeds = split_seeds(seed, len(mudds), stride=1000)
    # ceil(2*workers / rows) candidate chunks per row keeps ~2 cells
    # per worker in flight for load balancing on uneven rows.
    n_splits = max(1, -(-2 * runner.workers // max(1, len(mudds))))
    candidate_chunks = _chunks(mudds, n_splits)
    tracing = _tracing()
    cells = [
        {
            "observed": observed,
            "candidates": chunk,
            "n_observations": n_observations,
            "n_uops": n_uops,
            "weights": weights,
            "row_seed": row_seed,
            "backend": backend,
            "confidence": confidence,
            "cache_dir": runner.cache_dir,
            "explain": explain,
            "trace": tracing,
        }
        for observed, row_seed in zip(mudds, row_seeds)
        for chunk in candidate_chunks
    ]
    rows = {}
    for name, sweeps, obs in runner.map_cells(
        run_cross_refute_row, cells, chunk_size=1
    ):
        _absorb_obs(obs)
        rows.setdefault(name, {}).update({
            candidate: ModelSweep.from_dict(entry)
            for candidate, entry in sweeps.items()
        })
    # Rebuild candidate order (schema order is the model order).
    ordered = {
        observed.name: {
            candidate.name: rows[observed.name][candidate.name]
            for candidate in mudds
        }
        for observed in mudds
    }
    return RefutationMatrix(ordered)


# -- simulated datasets ----------------------------------------------------

def run_simulate_chunk(payload):
    """Worker: simulate a contiguous run-index chunk of one dataset,
    reproducing the serial per-run seeds and observation names.

    When the dispatching parent was tracing, returns
    ``{"observations": [...], "obs": shipment}`` instead of the bare
    list so the worker's spans ride back with the data.
    """
    from repro.obs.trace import activate
    from repro.sim.scenarios import simulate_observation

    tracer = _worker_tracer(payload)
    mudd = payload["mudd"]
    with activate(tracer):
        observations = [
            simulate_observation(
                mudd,
                n_uops=payload["n_uops"],
                weights=payload["weights"],
                seed=payload["seed"] + run,
                noisy=payload["noisy"],
                name="sim:%s/run%d" % (mudd.name, run),
                **payload["options"]
            )
            for run in payload["runs"]
        ]
    if tracer.enabled:
        return {"observations": observations, "obs": _obs_shipment(tracer)}
    return observations


def parallel_simulate_dataset(runner, model, n_observations, n_uops=20000,
                              weights=None, seed=0, noisy=False, **options):
    """Shard dataset simulation across the pool by run index.

    Run ``i`` always draws from seed ``seed + i`` (the serial
    schedule), so the pooled dataset equals the serial one
    observation-for-observation regardless of how runs were chunked.
    """
    from repro.sim.scenarios import as_mudd

    mudd = as_mudd(model)
    tracing = _tracing()
    cells = [
        {
            "mudd": mudd,
            "runs": chunk,
            "n_uops": n_uops,
            "weights": weights,
            "seed": seed,
            "noisy": noisy,
            "options": options,
            "trace": tracing,
        }
        for chunk in _chunks(range(n_observations), runner.workers)
    ]
    observations = []
    for chunk in runner.map_cells(run_simulate_chunk, cells, chunk_size=1):
        if isinstance(chunk, dict):
            _absorb_obs(chunk.get("obs"))
            chunk = chunk["observations"]
        observations.extend(chunk)
    return tuple(observations)


# -- closed loop -----------------------------------------------------------

def run_closed_loop_candidate(payload):
    """Worker: analyse the shared simulated target against one
    candidate model (cone served from the disk cache when present);
    ships the report back as an ``AnalysisReport`` schema dict."""
    from repro.pipeline import CounterPoint
    from repro.sim.scenarios import as_mudd

    with CounterPoint(
        backend=payload["backend"],
        confidence=payload["confidence"],
        cache_dir=payload["cache_dir"],
        workers=1,
    ) as counterpoint:
        cone = counterpoint.model_cone(
            as_mudd(payload["candidate"]), counters=payload["counters"]
        )
        report = counterpoint.analyze(cone, payload["target"])
    return report.to_dict()


def parallel_closed_loop(runner, observation, candidate_models,
                         backend="exact", confidence=0.99,
                         use_regions=False):
    """Shard :func:`repro.sim.scenarios.closed_loop`'s candidate loop.

    The observation is simulated once by the caller; each worker tests
    it against one candidate. Returns ``{candidate_name:
    AnalysisReport}`` in candidate order, like the serial loop.
    """
    from repro.results.types import AnalysisReport

    counters = observation.samples.counters
    target = (
        observation.region(confidence=confidence)
        if use_regions
        else observation.point()
    )
    cells = [
        {
            "candidate": candidate,
            "counters": counters,
            "target": target,
            "backend": backend,
            "confidence": confidence,
            "cache_dir": runner.cache_dir,
        }
        for candidate in candidate_models
    ]
    reports = {}
    for entry in runner.map_cells(run_closed_loop_candidate, cells):
        report = AnalysisReport.from_dict(entry)
        reports[report.model_name] = report
    return reports


# -- guided search ---------------------------------------------------------

def run_feature_evaluation(payload):
    """Worker: feasibility of one feature set against the dataset
    (the guided search's unit of work)."""
    from repro.cone import test_point_feasibility

    cone = payload["cone_builder"](payload["features"])
    infeasible = [
        name
        for name, point in payload["points"]
        if not test_point_feasibility(
            cone, point, backend=payload["backend"]
        ).feasible
    ]
    return frozenset(payload["features"]), infeasible


__all__ = [
    "dispatch_verdicts",
    "parallel_closed_loop",
    "parallel_cross_refute",
    "parallel_simulate_dataset",
    "parallel_sweep",
    "run_closed_loop_candidate",
    "run_cross_refute_row",
    "run_feature_evaluation",
    "run_simulate_chunk",
    "run_verdict_chunk",
]
