"""Exception hierarchy for the CounterPoint reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package-level failures with a single ``except`` clause
while still distinguishing the layer that failed.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LinalgError(ReproError):
    """Raised for invalid exact-linear-algebra operations (shape mismatch,
    singular systems passed to :func:`repro.linalg.solve`, ...)."""


class LPError(ReproError):
    """Raised for malformed linear programs (unknown variables, empty
    constraint rows, contradictory bounds detected at build time)."""


class GeometryError(ReproError):
    """Raised by the convex-geometry layer (e.g. degenerate cone input to
    the double-description method)."""


class MuDDError(ReproError):
    """Raised for structurally invalid µpath Decision Diagrams (cycles in
    causality edges, decision nodes with duplicate labels, unreachable
    END nodes, ...)."""


class DSLError(ReproError):
    """Raised by the model-specification DSL lexer/parser/compiler."""


class DSLSyntaxError(DSLError):
    """A syntax error in DSL source; carries line/column information."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = " at line %d" % line
            if column is not None:
                location += ", column %d" % column
        super().__init__(message + location)


class AnalysisError(ReproError):
    """Raised by the model-cone analysis layer (feasibility testing,
    constraint deduction) when inputs are inconsistent."""


class StatsError(ReproError):
    """Raised by the statistics layer for invalid sample data (too few
    samples, dimension mismatch, non-PSD covariance input, ...)."""


class SimulationError(ReproError):
    """Raised by the MMU/cache/workload simulation substrate."""


class ConfigurationError(ReproError):
    """Raised when a simulator or model is configured with inconsistent
    options (e.g. a PML4E cache without a 4-level page table)."""


class ServeError(ReproError):
    """Raised by the :mod:`repro.serve` daemon/client layer (bad
    requests, unknown jobs, transport failures)."""


class QueueFullError(ServeError):
    """Raised when a bounded serve queue rejects new work (the HTTP
    layer maps this to ``429`` with a ``Retry-After`` hint).

    ``retry_after`` is the suggested back-off in seconds.
    """

    def __init__(self, message, retry_after=1.0):
        self.retry_after = retry_after
        super().__init__(message)


class JobCancelled(ServeError):
    """Raised inside a cancelled job's execution thread at the next
    cooperative cancellation point (a scheduler batch boundary).

    Deliberately *not* swallowed by the plan engine's error-collection
    mode: cancellation must unwind the whole job, leaving unanswered
    cells unrecorded so a re-submitted plan resumes them.
    """
