"""Workload generators — the measurement stimuli.

The paper stresses the Haswell MMU with GAPBS / SPEC2006 / PARSEC / YCSB
plus two parameterised microbenchmarks (linear and random access
patterns), sweeping memory footprints and page sizes. We cannot run
those binaries, so this subpackage generates synthetic µop address
streams with the same knobs and the same MMU-relevant behaviours:

* :class:`LinearAccessWorkload` — the paper's linear microbenchmark
  (footprint, stride, load-store ratio, direction, fresh vs revisit
  passes). Stride-64 ascending passes are the prefetcher's trigger
  pattern; its ablation is what the paper says is essential for
  reverse-engineering the prefetchers.
* :class:`RandomAccessWorkload` — the random microbenchmark (footprint,
  load-store ratio).
* Suite-flavoured generators (:mod:`repro.workloads.suites`): BFS-like
  frontier traversal (GAPBS), pointer chasing with speculative wrong-path
  µops (SPEC-like), streaming (PARSEC-like) and Zipfian key-value
  accesses (YCSB-like).
"""

from repro.workloads.base import Workload
from repro.workloads.microbench import LinearAccessWorkload, RandomAccessWorkload
from repro.workloads.suites import (
    BfsWorkload,
    PointerChaseWorkload,
    StreamWorkload,
    ZipfianKVWorkload,
)

__all__ = [
    "BfsWorkload",
    "LinearAccessWorkload",
    "PointerChaseWorkload",
    "RandomAccessWorkload",
    "StreamWorkload",
    "Workload",
    "ZipfianKVWorkload",
]
