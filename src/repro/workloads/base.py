"""Workload base class: deterministic µop address-stream generators."""

from repro.errors import SimulationError
from repro.mmu.core import MemoryOp


class Workload:
    """Base class for deterministic workload generators.

    Subclasses implement :meth:`addresses`, yielding ``(kind, vaddr,
    retires)`` triples or ``(kind, vaddr)`` pairs (retiring by default).
    The base class wraps them into :class:`MemoryOp` and enforces the
    op budget.
    """

    name = "workload"

    def __init__(self, footprint_bytes, seed=0):
        if footprint_bytes <= 0:
            raise SimulationError("footprint must be positive")
        self.footprint_bytes = footprint_bytes
        self.seed = seed

    def addresses(self, n_ops):
        """Yield up to ``n_ops`` access descriptors."""
        raise NotImplementedError

    def ops(self, n_ops):
        """Yield :class:`MemoryOp` µops (at most ``n_ops``)."""
        if n_ops <= 0:
            raise SimulationError("n_ops must be positive")
        produced = 0
        for descriptor in self.addresses(n_ops):
            if produced >= n_ops:
                break
            if len(descriptor) == 2:
                kind, vaddr = descriptor
                retires = True
            else:
                kind, vaddr, retires = descriptor
            yield MemoryOp(kind, vaddr, retires=retires)
            produced += 1

    def describe(self):
        """Metadata used in observation labels."""
        return {"name": self.name, "footprint": self.footprint_bytes}

    def __repr__(self):
        return "%s(footprint=%d)" % (type(self).__name__, self.footprint_bytes)


def interleave_stores(index, load_store_ratio):
    """Shared helper: should op ``index`` be a store?

    ``load_store_ratio`` is the fraction of loads (1.0 = loads only,
    0.0 = stores only). Deterministic interleaving keeps streams
    reproducible.
    """
    if not 0.0 <= load_store_ratio <= 1.0:
        raise SimulationError("load_store_ratio must be in [0, 1]")
    if load_store_ratio >= 1.0:
        return False
    if load_store_ratio <= 0.0:
        return True
    period = max(2, round(1.0 / (1.0 - load_store_ratio)))
    return index % period == period - 1
