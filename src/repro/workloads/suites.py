"""Benchmark-suite-flavoured synthetic workloads.

Stand-ins for the GAPBS / SPEC2006 / PARSEC / YCSB suites the paper
measures. Each generator reproduces the MMU-relevant traits of its
archetype — locality structure, load/store mix, speculation — rather
than its computation.
"""

import random

from repro.errors import SimulationError
from repro.workloads.base import Workload


class BfsWorkload(Workload):
    """GAPBS-style frontier traversal.

    Alternates between sequential frontier scans (good locality) and
    random neighbour lookups across the whole footprint (TLB-hostile),
    like BFS over a CSR graph.
    """

    name = "bfs"

    def __init__(self, footprint_bytes, frontier_len=96, seed=0):
        super().__init__(footprint_bytes, seed=seed)
        if frontier_len <= 0:
            raise SimulationError("frontier_len must be positive")
        self.frontier_len = frontier_len

    def addresses(self, n_ops):
        rng = random.Random(self.seed)
        lines = self.footprint_bytes // 64
        index = 0
        cursor = 0
        while index < n_ops:
            # Sequential frontier scan (offsets array).
            for _ in range(self.frontier_len):
                if index >= n_ops:
                    return
                yield ("load", (cursor % lines) * 64)
                cursor += 1
                index += 1
            # Random neighbour visits + distance-array stores.
            for _ in range(self.frontier_len // 2):
                if index >= n_ops:
                    return
                line = rng.randrange(lines)
                yield ("load", line * 64)
                index += 1
                if index >= n_ops:
                    return
                yield ("store", line * 64)
                index += 1


class PointerChaseWorkload(Workload):
    """SPEC-style pointer chasing with wrong-path speculation.

    Chases a pseudo-random permutation through the footprint; a fraction
    of µops are wrong-path (do not retire) to model branch mispredicts
    around the chase loop.
    """

    name = "ptrchase"

    def __init__(self, footprint_bytes, spec_fraction=0.08, seed=0):
        super().__init__(footprint_bytes, seed=seed)
        if not 0.0 <= spec_fraction < 1.0:
            raise SimulationError("spec_fraction must be in [0, 1)")
        self.spec_fraction = spec_fraction

    def addresses(self, n_ops):
        rng = random.Random(self.seed)
        lines = self.footprint_bytes // 64
        current = rng.randrange(lines)
        spec_period = None
        if self.spec_fraction > 0:
            spec_period = max(2, round(1.0 / self.spec_fraction))
        for index in range(n_ops):
            # Multiplicative LCG step keeps the chase deterministic.
            current = (current * 1103515245 + 12345 + self.seed) % lines
            retires = True
            if spec_period is not None and index % spec_period == spec_period - 1:
                retires = False
            yield ("load", current * 64, retires)


class StreamWorkload(Workload):
    """PARSEC-style streaming: two source arrays read, one written.

    Uses a 256-byte stride (vectorised kernels touch every few lines),
    which deliberately does *not* match the prefetcher's consecutive
    cache-line trigger — streaming suites stress bandwidth, not the
    page-crossing predictor.
    """

    name = "stream"

    def __init__(self, footprint_bytes, stride=256, seed=0):
        super().__init__(footprint_bytes, seed=seed)
        if stride <= 0:
            raise SimulationError("stride must be positive")
        self.stride = stride

    def addresses(self, n_ops):
        third = max(self.stride, self.footprint_bytes // 3)
        base_a, base_b, base_c = 0, third, 2 * third
        index = 0
        offset = 0
        while index < n_ops:
            position = offset % third
            for kind, base in (("load", base_a), ("load", base_b), ("store", base_c)):
                if index >= n_ops:
                    return
                yield (kind, base + position)
                index += 1
            offset += self.stride


class ZipfianKVWorkload(Workload):
    """YCSB-style key-value accesses with Zipfian popularity.

    Hot keys concentrate on a few pages (ping-ponging walks and
    exercising MSHR merging when a hot page is evicted), while the long
    tail sweeps the full footprint.
    """

    name = "zipf"

    def __init__(self, footprint_bytes, theta=0.9, read_fraction=0.95, seed=0):
        super().__init__(footprint_bytes, seed=seed)
        if not 0.0 < theta < 1.0:
            raise SimulationError("theta must be in (0, 1)")
        if not 0.0 <= read_fraction <= 1.0:
            raise SimulationError("read_fraction must be in [0, 1]")
        self.theta = theta
        self.read_fraction = read_fraction

    def addresses(self, n_ops):
        rng = random.Random(self.seed)
        lines = self.footprint_bytes // 64
        # Approximate Zipf via the power-of-uniform trick: rank ~
        # floor(lines * u^(1/(1-theta))) concentrates mass at low ranks.
        exponent = 1.0 / (1.0 - self.theta)
        for index in range(n_ops):
            u = rng.random()
            rank = int(lines * (u**exponent))
            rank = min(rank, lines - 1)
            # Scatter ranks across the region so hot keys share pages
            # but are not all page zero.
            line = (rank * 2654435761) % lines if rank > 16 else rank
            kind = "load" if rng.random() < self.read_fraction else "store"
            yield (kind, line * 64)
