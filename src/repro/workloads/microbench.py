"""The paper's two microbenchmarks: linear and random access patterns.

Section 7.1: "We also collected HEC data for two microbenchmarks: a
linear access pattern (parametrized by footprint, stride, and load-store
ratio) and a random access pattern (parametrized by footprint and
load-store ratio)." The ablation study shows that removing these misses
violations of key constraints (e.g. Table 1's Constraint 1) needed to
reverse-engineer the TLB prefetchers.
"""

import random

from repro.errors import SimulationError
from repro.workloads.base import Workload, interleave_stores


class LinearAccessWorkload(Workload):
    """Linear sweep over the footprint.

    Parameters
    ----------
    stride:
        Byte stride between consecutive accesses. Stride 64 ascending
        touches consecutive cache lines — the prefetch trigger pattern.
    load_store_ratio:
        Fraction of loads (1.0 = pure loads, 0.0 = pure stores).
    descending:
        Sweep from the top of the region downwards (exercises the
        8→7 descending prefetch trigger).
    warm_pass:
        Prepend one quick page-touch pass so every page's accessed bit
        is set before the measured sweep — the "revisit" variant. Fresh
        sweeps (warm_pass=False) are first touches: demand walks replay
        and prefetches abort.
    """

    name = "linear"

    def __init__(
        self,
        footprint_bytes,
        stride=64,
        load_store_ratio=1.0,
        descending=False,
        warm_pass=False,
        seed=0,
    ):
        super().__init__(footprint_bytes, seed=seed)
        if stride <= 0:
            raise SimulationError("stride must be positive")
        self.stride = stride
        self.load_store_ratio = load_store_ratio
        self.descending = descending
        self.warm_pass = warm_pass

    def addresses(self, n_ops):
        positions = list(range(0, self.footprint_bytes, self.stride))
        if self.descending:
            positions = positions[::-1]
        if not positions:
            return
        index = 0
        if self.warm_pass:
            # One access per 4K frame to set accessed bits; the warm
            # pass is part of the measured stream (like a program's
            # initialisation phase).
            for offset in range(0, self.footprint_bytes, 4096):
                if index >= n_ops:
                    return
                yield ("store", offset)
                index += 1
        while index < n_ops:
            for offset in positions:
                if index >= n_ops:
                    return
                kind = "store" if interleave_stores(index, self.load_store_ratio) else "load"
                yield (kind, offset)
                index += 1

    def describe(self):
        info = super().describe()
        info.update(
            stride=self.stride,
            load_store_ratio=self.load_store_ratio,
            descending=self.descending,
            warm_pass=self.warm_pass,
        )
        return info


class RandomAccessWorkload(Workload):
    """Uniformly random accesses over the footprint."""

    name = "random"

    def __init__(self, footprint_bytes, load_store_ratio=1.0, seed=0):
        super().__init__(footprint_bytes, seed=seed)
        self.load_store_ratio = load_store_ratio

    def addresses(self, n_ops):
        rng = random.Random(self.seed)
        lines = self.footprint_bytes // 64
        if lines <= 0:
            raise SimulationError("footprint smaller than one cache line")
        for index in range(n_ops):
            offset = rng.randrange(lines) * 64
            kind = "store" if interleave_stores(index, self.load_store_ratio) else "load"
            yield (kind, offset)

    def describe(self):
        info = super().describe()
        info.update(load_store_ratio=self.load_store_ratio)
        return info
