"""Memory-trace files: record and replay µop address streams.

A trace file is a plain text format, one access per line::

    L 0x7f3a00001040
    S 0x7f3a00002000
    l 0x7f3a00003000      # lower case = speculative (does not retire)

:class:`TraceWorkload` replays a trace through the simulator like any
other workload; :func:`write_trace` records one. This lets users capture
address streams from real instrumentation (Pin, DynamoRIO, gem5) and
feed them to the MMU substrate.
"""

from repro.errors import SimulationError
from repro.workloads.base import Workload

_KINDS = {"L": ("load", True), "S": ("store", True), "l": ("load", False), "s": ("store", False)}
_LETTER = {("load", True): "L", ("store", True): "S", ("load", False): "l", ("store", False): "s"}


def parse_trace_line(line, line_number=0):
    """Parse one trace line into ``(kind, vaddr, retires)``."""
    stripped = line.split("#", 1)[0].strip()
    if not stripped:
        return None
    fields = stripped.split()
    if len(fields) != 2 or fields[0] not in _KINDS:
        raise SimulationError("bad trace line %d: %r" % (line_number, line))
    kind, retires = _KINDS[fields[0]]
    try:
        vaddr = int(fields[1], 0)
    except ValueError:
        raise SimulationError(
            "bad address on trace line %d: %r" % (line_number, fields[1])
        ) from None
    return kind, vaddr, retires


class TraceWorkload(Workload):
    """Replay a recorded address trace.

    ``source`` is a path or an iterable of lines. The footprint is
    inferred from the maximum address (used only for bookkeeping).
    """

    name = "trace"

    def __init__(self, source):
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        else:
            lines = list(source)
        self._accesses = []
        for line_number, line in enumerate(lines, 1):
            parsed = parse_trace_line(line, line_number)
            if parsed is not None:
                self._accesses.append(parsed)
        if not self._accesses:
            raise SimulationError("trace contains no accesses")
        footprint = max(vaddr for _, vaddr, _ in self._accesses) + 64
        super().__init__(footprint)

    def __len__(self):
        return len(self._accesses)

    def addresses(self, n_ops):
        for index in range(min(n_ops, len(self._accesses))):
            yield self._accesses[index]

    def describe(self):
        info = super().describe()
        info.update(length=len(self._accesses))
        return info


def format_trace(ops):
    """Render an iterable of :class:`repro.mmu.MemoryOp` as trace text."""
    lines = []
    for op in ops:
        lines.append("%s 0x%x" % (_LETTER[(op.kind, op.retires)], op.vaddr))
    return "\n".join(lines) + "\n"


def write_trace(workload, path, n_ops):
    """Record ``n_ops`` of a workload to a trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_trace(workload.ops(n_ops)))
