"""Tokenizer for the µDD specification DSL.

Identifiers are generous — counter names such as ``load.pde$_miss`` and
event names such as ``LookupPde$`` are single tokens — because HEC names
embed dots, dollar signs and underscores.
"""

import re

from repro.errors import DSLSyntaxError

KEYWORDS = frozenset({"incr", "do", "switch", "pass", "done"})

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<arrow>=>)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<semi>;)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$+\-]*)
    """,
    re.VERBOSE,
)


class Token:
    """A lexical token with source position (1-based line/column)."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.text, self.line, self.column)


def tokenize(source):
    """Tokenize DSL source; raises :class:`DSLSyntaxError` on bad input.

    Token kinds: ``keyword``, ``ident``, ``arrow``, ``lbrace``,
    ``rbrace``, ``semi``. Whitespace and ``#``/``//`` comments are
    skipped.
    """
    tokens = []
    position = 0
    line = 1
    line_start = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise DSLSyntaxError(
                "unexpected character %r" % source[position], line=line, column=column
            )
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        if kind not in ("ws", "comment"):
            if kind == "ident" and text in KEYWORDS:
                kind = "keyword"
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rindex("\n") + 1
        position = match.end()
    return tokens
