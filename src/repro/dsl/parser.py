"""Recursive-descent parser for the µDD DSL.

Grammar (semicolons after ``}`` and before ``}`` are forgiving, matching
the paper's examples)::

    program  := statement*
    statement:= "incr" IDENT ";"
              | "do" IDENT ";"
              | "pass" ";"
              | "done" ";"
              | "switch" IDENT "{" case+ "}" ";"?
    case     := IDENT "=>" (statement | block) ";"?
    block    := "{" statement* "}"
"""

from repro.errors import DSLSyntaxError
from repro.dsl.lexer import tokenize
from repro.mudd.program import Do, Done, Incr, Pass, Seq, Switch, compile_program


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -------------------------------------------------
    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self):
        token = self.peek()
        if token is None:
            raise DSLSyntaxError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, kind, text=None):
        token = self.peek()
        if token is None:
            raise DSLSyntaxError(
                "expected %s but reached end of input" % (text or kind,)
            )
        if token.kind != kind or (text is not None and token.text != text):
            raise DSLSyntaxError(
                "expected %s, found %r" % (text or kind, token.text),
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def accept(self, kind, text=None):
        token = self.peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------
    def parse_program(self):
        statements = []
        while self.peek() is not None:
            statements.append(self.parse_statement())
        if not statements:
            raise DSLSyntaxError("empty program")
        return statements[0] if len(statements) == 1 else Seq(statements)

    def parse_statement(self):
        token = self.peek()
        if token is None:
            raise DSLSyntaxError("expected a statement, reached end of input")
        if token.kind == "keyword":
            if token.text == "incr":
                self.advance()
                name = self.expect("ident").text
                self.expect("semi")
                return Incr(name)
            if token.text == "do":
                self.advance()
                name = self.expect("ident").text
                self.expect("semi")
                return Do(name)
            if token.text == "pass":
                self.advance()
                self.expect("semi")
                return Pass()
            if token.text == "done":
                self.advance()
                self.expect("semi")
                return Done()
            if token.text == "switch":
                return self.parse_switch()
        raise DSLSyntaxError(
            "expected a statement, found %r" % token.text,
            line=token.line,
            column=token.column,
        )

    def parse_switch(self):
        self.expect("keyword", "switch")
        property_name = self.expect("ident").text
        self.expect("lbrace")
        branches = {}
        while not self.accept("rbrace"):
            value_token = self.expect("ident")
            if value_token.text in branches:
                raise DSLSyntaxError(
                    "duplicate case %r in switch %s" % (value_token.text, property_name),
                    line=value_token.line,
                    column=value_token.column,
                )
            self.expect("arrow")
            branches[value_token.text] = self.parse_case_body()
            self.accept("semi")
        self.accept("semi")
        if not branches:
            raise DSLSyntaxError("switch %s has no cases" % property_name)
        return Switch(property_name, branches)

    def parse_case_body(self):
        if self.accept("lbrace"):
            statements = []
            while not self.accept("rbrace"):
                statements.append(self.parse_statement())
            if not statements:
                return Pass()
            return statements[0] if len(statements) == 1 else Seq(statements)
        # Single statement without trailing semicolon support: pass/done/
        # incr/do require their semicolon; a bare case like `Hit => pass`
        # (no semi before `}`) is handled by making semis optional here.
        token = self.peek()
        if token is not None and token.kind == "keyword" and token.text in (
            "pass",
            "done",
            "incr",
            "do",
        ):
            return self._parse_simple_optional_semi(token.text)
        return self.parse_statement()

    def _parse_simple_optional_semi(self, keyword):
        self.advance()
        if keyword == "pass":
            self.accept("semi")
            return Pass()
        if keyword == "done":
            self.accept("semi")
            return Done()
        name = self.expect("ident").text
        self.accept("semi")
        return Incr(name) if keyword == "incr" else Do(name)


def parse_program(source):
    """Parse DSL source into a combinator AST (a single Statement)."""
    return _Parser(tokenize(source)).parse_program()


def compile_dsl(source, name="model"):
    """Parse and compile DSL source into a validated µDD."""
    return compile_program(parse_program(source), name=name)
