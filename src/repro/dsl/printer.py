"""Pretty-printer: program AST → DSL source.

The paper promises to share its MMU µDDs; a printer makes models
round-trippable artifacts (build programmatically, publish as DSL,
re-parse elsewhere). ``parse_program(format_program(p))`` produces an
equivalent program for every AST this library can build.
"""

from repro.errors import DSLError
from repro.mudd.program import Do, Done, Incr, Pass, Seq, Statement, Switch

_INDENT = "  "


def format_program(program, indent=0):
    """Render a program AST as DSL source text."""
    if not isinstance(program, Statement):
        raise DSLError("format_program expects a Statement")
    lines = _format_statement(program, indent)
    return "\n".join(lines) + "\n"


def _format_statement(statement, depth):
    pad = _INDENT * depth
    if isinstance(statement, Incr):
        return ["%sincr %s;" % (pad, statement.counter_name)]
    if isinstance(statement, Do):
        return ["%sdo %s;" % (pad, statement.event_name)]
    if isinstance(statement, Pass):
        return ["%spass;" % pad]
    if isinstance(statement, Done):
        return ["%sdone;" % pad]
    if isinstance(statement, Seq):
        lines = []
        for inner in statement.statements:
            lines.extend(_format_statement(inner, depth))
        return lines
    if isinstance(statement, Switch):
        lines = ["%sswitch %s {" % (pad, statement.property_name)]
        for value, body in statement.branches.items():
            if _is_simple(body):
                body_text = _format_statement(body, 0)[0]
                lines.append("%s%s => %s" % (_INDENT * (depth + 1), value, body_text))
            else:
                lines.append("%s%s => {" % (_INDENT * (depth + 1), value))
                lines.extend(_format_statement(body, depth + 2))
                lines.append("%s};" % (_INDENT * (depth + 1)))
        lines.append("%s};" % pad)
        return lines
    raise DSLError("unknown statement type %r" % (statement,))


def _is_simple(statement):
    return isinstance(statement, (Incr, Do, Pass, Done))
