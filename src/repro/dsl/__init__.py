"""The model-specification DSL (Section 6 of the paper).

Experts describe their mental model of the microarchitecture in a small
imperative language; CounterPoint compiles it to a µDD. The grammar
mirrors the paper's Figure 2 example::

    incr load.causes_walk;
    do LookupPde$;
    switch Pde$Status {
        Hit  => pass;
        Miss => incr load.pde$_miss
    };
    done;

Statements: ``incr <counter>;`` ``do <event>;`` ``pass;`` ``done;`` and
C-style ``switch <Property> { Value => <stmt-or-block>; ... };``. Blocks
are brace-delimited statement sequences. The DSL deliberately has no
functions, loops or variables beyond µpath properties (per the paper).

Entry points:

* :func:`parse_program` — source text → combinator AST,
* :func:`compile_dsl` — source text → validated :class:`repro.mudd.MuDD`.
"""

from repro.dsl.lexer import Token, tokenize
from repro.dsl.parser import compile_dsl, parse_program

__all__ = ["Token", "compile_dsl", "parse_program", "tokenize"]
