"""Declarative experiment specs: the :class:`Plan` type.

A plan is *data*: an ordered list of analysis ops (``analyze``,
``sweep``, ``compare``, ``cross_refute``, ``simulate_dataset``) with
dependency edges between them, serializable through the shared
:mod:`repro.results.base` contract (version-stamped ``to_dict`` /
``from_dict`` / ``to_json`` / ``from_json``, structural equality,
golden-file pinning). The whole evaluation campaign behind a paper
table becomes one JSON document::

    plan = Plan()
    data = plan.simulate_dataset("pde_refined", n_observations=2,
                                 n_uops=2000, op_id="data")
    plan.sweep("pde_initial", dataset=data, explain=True)
    plan.compare(["pde_initial", "pde_refined"], dataset=data)
    plan.cross_refute(["pde_refined", "pde_initial"], n_observations=2,
                      n_uops=2000)
    text = plan.to_json(indent=2)        # ship it, diff it, commit it

Ops reference each other by id — a ``dataset="data"`` argument is both
a data edge (the sweep consumes the simulated observations) and a
dependency edge (the simulation runs first). The planner
(:mod:`repro.plan.compiler`) compiles the op list into a flat DAG of
content-addressed simulation/verdict tasks with *global*
deduplication, and the engine (:mod:`repro.plan.engine`) executes it.

Plans built from strings (bundled-model names, DSL source, dataset
specs) serialize; plans built from live objects (a ``ModelCone``, a
list of ``Observation``\\ s — the facade's one-op plans) execute the
same way but refuse ``to_dict`` with a pointed error.
"""

from repro.errors import AnalysisError
from repro.results.base import (
    ResultBase,
    decode_number,
    encode_number,
    register,
)

#: Every op kind a plan may contain, in documentation order.
OP_KINDS = ("simulate_dataset", "analyze", "sweep", "compare", "cross_refute")

#: Parameter order per op kind — fixed so serialized plans are stable.
_OP_PARAMS = {
    "simulate_dataset": (
        "model", "n_observations", "n_uops", "seed", "weights", "noisy",
    ),
    "analyze": ("model", "observation", "explain"),
    "sweep": ("model", "dataset", "use_regions", "correlated", "explain"),
    "compare": ("models", "dataset", "use_regions", "correlated", "explain"),
    "cross_refute": (
        "models", "n_observations", "n_uops", "weights", "seed", "explain",
    ),
}

#: Dataset-spec forms (exactly one key): an op reference, a bundled
#: hardware dataset, an anonymous simulation, or inline observations.
_DATASET_FORMS = ("ref", "source", "simulate", "inline")


class PlanOp:
    """One op in a plan: an id, a kind, parameters, dependency edges.

    ``after`` lists op ids that must complete first *in addition to*
    the data edges implied by ``dataset={"ref": ...}`` references.
    """

    __slots__ = ("op_id", "kind", "params", "after")

    def __init__(self, op_id, kind, params, after=()):
        if kind not in OP_KINDS:
            raise AnalysisError(
                "unknown plan op kind %r (known: %s)" % (kind, ", ".join(OP_KINDS))
            )
        if not op_id or not isinstance(op_id, str):
            raise AnalysisError("plan op ids must be non-empty strings, got %r"
                                % (op_id,))
        self.op_id = op_id
        self.kind = kind
        self.params = dict(params)
        self.after = list(after)

    def references(self):
        """Op ids this op depends on through its dataset edge."""
        dataset = self.params.get("dataset")
        if isinstance(dataset, dict) and "ref" in dataset:
            return [dataset["ref"]]
        return []

    def dependencies(self):
        """All op ids that must complete before this op (data + explicit)."""
        seen = []
        for op_id in self.references() + self.after:
            if op_id not in seen:
                seen.append(op_id)
        return seen

    def __repr__(self):
        return "PlanOp(%r, %r)" % (self.op_id, self.kind)


def _normalize_dataset(dataset):
    """Coerce the builder's ``dataset`` argument to a canonical spec."""
    if isinstance(dataset, str):
        return {"ref": dataset}
    if isinstance(dataset, dict):
        keys = [key for key in _DATASET_FORMS if key in dataset]
        allowed = set(keys) | ({"scale"} if keys == ["source"] else set())
        if len(keys) != 1 or set(dataset) - allowed:
            raise AnalysisError(
                "a dataset spec needs exactly one of %s (plus an optional "
                "'scale' with 'source'), got keys %r"
                % ("/".join(_DATASET_FORMS), sorted(dataset))
            )
        return dict(dataset)
    try:
        return {"inline": list(dataset)}
    except TypeError:
        raise AnalysisError(
            "cannot interpret %r as a dataset spec" % (type(dataset).__name__,)
        ) from None


def _check_positive(op_id, name, value):
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise AnalysisError(
            "plan op %r: %s must be a positive int, got %r" % (op_id, name, value)
        )


def _check_sim_backend(op_id, sim_backend):
    """Validate an optional per-op simulation backend override."""
    if sim_backend is None:
        return None
    from repro.sim.engines import BACKENDS

    if sim_backend not in BACKENDS:
        raise AnalysisError(
            "plan op %r: unknown sim backend %r (choose from %s)"
            % (op_id, sim_backend, ", ".join(BACKENDS))
        )
    return sim_backend


def _check_weights(op_id, weights):
    if weights is None:
        return None
    if not isinstance(weights, dict) or not all(
        isinstance(prop, str) and isinstance(choices, dict)
        and all(isinstance(value, str) for value in choices)
        for prop, choices in weights.items()
    ):
        raise AnalysisError(
            "plan op %r: weights must be {property: {value: weight}}, got %r"
            % (op_id, weights)
        )
    return {
        prop: {value: float(weight) for value, weight in sorted(choices.items())}
        for prop, choices in sorted(weights.items())
    }


def _serialize_model(op_id, model):
    if isinstance(model, str):
        return model
    raise AnalysisError(
        "plan op %r holds a live %s; only string models (bundled names or "
        "DSL source) serialize — in-memory plans execute but cannot be "
        "written to JSON" % (op_id, type(model).__name__)
    )


def _serialize_observation(op_id, observation):
    if isinstance(observation, dict) and all(
        isinstance(name, str) for name in observation
    ):
        try:
            return {
                name: encode_number(value)
                for name, value in sorted(observation.items())
            }
        except AnalysisError:
            pass
    raise AnalysisError(
        "plan op %r: only {counter: number} observations serialize, got %r"
        % (op_id, type(observation).__name__)
    )


def _serialize_dataset(op_id, dataset):
    if "inline" not in dataset:
        return dict(dataset)
    entries = []
    for entry in dataset["inline"]:
        if not (isinstance(entry, dict) and set(entry) == {"name", "point"}):
            raise AnalysisError(
                "plan op %r holds a live observation; only "
                "{'name': ..., 'point': {counter: number}} entries serialize"
                % (op_id,)
            )
        entries.append({
            "name": entry["name"],
            "point": _serialize_observation(op_id, entry["point"]),
        })
    return {"inline": entries}


def _deserialize_dataset(dataset):
    if "inline" not in dataset:
        return dict(dataset)
    return {"inline": [
        {
            "name": entry["name"],
            "point": {
                name: decode_number(value)
                for name, value in entry["point"].items()
            },
        }
        for entry in dataset["inline"]
    ]}


@register
class Plan(ResultBase):
    """An ordered, dependency-edged list of analysis ops.

    Build one incrementally with the op methods (each returns the new
    op's id, so specs chain naturally), then hand it to
    :meth:`repro.plan.engine.PlanEngine.run` — or serialize it and run
    it later with ``python -m repro run plan.json``.
    """

    kind = "plan"

    def __init__(self, ops=()):
        self.ops = list(ops)
        self._by_id = {}
        for op in self.ops:
            if op.op_id in self._by_id:
                raise AnalysisError("duplicate plan op id %r" % (op.op_id,))
            self._by_id[op.op_id] = op

    # -- builder -----------------------------------------------------------
    def _add(self, kind, params, op_id, after):
        if op_id is None:
            index = len(self.ops)
            while "op%d" % index in self._by_id:
                index += 1
            op_id = "op%d" % index
        op = PlanOp(op_id, kind, params, after)
        if op.op_id in self._by_id:
            raise AnalysisError("duplicate plan op id %r" % (op.op_id,))
        self.ops.append(op)
        self._by_id[op.op_id] = op
        return op.op_id

    def simulate_dataset(self, model, n_observations, n_uops=20000, seed=0,
                         weights=None, noisy=False, sim_backend=None,
                         op_id=None, after=()):
        """Add a dataset-simulation op; other ops consume it by id.

        ``sim_backend`` optionally pins this op's simulation engine
        (:data:`repro.sim.BACKENDS`); ``None`` (the default, and the
        only value older serialized plans carry) defers to the
        executing pipeline's ``sim_backend``. Either way the
        observations are identical — the knob is wall-clock only, and
        it does not participate in task content keys.
        """
        _check_positive(op_id or "?", "n_observations", n_observations)
        _check_positive(op_id or "?", "n_uops", n_uops)
        return self._add("simulate_dataset", {
            "model": model,
            "n_observations": n_observations,
            "n_uops": n_uops,
            "seed": int(seed),
            "weights": _check_weights(op_id or "?", weights),
            "noisy": bool(noisy),
            "sim_backend": _check_sim_backend(op_id or "?", sim_backend),
        }, op_id, after)

    def analyze(self, model, observation, explain=False, op_id=None, after=()):
        """Add a single-observation analysis op."""
        return self._add("analyze", {
            "model": model,
            "observation": observation,
            "explain": bool(explain),
        }, op_id, after)

    def sweep(self, model, dataset, use_regions=False, correlated=True,
              explain=False, op_id=None, after=()):
        """Add a one-model dataset sweep op. ``dataset`` is an op id,
        a dataset spec dict, or a live observation sequence."""
        return self._add("sweep", {
            "model": model,
            "dataset": _normalize_dataset(dataset),
            "use_regions": bool(use_regions),
            "correlated": bool(correlated),
            "explain": bool(explain),
        }, op_id, after)

    def compare(self, models, dataset, use_regions=False, correlated=True,
                explain=False, op_id=None, after=()):
        """Add a model-family comparison op over one dataset."""
        return self._add("compare", {
            "models": list(models),
            "dataset": _normalize_dataset(dataset),
            "use_regions": bool(use_regions),
            "correlated": bool(correlated),
            "explain": bool(explain),
        }, op_id, after)

    def cross_refute(self, models, n_observations=3, n_uops=20000,
                     weights=None, seed=0, explain=False, op_id=None,
                     after=()):
        """Add a closed-loop cross-refutation matrix op."""
        _check_positive(op_id or "?", "n_observations", n_observations)
        _check_positive(op_id or "?", "n_uops", n_uops)
        return self._add("cross_refute", {
            "models": list(models),
            "n_observations": n_observations,
            "n_uops": n_uops,
            "weights": _check_weights(op_id or "?", weights),
            "seed": int(seed),
            "explain": bool(explain),
        }, op_id, after)

    def then(self, earlier, later):
        """Add an explicit ordering edge: ``earlier`` before ``later``."""
        for op_id in (earlier, later):
            if op_id not in self._by_id:
                raise AnalysisError("unknown plan op id %r" % (op_id,))
        op = self._by_id[later]
        if earlier not in op.after:
            op.after.append(earlier)
        return self

    # -- queries -----------------------------------------------------------
    def __len__(self):
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def op(self, op_id):
        try:
            return self._by_id[op_id]
        except KeyError:
            raise AnalysisError("unknown plan op id %r" % (op_id,)) from None

    def validate(self):
        """Check ids, references, dataset specs, and acyclicity.

        Returns the execution order (a topological sort, declaration
        order as the tie-break) so callers get ordering for free.
        """
        for op in self.ops:
            for dep in op.dependencies():
                if dep not in self._by_id:
                    raise AnalysisError(
                        "plan op %r depends on unknown op %r" % (op.op_id, dep)
                    )
            for ref in op.references():
                if self._by_id[ref].kind != "simulate_dataset":
                    raise AnalysisError(
                        "plan op %r references %r as a dataset, but it is a "
                        "%r op" % (op.op_id, ref, self._by_id[ref].kind)
                    )
            # Parameter checks run here (not only in the builders) so
            # hand-edited JSON plans fail with a pointed error instead
            # of a deep crash at execution time.
            if op.kind in ("simulate_dataset", "cross_refute"):
                _check_positive(op.op_id, "n_observations",
                                op.params["n_observations"])
                _check_positive(op.op_id, "n_uops", op.params["n_uops"])
                _check_weights(op.op_id, op.params.get("weights"))
                _check_sim_backend(op.op_id, op.params.get("sim_backend"))
            dataset = op.params.get("dataset")
            if (
                isinstance(dataset, dict)
                and "inline" in dataset
                and op.params.get("use_regions")
                and any(
                    isinstance(entry, dict) and set(entry) == {"name", "point"}
                    for entry in dataset["inline"]
                )
            ):
                # Serialized inline entries carry exact totals only —
                # there is no sample matrix to summarise as a region.
                raise AnalysisError(
                    "plan op %r: use_regions needs observations with "
                    "interval samples; inline {'name', 'point'} entries "
                    "carry exact totals only" % (op.op_id,)
                )
            if isinstance(dataset, dict) and "simulate" in dataset:
                inner = dataset["simulate"]
                if not isinstance(inner, dict):
                    raise AnalysisError(
                        "plan op %r: 'simulate' dataset spec must be a dict"
                        % (op.op_id,)
                    )
                _check_positive(op.op_id, "n_observations",
                                inner.get("n_observations", 3))
                _check_positive(op.op_id, "n_uops", inner.get("n_uops", 20000))
                _check_weights(op.op_id, inner.get("weights"))
                _check_sim_backend(op.op_id, inner.get("sim_backend"))
        # Kahn's algorithm, scanning in declaration order so execution
        # order is deterministic regardless of edge insertion order.
        remaining = {op.op_id: set(op.dependencies()) for op in self.ops}
        order = []
        while remaining:
            ready = [
                op.op_id for op in self.ops
                if op.op_id in remaining and not remaining[op.op_id]
            ]
            if not ready:
                cycle = sorted(remaining)
                raise AnalysisError(
                    "plan has a dependency cycle among ops %s"
                    % ", ".join(repr(op_id) for op_id in cycle)
                )
            for op_id in ready:
                order.append(op_id)
                del remaining[op_id]
            for deps in remaining.values():
                deps.difference_update(ready)
        return order

    def summary(self):
        """Human rendering: one line per op with its dependencies."""
        lines = ["plan: %d ops" % len(self.ops)]
        for op in self.ops:
            deps = op.dependencies()
            lines.append("  %-16s %s%s" % (
                op.op_id,
                op.kind,
                "  (after %s)" % ", ".join(deps) if deps else "",
            ))
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------
    def _payload(self):
        entries = []
        for op in self.ops:
            entry = {"id": op.op_id, "op": op.kind, "after": list(op.after)}
            for name in _OP_PARAMS[op.kind]:
                value = op.params[name]
                if name in ("model",):
                    value = _serialize_model(op.op_id, value)
                elif name == "models":
                    value = [_serialize_model(op.op_id, model) for model in value]
                elif name == "observation":
                    value = _serialize_observation(op.op_id, value)
                elif name == "dataset":
                    value = _serialize_dataset(op.op_id, value)
                entry[name] = value
            # Optional params serialize only when set, so plans that
            # never touch them round-trip byte-identically against
            # golden files written before the param existed.
            sim_backend = op.params.get("sim_backend")
            if sim_backend is not None:
                entry["sim_backend"] = sim_backend
            entries.append(entry)
        return {"ops": entries}

    @classmethod
    def _from_payload(cls, payload):
        ops = []
        for entry in payload["ops"]:
            kind = entry.get("op")
            if kind not in _OP_PARAMS:
                raise AnalysisError("unknown plan op kind %r" % (kind,))
            params = {}
            for name in _OP_PARAMS[kind]:
                if name not in entry:
                    raise AnalysisError(
                        "plan op %r is missing %r" % (entry.get("id"), name)
                    )
                value = entry[name]
                if name == "observation":
                    value = {
                        counter: decode_number(number)
                        for counter, number in value.items()
                    }
                elif name == "dataset":
                    value = _deserialize_dataset(value)
                params[name] = value
            if kind == "simulate_dataset":
                params["sim_backend"] = entry.get("sim_backend")
            ops.append(PlanOp(entry["id"], kind, params, entry.get("after", ())))
        plan = cls(ops)
        plan.validate()
        return plan

    def __repr__(self):
        return "Plan(%d ops: %s)" % (
            len(self.ops),
            ", ".join(op.op_id for op in self.ops),
        )


__all__ = ["OP_KINDS", "Plan", "PlanOp"]
