"""Plan execution: one engine, global dedup, resumable runs.

:class:`PlanEngine` runs a compiled plan against a
:class:`~repro.pipeline.CounterPoint` pipeline. Simulation tasks run
first (each exactly once, however many ops consume them); verdict cells
then execute through the pipeline's
:class:`~repro.results.session.AnalysisSession`, whose content-addressed
memo is the execution-level deduplication tier — a cell any earlier op,
earlier plan, or earlier *process* (via the session's
:class:`~repro.results.store.ArtifactStore`) already answered is never
recomputed, which is also what makes interrupted runs resumable: re-run
the same plan with the same ``cache_dir`` and only pending cells
execute.

Results come back as a :class:`PlanResult` — a keyed, serializable
bundle of the existing :mod:`repro.results` types plus the run's
scheduling/cache statistics. :meth:`PlanEngine.dry_run` prices a plan
without simulating or solving anything: task counts after global
deduplication, the dedup savings, and (where content keys are
computable up front) how many cells the store already answers.
"""

import functools
import time
from collections.abc import Mapping

from repro.errors import AnalysisError, JobCancelled
from repro.obs.trace import OBS_SCHEMA_VERSION, activate, tracer_for
from repro.plan.compiler import compile_plan
from repro.plan.schedulers import SerialScheduler, scheduler_for
from repro.results.base import ResultBase, register, result_from_dict
from repro.results.types import CompareResult, RefutationMatrix


@register
class DatasetSummary(ResultBase):
    """The serializable face of a ``simulate_dataset`` op's output.

    The live :class:`~repro.models.dataset.Observation` objects stay
    in-memory on :attr:`PlanResult.datasets`; this summary is what
    survives JSON.
    """

    kind = "dataset_summary"

    def __init__(self, model_name, names, n_uops, seed):
        self.model_name = model_name
        self.names = list(names)
        self.n_uops = n_uops
        self.seed = seed

    @property
    def n_observations(self):
        return len(self.names)

    def summary(self):
        return "simulated dataset: %d observations of %s (%d uops, seed %d)" % (
            self.n_observations, self.model_name, self.n_uops, self.seed,
        )

    def _payload(self):
        return {
            "model": self.model_name,
            "names": list(self.names),
            "n_uops": self.n_uops,
            "seed": self.seed,
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls(
            payload["model"], payload["names"], payload["n_uops"],
            payload["seed"],
        )

    def __repr__(self):
        return "DatasetSummary(%d x %s)" % (self.n_observations, self.model_name)


@register
class PlanResult(ResultBase, Mapping):
    """A keyed bundle of op results: ``{op_id: result}``.

    A read-only ordered mapping whose values are the familiar
    :mod:`repro.results` types (``AnalysisReport``, ``ModelSweep``,
    ``CompareResult``, ``RefutationMatrix``, :class:`DatasetSummary`),
    plus the run's :attr:`stats` — scheduled simulations/cells after
    global deduplication and how the executed cells split into
    computed / memo-hit / store-hit. ``datasets`` carries the live
    simulated observations per ``simulate_dataset`` op id (in-memory
    only; not serialized).

    ``timing`` is the run's wall-clock breakdown — total, the
    simulation phase, and per-op seconds, stamped with the
    :mod:`repro.obs` schema version. Engine runs always record it;
    hand-built results (and results loaded from pre-observability
    JSON) carry ``None``, and the key is omitted from the payload so
    old golden files stay valid.
    """

    kind = "plan_result"

    def __init__(self, results, stats=None, timing=None, errors=None):
        if isinstance(results, Mapping):
            entries = list(results.items())
        else:
            entries = list(results)
        self._results = dict(entries)
        if len(self._results) != len(entries):
            raise AnalysisError("duplicate op ids in plan result")
        self.stats = dict(stats or {})
        self.timing = None if timing is None else dict(timing)
        # Structured per-op failures from an error-collecting run
        # (PlanEngine.run(collect_errors=True)): op id, op kind, the
        # failed cells' plan-level content keys, and the exception
        # repr. Empty on the default raise-first path, and omitted from
        # the payload when empty so pre-existing golden files and
        # result readers are unaffected.
        self.errors = [dict(entry) for entry in errors or ()]
        self.datasets = {}

    # -- mapping protocol --------------------------------------------------
    def __getitem__(self, op_id):
        return self._results[op_id]

    def __iter__(self):
        return iter(self._results)

    def __len__(self):
        return len(self._results)

    def summary(self):
        lines = ["plan result: %d ops" % len(self._results)]
        if self.errors:
            lines.append("  %d op(s) FAILED:" % len(self.errors))
            for entry in self.errors:
                lines.append("    %s (%s): %s" % (
                    entry.get("op"), entry.get("kind"), entry.get("error"),
                ))
        if self.stats:
            lines.append(
                "  scheduled %d simulations + %d cells (%d requested, "
                "%d deduplicated); %d computed, %d memo hits, %d store hits"
                % (
                    self.stats.get("simulations", 0),
                    self.stats.get("cells", 0),
                    self.stats.get("cells_requested", 0),
                    self.stats.get("deduplicated", 0),
                    self.stats.get("computed", 0),
                    self.stats.get("memo_hits", 0),
                    self.stats.get("store_hits", 0),
                )
            )
        if self.timing is not None:
            lines.append(
                "  %.3fs total (%.3fs simulating)" % (
                    self.timing.get("total_seconds", 0.0),
                    self.timing.get("simulate_seconds", 0.0),
                )
            )
        for op_id, result in self._results.items():
            lines.append("")
            lines.append("== %s ==" % (op_id,))
            lines.append(result.summary())
        return "\n".join(lines)

    def _payload(self):
        payload = {
            "results": {
                op_id: result.to_dict()
                for op_id, result in self._results.items()
            },
            "order": list(self._results),
            "stats": dict(self.stats),
        }
        if self.timing is not None:
            payload["timing"] = dict(self.timing)
        if self.errors:
            payload["errors"] = [dict(entry) for entry in self.errors]
        return payload

    @classmethod
    def _from_payload(cls, payload):
        return cls(
            [
                (op_id, result_from_dict(payload["results"][op_id]))
                for op_id in payload["order"]
            ],
            stats=payload["stats"],
            timing=payload.get("timing"),
            errors=payload.get("errors"),
        )

    def __repr__(self):
        return "PlanResult(%d ops: %s)" % (
            len(self._results), ", ".join(self._results),
        )


@register
class DryRunReport(ResultBase):
    """What a plan *would* execute — priced without solving.

    ``cells`` / ``simulations`` / ``reports`` count scheduled tasks
    after global deduplication; ``cells_requested`` is the total before
    it. ``cache_known_hits`` counts cells whose content keys are
    computable up front (inline/bundled datasets) and already answered
    by the session or its store; ``cache_unknown`` cells depend on
    simulated data, so their cache state is only knowable at run time.
    On a cold cache, a real run's ``computed`` equals ``cells``.
    """

    kind = "plan_dry_run"

    def __init__(self, ops, tasks, cache):
        self.ops = [dict(entry) for entry in ops]
        self.tasks = dict(tasks)
        self.cache = dict(cache)

    def summary(self):
        lines = [
            "dry run: %d simulations, %d verdict cells, %d reports" % (
                self.tasks["simulations"],
                self.tasks["cells"],
                self.tasks["reports"],
            ),
            "  %d cells requested, %d deduplicated away" % (
                self.tasks["cells_requested"], self.tasks["deduplicated"],
            ),
            "  cache: %d known hits, %d unknown until simulated" % (
                self.cache["known_hits"], self.cache["unknown"],
            ),
        ]
        for entry in self.ops:
            lines.append("  %-16s %-16s %d cells" % (
                entry["id"], entry["op"], entry["cells"],
            ))
        return "\n".join(lines)

    def _payload(self):
        return {
            "ops": [dict(entry) for entry in self.ops],
            "tasks": dict(self.tasks),
            "cache": dict(self.cache),
        }

    @classmethod
    def _from_payload(cls, payload):
        return cls(payload["ops"], payload["tasks"], payload["cache"])

    def __repr__(self):
        return "DryRunReport(%d cells, %d simulations)" % (
            self.tasks["cells"], self.tasks["simulations"],
        )


class _InlineObservation:
    """Observation shape for JSON-inlined ``{"name", "point"}`` entries."""

    __slots__ = ("name", "_point")

    def __init__(self, name, point):
        self.name = name
        self._point = dict(point)

    def point(self):
        return dict(self._point)


class PlanEngine:
    """Compile-and-execute front end over one pipeline.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.pipeline.CounterPoint` whose backend,
        confidence, cone cache, session (memo + artifact store), and
        process pool the plan executes against.
    """

    def __init__(self, pipeline):
        self.pipeline = pipeline

    # -- execution ---------------------------------------------------------
    def run(self, plan, scheduler=None, collect_errors=False):
        """Execute ``plan``; returns a :class:`PlanResult`.

        ``scheduler`` overrides the default execution strategy
        (:func:`~repro.plan.schedulers.scheduler_for`: pool when the
        pipeline is parallel, serial otherwise).

        With ``collect_errors`` a failing op no longer aborts the run:
        the op is skipped, its failure is recorded on
        :attr:`PlanResult.errors` as a structured entry — op id, op
        kind, the affected cells' plan-level content keys, and the
        exception repr — and the remaining ops still execute (the
        partial-failure contract the serve daemon reports through).
        The default keeps the facade's historic raise-first behaviour.
        Cancellation (:class:`repro.errors.JobCancelled`) always
        propagates, in either mode.

        The run executes under the pipeline's tracer (or the active
        one): per-op spans, scheduler/cell spans in the layers below,
        and a wall-clock ``timing`` breakdown on the returned
        :class:`PlanResult` either way.
        """
        with activate(tracer_for(self.pipeline)) as tracer:
            with tracer.span("plan.run"):
                return self._execute(plan, scheduler, tracer, collect_errors)

    def _execute(self, plan, scheduler, tracer, collect_errors=False):
        started = time.perf_counter()
        compiled = compile_plan(plan, self.pipeline)
        if scheduler is None:
            scheduler = scheduler_for(self.pipeline)
        session = self.pipeline.session()
        before = session.stats.as_dict()

        sim_started = time.perf_counter()
        datasets = {}
        sim_errors = {}
        for key, task in compiled.sims.items():
            try:
                datasets[key] = scheduler.simulate(self.pipeline, task)
            except JobCancelled:
                raise
            except Exception as error:
                if not collect_errors:
                    raise
                sim_errors[key] = repr(error)
        simulate_seconds = time.perf_counter() - sim_started
        bundled = {
            slot: observations
            for slot, observations in compiled.bundled_sizes.items()
        }

        results = []
        errors = []
        live_datasets = {}
        op_seconds = {}
        # Analyze ops run through session.analyze, which shares the
        # session's tests/memo/store counters with the verdict cells;
        # track their share separately so the plan stats' cell
        # accounting ("computed == cells on a cold cache") stays exact
        # for plans that mix reports and sweeps.
        report_share = {"tests": 0, "memo_hits": 0, "store_hits": 0}
        for op_id in compiled.op_order:
            kind, payload = compiled.assembly[op_id]
            op_started = time.perf_counter()
            try:
                self._run_op(
                    op_id, kind, payload, compiled, datasets, bundled,
                    scheduler, session, tracer, results, live_datasets,
                    report_share,
                )
            except JobCancelled:
                raise
            except Exception as error:
                if not collect_errors:
                    raise
                errors.append(
                    self._op_error(compiled, op_id, kind, payload,
                                   error, sim_errors)
                )
            op_seconds[op_id] = time.perf_counter() - op_started

        after = session.stats.as_dict()
        counts = compiled.counts()
        stats = {
            "simulations": counts["simulations"],
            "cells": counts["cells"],
            "cells_requested": counts["cells_requested"],
            "deduplicated": counts["deduplicated"],
            # Verdict cells only — the analyze ops' share is reported
            # under "reports"/"report_hits" so the cell identities
            # (computed == cells when cold, cells_requested ==
            # computed + memo_hits + store_hits) hold for every plan.
            "computed": (after["tests"] - before["tests"]
                         - report_share["tests"]),
            "memo_hits": (after["memo_hits"] - before["memo_hits"]
                          - report_share["memo_hits"]),
            "store_hits": (after["store_hits"] - before["store_hits"]
                           - report_share["store_hits"]),
            "reports": after["reports"] - before["reports"],
            "report_hits": (report_share["memo_hits"]
                            + report_share["store_hits"]),
        }
        timing = {
            "schema": OBS_SCHEMA_VERSION,
            "total_seconds": time.perf_counter() - started,
            "simulate_seconds": simulate_seconds,
            "sim_backend": getattr(self.pipeline, "sim_backend", "auto"),
            "ops": op_seconds,
        }
        result = PlanResult(results, stats=stats, timing=timing,
                            errors=errors)
        result.datasets = live_datasets
        return result

    def _run_op(self, op_id, kind, payload, compiled, datasets, bundled,
                scheduler, session, tracer, results, live_datasets,
                report_share):
        """Dispatch one assembled op under its ``plan.op`` span."""
        with tracer.span("plan.op", op=op_id, kind=kind):
            if kind == "dataset":
                task = compiled.sims[payload]
                observations = datasets[payload]
                live_datasets[op_id] = observations
                results.append((op_id, DatasetSummary(
                    getattr(task.model, "name", str(task.model)),
                    [observation.name for observation in observations],
                    task.n_uops,
                    task.seed,
                )))
            elif kind == "report":
                pre = session.stats.as_dict()
                report = session.analyze(
                    payload.model, payload.observation,
                    explain=payload.explain,
                )
                post = session.stats.as_dict()
                for counter in report_share:
                    report_share[counter] += post[counter] - pre[counter]
                results.append((op_id, report))
            elif kind == "sweep":
                results.append((op_id, self._run_unit(
                    payload, datasets, bundled, scheduler, session,
                )))
            elif kind == "compare":
                # A list, not a dict: CompareResult's duplicate-name
                # guard must see every sweep.
                results.append((op_id, CompareResult([
                    self._run_unit(
                        unit, datasets, bundled, scheduler, session
                    )
                    for unit in payload
                ])))
            elif kind == "matrix":
                results.append((op_id, RefutationMatrix({
                    observed: CompareResult({
                        candidate: self._run_unit(
                            unit, datasets, bundled, scheduler, session
                        )
                        for candidate, unit in row
                    })
                    for observed, row in payload
                })))

    def _op_error(self, compiled, op_id, kind, payload, error, sim_errors):
        """The structured job-error entry for one failed op: its id and
        kind, every affected cell's plan-level content key, and the
        exception repr — with a failed upstream simulation reported as
        the root cause rather than the downstream ``KeyError``."""
        cells = []
        cause = repr(error)
        for unit in compiled.units:
            if unit.op_id != op_id:
                continue
            cells.extend(unit.cell_keys)
            source = unit.dataset
            if source.kind == "sim" and source.sim_key in sim_errors:
                cause = sim_errors[source.sim_key]
        if kind == "dataset" and payload in sim_errors:
            cause = sim_errors[payload]
        return {"op": op_id, "kind": kind, "cells": cells, "error": cause}

    def _run_unit(self, unit, datasets, bundled, scheduler, session):
        """Execute one (model, dataset, mode) sweep unit.

        Simulated datasets define the cone's counter ordering (the
        ``cross_refute`` rule — so every op touching the same simulated
        cell builds the same cone and shares its verdicts); bundled
        hardware datasets are projected onto the model's counter scope;
        inline observations run exactly like a facade ``sweep`` call.
        """
        observations, counters = self._observations(unit, datasets, bundled)
        cone = self.pipeline.model_cone(unit.model, counters=counters)
        if unit.dataset.kind == "bundled":
            from repro.models.dataset import project_observations

            observations = project_observations(observations, cone)
        return session.sweep(
            cone,
            observations,
            use_regions=unit.use_regions,
            correlated=unit.correlated,
            explain=unit.explain,
            compute=functools.partial(scheduler.compute, session),
        )

    def _observations(self, unit, datasets, bundled):
        source = unit.dataset
        if source.kind == "sim":
            observations = datasets[source.sim_key]
            return observations, observations[0].samples.counters
        if source.kind == "bundled":
            slot = (source.source, repr(float(source.scale)))
            return list(bundled[slot]), None
        return [
            _InlineObservation(entry["name"], entry["point"])
            if isinstance(entry, dict) and set(entry) == {"name", "point"}
            else entry
            for entry in source.observations
        ], None

    # -- pricing -----------------------------------------------------------
    def dry_run(self, plan):
        """Price ``plan`` without simulating or solving anything.

        Returns a :class:`DryRunReport`. Cache probing is best-effort:
        cells over inline or bundled datasets have compile-time content
        keys, so the session memo and artifact store can be consulted;
        cells over simulated data are reported as ``unknown``.
        """
        compiled = compile_plan(plan, self.pipeline)
        session = self.pipeline.session()
        counts = compiled.counts()

        known_hits = 0
        unknown = 0
        probed = set()
        for unit in compiled.units:
            if unit.dataset.kind == "sim":
                fresh = [
                    key for key in unit.cell_keys if key not in probed
                ]
                probed.update(fresh)
                unknown += len(fresh)
                continue
            observations, _ = self._observations(
                unit, {}, compiled.bundled_sizes
            )
            cone = self.pipeline.model_cone(unit.model)
            if unit.dataset.kind == "bundled":
                from repro.models.dataset import project_observations

                observations = project_observations(observations, cone)
            for plan_key, observation in zip(unit.cell_keys, observations):
                if plan_key in probed:
                    continue
                probed.add(plan_key)
                if self._probe_cell(session, cone, unit, observation):
                    known_hits += 1

        ops = []
        for op_id in compiled.op_order:
            op = compiled.plan.op(op_id)
            cells = sum(
                len(unit.cell_keys) for unit in compiled.units
                if unit.op_id == op_id
            )
            ops.append({"id": op_id, "op": op.kind, "cells": cells})
        return DryRunReport(
            ops,
            tasks={
                "simulations": counts["simulations"],
                "cells": counts["cells"],
                "cells_requested": counts["cells_requested"],
                "deduplicated": counts["deduplicated"],
                "reports": counts["reports"],
            },
            cache={"known_hits": known_hits, "unknown": unknown},
        )

    def _probe_cell(self, session, cone, unit, observation):
        """Whether the memo or store already answers one cell (without
        touching hit/miss statistics). ``observation`` is always
        observation-shaped here — ``_observations`` has already wrapped
        inline JSON entries."""
        if unit.use_regions:
            key = session._region_key(
                cone, observation, unit.correlated, unit.explain
            )
        else:
            key = session._point_key(cone, observation, unit.explain)
        if key in session._memo:
            return True
        store = session.store
        return store is not None and store.contains("verdict", key)

    def __repr__(self):
        return "PlanEngine(%r)" % (self.pipeline,)


# Re-exported so `scheduler=SerialScheduler()` reads naturally at call
# sites that import only the engine module.
__all__ = [
    "DatasetSummary",
    "DryRunReport",
    "PlanEngine",
    "PlanResult",
    "SerialScheduler",
]
