"""Declarative analysis plans: whole experiments as data.

``repro.plan`` turns the pipeline's imperative calls into a composable
spec layer: a :class:`Plan` is a JSON-serializable list of ops
(``analyze``, ``sweep``, ``compare``, ``cross_refute``,
``simulate_dataset``) with dependency edges; the planner
(:func:`compile_plan`) flattens it into one content-addressed DAG of
simulation and verdict tasks with *global* deduplication — a sweep, a
compare, and a cross-refutation that touch the same (cone, observation)
cell schedule that cell exactly once — and :class:`PlanEngine` executes
it with a pluggable scheduler (serial, process pool, or a dry run that
prices the campaign without solving). Results come back as a keyed
:class:`PlanResult` bundle of the existing :mod:`repro.results` types;
runs sharing a ``cache_dir`` resume from the artifact store with only
pending tasks re-executed.

The facade is a client: ``CounterPoint.analyze`` / ``sweep`` /
``compare`` / ``cross_refute`` are one-op plans over this engine, so
anything expressible imperatively is expressible as data — and shareable,
priceable, and resumable.
"""

from repro.plan.compiler import CompiledPlan, compile_plan
from repro.plan.engine import (
    DatasetSummary,
    DryRunReport,
    PlanEngine,
    PlanResult,
)
from repro.plan.schedulers import PoolScheduler, SerialScheduler, scheduler_for
from repro.plan.spec import OP_KINDS, Plan, PlanOp

__all__ = [
    "CompiledPlan",
    "DatasetSummary",
    "DryRunReport",
    "OP_KINDS",
    "Plan",
    "PlanEngine",
    "PlanOp",
    "PlanResult",
    "PoolScheduler",
    "SerialScheduler",
    "compile_plan",
    "scheduler_for",
]
