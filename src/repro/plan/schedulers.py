"""Pluggable execution strategies for compiled plans.

A scheduler answers exactly two questions — how simulation tasks run,
and how a batch of pending verdict cells is computed — so swapping one
can never change results, only wall-clock:

* :class:`SerialScheduler` — everything in-process, no pool, nothing
  pickled. The reference semantics.
* :class:`PoolScheduler` — simulation tasks shard by run index and
  verdict batches shard by cell chunk across a
  :class:`~repro.parallel.ParallelRunner` process pool, reusing the
  exact entry points the facade's ``workers=N`` path has always used
  (pooled results are bit-for-bit equal to serial ones).
* :class:`~repro.serve.queue.QueueScheduler` — the serve daemon's
  strategy: every batch becomes a work item on one shared weighted-
  fair queue (per-tenant virtual-time clocks, priority classes,
  bounded-queue backpressure, cooperative cancellation), drained by
  worker threads running the :class:`SerialScheduler` bodies — so
  queued results are bit-for-bit equal to serial ones too.
* the dry-run path (:meth:`repro.plan.engine.PlanEngine.dry_run`) runs
  no scheduler at all — it prices the compiled DAG without simulating
  or solving.

Engines pick a default with :func:`scheduler_for` (pool when the
pipeline is parallel, serial otherwise); pass one explicitly to
override, e.g. forcing a serial run on a ``workers=8`` pipeline.
"""

from repro.obs.trace import get_tracer


def _sim_backend(pipeline, task):
    """The engine a simulation task runs on: the task's own hint when
    set, else the pipeline's ``sim_backend`` (``"auto"`` for pre-knob
    pipelines). Never part of task identity — backends are
    bit-identical."""
    return task.sim_backend or getattr(pipeline, "sim_backend", "auto")


class SerialScheduler:
    """Run every task in-process (the reference execution)."""

    def simulate(self, pipeline, task):
        from repro.sim import simulate_dataset

        backend = _sim_backend(pipeline, task)
        with get_tracer().span(
            "sched.simulate", scheduler="serial",
            runs=task.n_observations, backend=backend,
        ):
            return simulate_dataset(
                task.model,
                task.n_observations,
                n_uops=task.n_uops,
                weights=task.weights,
                seed=task.seed,
                noisy=task.noisy,
                backend=backend,
            )

    def compute(self, session, cone, targets, use_regions, explain):
        from repro.results.session import compute_cell_verdicts

        with get_tracer().span(
            "sched.compute", scheduler="serial", cells=len(targets)
        ):
            return compute_cell_verdicts(
                cone,
                targets,
                backend=session.pipeline.backend,
                use_regions=use_regions,
                explain=explain,
            )

    def __repr__(self):
        return "SerialScheduler()"


class PoolScheduler(SerialScheduler):
    """Shard simulations and verdict batches across a process pool.

    Parameters
    ----------
    runner:
        The :class:`~repro.parallel.ParallelRunner` to dispatch on;
        ``None`` uses the pipeline's own (so the pool is shared with
        every other sharded workload and reaped by ``close()``).
    """

    def __init__(self, runner=None):
        self.runner = runner

    def _runner(self, pipeline):
        return self.runner if self.runner is not None else pipeline.runner()

    def simulate(self, pipeline, task):
        from repro.parallel import parallel_simulate_dataset

        backend = _sim_backend(pipeline, task)
        with get_tracer().span(
            "sched.simulate", scheduler="pool",
            runs=task.n_observations, backend=backend,
        ):
            return parallel_simulate_dataset(
                self._runner(pipeline),
                task.model,
                task.n_observations,
                n_uops=task.n_uops,
                weights=task.weights,
                seed=task.seed,
                noisy=task.noisy,
                backend=backend,
            )

    def compute(self, session, cone, targets, use_regions, explain):
        if len(targets) <= 1:
            return SerialScheduler.compute(
                self, session, cone, targets, use_regions, explain
            )
        # Imported at call time, like the session's own parallel path,
        # so tests patching the module attribute see every dispatch.
        from repro.parallel.tasks import dispatch_verdicts

        pipeline = session.pipeline
        with get_tracer().span(
            "sched.compute", scheduler="pool", cells=len(targets)
        ):
            return dispatch_verdicts(
                self._runner(pipeline),
                cone,
                targets,
                backend=pipeline.backend,
                use_regions=use_regions,
                explain=explain,
            )

    def __repr__(self):
        return "PoolScheduler(%r)" % (self.runner,)


def scheduler_for(pipeline):
    """The default scheduler for a pipeline: pool when the pipeline is
    parallel (``workers > 1`` or ``None``), serial otherwise."""
    if pipeline._parallel():
        return PoolScheduler()
    return SerialScheduler()


__all__ = ["PoolScheduler", "SerialScheduler", "scheduler_for"]
