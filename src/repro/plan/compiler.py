"""The planner: compile a :class:`~repro.plan.spec.Plan` into a task DAG.

Every op in a plan expands into flat, content-addressed tasks:

* **simulation tasks** — one per distinct simulation spec (model
  content, dataset size, µop budget, seed, weights, noise). A named
  ``simulate_dataset`` op and a ``cross_refute`` row that draw the same
  dataset share one task.
* **verdict cells** — one per (model, observation, mode) feasibility
  question, keyed by model content + the observation's provenance
  (simulation task + run index, bundled dataset slot, or the inline
  observation's content hash). Overlapping ``sweep`` / ``compare`` /
  ``cross_refute`` ops that touch the same cell schedule it **once**.
* **report tasks** — one per distinct ``analyze`` question.

The compiler only *plans* — nothing is simulated or solved here (the
bundled hardware datasets are materialized to learn their size, but no
LP runs). The engine executes the graph; the dry-run scheduler prices
it. At execution time each cell additionally resolves to the
:class:`~repro.results.session.AnalysisSession` content key — the
plan-level keys drive scheduling and deduplication, the session keys
drive memoization, persistence, and resume.
"""

from repro.errors import AnalysisError
from repro.results.store import content_key


class SimTask:
    """One deduplicated dataset simulation.

    ``sim_backend`` is an execution hint (which engine runs the
    simulation), not part of the task's content key — every backend
    draws identical observations, so two ops differing only in backend
    still share one task (first spec wins the hint).
    """

    __slots__ = ("key", "model", "n_observations", "n_uops", "seed",
                 "weights", "noisy", "sim_backend")

    def __init__(self, key, model, n_observations, n_uops, seed, weights,
                 noisy, sim_backend=None):
        self.key = key
        self.model = model
        self.n_observations = n_observations
        self.n_uops = n_uops
        self.seed = seed
        self.weights = weights
        self.noisy = noisy
        self.sim_backend = sim_backend

    def __repr__(self):
        return "SimTask(%s x %d uops of %s, seed %d)" % (
            self.n_observations, self.n_uops,
            getattr(self.model, "name", self.model), self.seed,
        )


class DatasetSource:
    """Where a sweep unit's observations come from."""

    __slots__ = ("kind", "sim_key", "source", "scale", "observations")

    def __init__(self, kind, sim_key=None, source=None, scale=1.0,
                 observations=None):
        self.kind = kind                    # "sim" | "bundled" | "inline"
        self.sim_key = sim_key
        self.source = source
        self.scale = scale
        self.observations = observations


class SweepUnit:
    """One (model, dataset, mode) sweep — the assembly unit of every
    matrix-shaped op. Its ``cell_keys`` are the plan-level task keys of
    its verdict cells, shared with any other unit touching the same
    content."""

    __slots__ = ("op_id", "model", "dataset", "use_regions", "correlated",
                 "explain", "cell_keys")

    def __init__(self, op_id, model, dataset, use_regions, correlated,
                 explain, cell_keys):
        self.op_id = op_id
        self.model = model
        self.dataset = dataset
        self.use_regions = use_regions
        self.correlated = correlated
        self.explain = explain
        self.cell_keys = cell_keys


class ReportUnit:
    """One ``analyze`` op: a single observation against a single model."""

    __slots__ = ("op_id", "model", "observation", "explain", "key")

    def __init__(self, op_id, model, observation, explain, key):
        self.op_id = op_id
        self.model = model
        self.observation = observation
        self.explain = explain
        self.key = key


class CompiledPlan:
    """The flat task DAG and the per-op result-assembly recipes.

    Attributes
    ----------
    op_order:
        Execution order (topological, declaration-order tie-break).
    sims:
        ``{sim_key: SimTask}`` in first-use order, globally deduplicated.
    units:
        Every :class:`SweepUnit` in execution order.
    reports:
        Every :class:`ReportUnit`, deduplicated by content key.
    assembly:
        ``{op_id: (kind, payload)}`` describing how each op's result is
        assembled from units/tasks.
    cell_keys:
        The set of distinct verdict-cell task keys.
    cells_requested:
        Total cells over all units *before* deduplication — the
        difference against ``len(cell_keys)`` is the work the plan
        layer saves.
    """

    def __init__(self, plan, op_order):
        self.plan = plan
        self.op_order = op_order
        self.sims = {}
        self.units = []
        self.reports = []
        self.assembly = {}
        self.cell_keys = set()
        self.cells_requested = 0
        self.bundled_sizes = {}

    def counts(self):
        """Task totals for pricing (the dry-run report's raw material)."""
        return {
            "simulations": len(self.sims),
            "cells": len(self.cell_keys),
            "cells_requested": self.cells_requested,
            "deduplicated": self.cells_requested - len(self.cell_keys),
            "reports": len({report.key for report in self.reports}),
        }


def _looks_like_dsl(text):
    """The :func:`repro.sim.as_mudd` heuristic: statement terminators
    or switch blocks mean DSL source, anything else is a bundled name."""
    return ";" in text or "{" in text


def _model_token(model):
    """Content identity of a model argument, for task keys.

    Live cones key by cone fingerprint (their counter ordering is part
    of verdict identity); µDDs and strings key by the canonical µDD
    fingerprint, which ignores naming — so a bundled name and its DSL
    source produce the same token.
    """
    fingerprint = getattr(model, "fingerprint", None)
    if callable(fingerprint):                       # a ready ModelCone
        return ("cone", fingerprint())
    from repro.cone.cache import mudd_fingerprint

    if isinstance(model, str):
        from repro.sim import as_mudd

        return ("mudd", mudd_fingerprint(as_mudd(model)))
    return ("mudd", mudd_fingerprint(model))


def _resolve_model(model):
    """The object the engine will hand to ``pipeline.model_cone``.

    Bundled names must resolve here (``model_cone`` treats bare strings
    as DSL source); DSL source stays a string so facade-routed plans
    build cones exactly the way the pre-plan pipeline did.
    """
    if isinstance(model, str) and not _looks_like_dsl(model):
        from repro.sim import as_mudd

        return as_mudd(model)
    return model


def _mode_token(use_regions, correlated, explain, pipeline):
    if use_regions:
        mode = ("region", bool(correlated), repr(float(pipeline.confidence)))
    else:
        mode = ("point",)
    return mode + (bool(explain), pipeline.backend)


def _observation_token(observation, use_regions):
    from repro.results.fingerprint import observation_fingerprint

    if isinstance(observation, dict) and set(observation) == {"name", "point"}:
        return ("obs", observation_fingerprint(observation["point"]))
    return ("obs", observation_fingerprint(observation, samples=use_regions))


def _bundled_size(compiled, source, scale):
    """Observation count of a bundled hardware dataset (materialized
    once per (source, scale) and cached for the engine to reuse)."""
    slot = (source, repr(float(scale)))
    if slot not in compiled.bundled_sizes:
        from repro.models.dataset import noisy_dataset, standard_dataset

        if source == "standard":
            observations = standard_dataset(scale=scale)
        elif source == "noisy":
            observations = noisy_dataset(scale=scale)
        else:
            raise AnalysisError(
                "unknown bundled dataset %r (known: standard, noisy)" % (source,)
            )
        compiled.bundled_sizes[slot] = list(observations)
    return len(compiled.bundled_sizes[slot])


def _sim_task(compiled, model, n_observations, n_uops, seed, weights, noisy,
              sim_backend=None):
    """Intern one simulation spec, returning its content-addressed key.

    ``sim_backend`` deliberately stays out of the key — backends are
    bit-identical, so it must not split otherwise-equal tasks."""
    resolved = _resolve_model(model)
    key = content_key(
        "plan-sim",
        _model_token(resolved),
        int(n_observations),
        int(n_uops),
        int(seed),
        repr(weights),
        bool(noisy),
    )
    if key not in compiled.sims:
        compiled.sims[key] = SimTask(
            key, resolved, int(n_observations), int(n_uops), int(seed),
            weights, bool(noisy), sim_backend,
        )
    return key


def _dataset_source(compiled, op, sim_keys):
    """Resolve an op's dataset spec to a :class:`DatasetSource` and the
    per-cell dataset tokens."""
    spec = op.params["dataset"]
    if "ref" in spec:
        key = sim_keys[spec["ref"]]
        task = compiled.sims[key]
        tokens = [("sim", key, index) for index in range(task.n_observations)]
        return DatasetSource("sim", sim_key=key), tokens
    if "simulate" in spec:
        inner = dict(spec["simulate"])
        model = inner.pop("model", None)
        if model is None:
            raise AnalysisError(
                "plan op %r: a 'simulate' dataset spec needs a model"
                % (op.op_id,)
            )
        key = _sim_task(
            compiled,
            model,
            inner.pop("n_observations", 3),
            inner.pop("n_uops", 20000),
            inner.pop("seed", 0),
            inner.pop("weights", None),
            inner.pop("noisy", False),
            inner.pop("sim_backend", None),
        )
        if inner:
            raise AnalysisError(
                "plan op %r: unknown simulate-dataset options %s"
                % (op.op_id, ", ".join(sorted(inner)))
            )
        task = compiled.sims[key]
        tokens = [("sim", key, index) for index in range(task.n_observations)]
        return DatasetSource("sim", sim_key=key), tokens
    if "source" in spec:
        source = spec["source"]
        scale = float(spec.get("scale", 1.0))
        size = _bundled_size(compiled, source, scale)
        tokens = [
            ("bundled", source, repr(scale), index) for index in range(size)
        ]
        return DatasetSource("bundled", source=source, scale=scale), tokens
    observations = list(spec["inline"])
    use_regions = bool(op.params.get("use_regions", False))
    tokens = [
        _observation_token(observation, use_regions)
        for observation in observations
    ]
    return DatasetSource("inline", observations=observations), tokens


def _sweep_unit(compiled, pipeline, op_id, model, dataset, tokens,
                use_regions, correlated, explain):
    resolved = _resolve_model(model)
    mode = _mode_token(use_regions, correlated, explain, pipeline)
    model_token = _model_token(resolved)
    cell_keys = [
        content_key("plan-cell", model_token, token, mode) for token in tokens
    ]
    compiled.cells_requested += len(cell_keys)
    compiled.cell_keys.update(cell_keys)
    unit = SweepUnit(
        op_id, resolved, dataset, bool(use_regions), bool(correlated),
        bool(explain), cell_keys,
    )
    compiled.units.append(unit)
    return unit


def compile_plan(plan, pipeline):
    """Expand ``plan`` into a :class:`CompiledPlan` against ``pipeline``
    (whose backend/confidence are part of every cell's identity)."""
    op_order = plan.validate()
    compiled = CompiledPlan(plan, op_order)
    sim_keys = {}      # simulate_dataset op id -> sim task key

    for op_id in op_order:
        op = plan.op(op_id)
        if op.kind == "simulate_dataset":
            sim_keys[op_id] = _sim_task(
                compiled,
                op.params["model"],
                op.params["n_observations"],
                op.params["n_uops"],
                op.params["seed"],
                op.params["weights"],
                op.params["noisy"],
                op.params.get("sim_backend"),
            )
            compiled.assembly[op_id] = ("dataset", sim_keys[op_id])
        elif op.kind == "analyze":
            resolved = _resolve_model(op.params["model"])
            observation = op.params["observation"]
            key = content_key(
                "plan-report",
                _model_token(resolved),
                _observation_token(observation, use_regions=False),
                pipeline.backend,
                bool(op.params["explain"]),
            )
            unit = ReportUnit(
                op_id, resolved, observation, bool(op.params["explain"]), key
            )
            compiled.reports.append(unit)
            compiled.assembly[op_id] = ("report", unit)
        elif op.kind == "sweep":
            dataset, tokens = _dataset_source(compiled, op, sim_keys)
            unit = _sweep_unit(
                compiled, pipeline, op_id, op.params["model"], dataset,
                tokens, op.params["use_regions"], op.params["correlated"],
                op.params["explain"],
            )
            compiled.assembly[op_id] = ("sweep", unit)
        elif op.kind == "compare":
            dataset, tokens = _dataset_source(compiled, op, sim_keys)
            units = [
                _sweep_unit(
                    compiled, pipeline, op_id, model, dataset, tokens,
                    op.params["use_regions"], op.params["correlated"],
                    op.params["explain"],
                )
                for model in op.params["models"]
            ]
            compiled.assembly[op_id] = ("compare", units)
        elif op.kind == "cross_refute":
            from repro.parallel.runner import split_seeds
            from repro.sim import as_mudd

            mudds = [as_mudd(model) for model in op.params["models"]]
            row_seeds = split_seeds(
                op.params["seed"], len(mudds), stride=1000
            )
            rows = []
            for observed, row_seed in zip(mudds, row_seeds):
                key = _sim_task(
                    compiled,
                    observed,
                    op.params["n_observations"],
                    op.params["n_uops"],
                    row_seed,
                    op.params["weights"],
                    False,
                )
                task = compiled.sims[key]
                tokens = [
                    ("sim", key, index)
                    for index in range(task.n_observations)
                ]
                dataset = DatasetSource("sim", sim_key=key)
                row_units = [
                    _sweep_unit(
                        compiled, pipeline, op_id, candidate, dataset,
                        tokens, False, True, op.params["explain"],
                    )
                    for candidate in mudds
                ]
                rows.append((observed.name, [
                    (candidate.name, unit)
                    for candidate, unit in zip(mudds, row_units)
                ]))
            compiled.assembly[op_id] = ("matrix", rows)
    return compiled


__all__ = [
    "CompiledPlan",
    "DatasetSource",
    "ReportUnit",
    "SimTask",
    "SweepUnit",
    "compile_plan",
]
