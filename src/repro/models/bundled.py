"""Bundled DSL models — the shareable µDD library.

The paper commits to sharing its MMU µDDs "to help seed the development
of improved MMU models in widely used software simulators". This module
is that artifact: curated, documented DSL sources shipped inside the
package, loadable by name.

>>> from repro.models.bundled import load_bundled_model, bundled_model_names
>>> sorted(bundled_model_names())[:2]
['merging_load_side', 'no_merging_load_side']
>>> mudd = load_bundled_model("pde_initial")
"""

import os

from repro.dsl import compile_dsl
from repro.errors import ConfigurationError

_DSL_DIR = os.path.join(os.path.dirname(__file__), "dsl")


def bundled_model_names():
    """Names of all shipped DSL models."""
    names = []
    for filename in sorted(os.listdir(_DSL_DIR)):
        if filename.endswith(".dsl"):
            names.append(filename[: -len(".dsl")])
    return names


def bundled_model_source(name):
    """The DSL source text of a bundled model."""
    path = os.path.join(_DSL_DIR, name + ".dsl")
    if not os.path.exists(path):
        raise ConfigurationError(
            "no bundled model %r (available: %s)"
            % (name, ", ".join(bundled_model_names()))
        )
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def load_bundled_model(name):
    """Compile a bundled model into a validated µDD."""
    return compile_dsl(bundled_model_source(name), name=name)
