"""Microarchitectural feature flags and the Table 3 model zoo."""

TLB_PF = "TlbPf"
EARLY_PSC = "EarlyPsc"
MERGING = "Merging"
PML4E_CACHE = "Pml4eCache"
WALK_BYPASS = "WalkBypass"

FEATURES = (TLB_PF, EARLY_PSC, MERGING, PML4E_CACHE, WALK_BYPASS)

# Table 3: the µDDs explored in the initial search, identified by their
# feature sets. m4 (starred in the paper) and m8 are the feasible ones.
M_SERIES = {
    "m0": frozenset(),
    "m1": frozenset({TLB_PF}),
    "m2": frozenset({TLB_PF, EARLY_PSC, MERGING}),
    "m3": frozenset({TLB_PF, EARLY_PSC, MERGING, PML4E_CACHE}),
    "m4": frozenset({TLB_PF, EARLY_PSC, MERGING, PML4E_CACHE, WALK_BYPASS}),
    "m5": frozenset({EARLY_PSC, MERGING, PML4E_CACHE, WALK_BYPASS}),
    "m6": frozenset({TLB_PF, MERGING, PML4E_CACHE, WALK_BYPASS}),
    "m7": frozenset({TLB_PF, EARLY_PSC, PML4E_CACHE, WALK_BYPASS}),
    "m8": frozenset({TLB_PF, EARLY_PSC, MERGING, WALK_BYPASS}),
    "m9": frozenset({EARLY_PSC, MERGING, WALK_BYPASS}),
    "m10": frozenset({TLB_PF, MERGING, WALK_BYPASS}),
    "m11": frozenset({TLB_PF, EARLY_PSC, WALK_BYPASS}),
}

# Descriptions straight out of Table 4.
FEATURE_DESCRIPTIONS = {
    TLB_PF: "Prefetches form an additional kind of translation request",
    EARLY_PSC: "Paging structure caches are looked up before starting a walk",
    MERGING: "Page table walks can be merged by an L2TLB MSHR",
    PML4E_CACHE: "There exists a paging structure cache for the root (PML4E) level",
    WALK_BYPASS: "Walks can complete without making visible memory accesses",
}
