"""The a-series: translation-request aborts vs walk bypassing (§C.3).

Starting from t0 (the representative trigger model), walk bypassing is
*removed* and translation-request aborts are allowed at progressively
more pipeline stages (Table 7). The paper finds none of these feasible:
aborted requests never produce ``walk_done``, so they cannot explain
observations whose completed walks outnumber walker references.
"""

from repro.models.features import M_SERIES, WALK_BYPASS
from repro.models.haswell import (
    ABORT_AFTER_L1TLB,
    ABORT_AFTER_L2TLB,
    ABORT_AFTER_PSC,
    ABORT_DURING_WALK,
    build_mudd,
)
from repro.models.prefetch_triggers import T_SERIES

# Table 7: cumulative abort points per model.
A_SERIES = {
    "a0": (ABORT_DURING_WALK,),
    "a1": (ABORT_DURING_WALK, ABORT_AFTER_PSC),
    "a2": (ABORT_DURING_WALK, ABORT_AFTER_PSC, ABORT_AFTER_L2TLB),
    "a3": (
        ABORT_DURING_WALK,
        ABORT_AFTER_PSC,
        ABORT_AFTER_L2TLB,
        ABORT_AFTER_L1TLB,
    ),
}


def build_abort_mudd(abort_points, name=None):
    """A t0 derivative: walk bypassing replaced by request aborts."""
    features = M_SERIES["m4"] - {WALK_BYPASS}
    if name is None:
        name = "abort[%s]" % ",".join(abort_points)
    return build_mudd(
        features, trigger=T_SERIES["t0"], aborts=tuple(abort_points), name=name
    )
