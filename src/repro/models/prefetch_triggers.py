"""The t-series: TLB-prefetch trigger-condition models (Appendix C.2).

These models refine m4 by removing the abstract free-standing prefetch
request type and attaching prefetch emission directly to the µop paths
that could have triggered it. Table 6's candidate conditions:

* ``speculative`` — prefetches may be triggered by purely speculative
  µops (otherwise only retiring ones),
* ``load`` / ``store`` — which µop kinds can trigger,
* ``dtlb_miss`` / ``stlb_miss`` — the trigger fires from the demand miss
  stream of that TLB level (otherwise it fires *before* any TLB lookup,
  i.e. in the load/store queue).
"""

from repro.errors import ConfigurationError
from repro.models.features import M_SERIES


class TriggerSpec:
    """A prefetch trigger condition (one Table 5 row)."""

    __slots__ = ("speculative", "load", "store", "dtlb_miss", "stlb_miss")

    def __init__(self, speculative, load, store, dtlb_miss=False, stlb_miss=False):
        if not (load or store):
            raise ConfigurationError("a trigger needs at least one µop kind")
        if dtlb_miss and stlb_miss:
            raise ConfigurationError(
                "dtlb_miss and stlb_miss trigger points are mutually exclusive"
            )
        self.speculative = speculative
        self.load = load
        self.store = store
        self.dtlb_miss = dtlb_miss
        self.stlb_miss = stlb_miss

    def _key(self):
        return (self.speculative, self.load, self.store, self.dtlb_miss, self.stlb_miss)

    def __eq__(self, other):
        if not isinstance(other, TriggerSpec):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        parts = []
        if self.speculative:
            parts.append("spec")
        if self.load:
            parts.append("load")
        if self.store:
            parts.append("store")
        if self.dtlb_miss:
            parts.append("dtlb-miss")
        if self.stlb_miss:
            parts.append("stlb-miss")
        return "TriggerSpec(%s)" % "+".join(parts)


def _series():
    """Table 5's eighteen trigger models."""
    table = {}
    index = 0
    for speculative in (True, False):
        for load, store in ((True, False), (False, True), (True, True)):
            for dtlb, stlb in ((False, False), (True, False), (False, True)):
                table["t%d" % index] = TriggerSpec(
                    speculative, load, store, dtlb_miss=dtlb, stlb_miss=stlb
                )
                index += 1
    return table


T_SERIES = _series()


def build_trigger_mudd(spec, name=None):
    """A t-series µDD: m4's feature set with prefetches attached to
    their triggering µop paths per ``spec``."""
    from repro.models.haswell import build_mudd

    if name is None:
        name = "trigger[%r]" % (spec,)
    return build_mudd(M_SERIES["m4"], trigger=spec, name=name)
