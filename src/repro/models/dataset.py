"""The observation dataset: the workload matrix run on "hardware".

The paper's dataset is ~20M HEC samples from GAPBS/SPEC/PARSEC/YCSB plus
linear/random microbenchmarks, swept over footprints and 4K/2M/1G page
sizes. Our dataset is the same *shape*: every workload family, each run
on the full-Haswell simulator at one page size, yielding (i) exact
ground-truth counter totals and (ii) a perf-style interval sample matrix
for the noise experiments.

Revisit runs use an explicit warm phase (excluded from measurement,
like measuring after a program's init phase): the warm stream sets page
accessed bits so demand walks stop replaying and translation prefetches
stop aborting — the regime that exposes the prefetcher.
"""

import zlib
from functools import lru_cache

from repro.counters.multiplexing import MultiplexingSimulator
from repro.counters.sampling import collect_interval_samples
from repro.mmu import MMUConfig, MMUSimulator
from repro.workloads import (
    BfsWorkload,
    LinearAccessWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StreamWorkload,
    ZipfianKVWorkload,
)

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class Observation:
    """One measured run: exact totals plus an interval sample matrix."""

    def __init__(self, name, page_size, totals, samples, meta=None):
        self.name = name
        self.page_size = page_size
        self.totals = dict(totals)
        self.samples = samples
        self.meta = dict(meta or {})

    def point(self):
        """The exact ground-truth totals (counter name -> count)."""
        return dict(self.totals)

    def region(self, confidence=0.99, correlated=True):
        """Confidence region summarising the (possibly noisy) samples."""
        return self.samples.confidence_region(
            confidence=confidence, correlated=correlated
        )

    def fingerprint(self, samples=False):
        """Content hash of the observation's measured data.

        ``samples=False`` (the point-analysis view) hashes the exact
        counter totals; ``samples=True`` (the region-analysis view)
        hashes the full interval sample matrix, since region verdicts
        depend on every sample. The observation's *name* and metadata
        are excluded — verdicts are content-addressed, so re-measuring
        identical data under a new run name still hits the memo
        (:class:`repro.results.session.AnalysisSession`).
        """
        if samples:
            from repro.results.fingerprint import sample_matrix_fingerprint

            return sample_matrix_fingerprint(self.samples)
        # Delegate to the shared dict hash so an Observation and its
        # bare .point() mapping produce the same content key.
        from repro.results.fingerprint import observation_fingerprint

        return observation_fingerprint(self.point())

    def __repr__(self):
        return "Observation(%r, %s)" % (self.name, self.page_size)


class RunSpec:
    """Recipe for one observation."""

    def __init__(self, name, workload, page_size, n_ops, warm=None, warm_ops=0):
        self.name = name
        self.workload = workload
        self.page_size = page_size
        self.n_ops = n_ops
        self.warm = warm
        self.warm_ops = warm_ops


def _warm_stream(footprint_bytes):
    """One store per 4K frame: sets accessed bits, warms caches."""
    return LinearAccessWorkload(footprint_bytes, stride=4096, load_store_ratio=0.0)


def _stable_seed(name):
    """Deterministic seed from a run name (``hash()`` is salted)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFF


def _interval_schedule(base_ops, n_ops, phase_jitter, seed):
    """Fixed wall-clock sampling of a phased program: the µop count per
    interval varies with throughput, so all counters co-vary positively
    across intervals — the intrinsic correlation CounterPoint exploits
    (Section 4)."""
    import random as _random

    if phase_jitter <= 0:
        return base_ops
    rng = _random.Random(seed)
    schedule = []
    total = 0
    while total < n_ops:
        factor = 1.0 + phase_jitter * (2.0 * rng.random() - 1.0)
        size = max(50, int(base_ops * factor))
        schedule.append(size)
        total += size
    return schedule


def run_observation(spec, interval_ops=1000, multiplexer=None, phase_jitter=0.6):
    """Execute one :class:`RunSpec` on the full-Haswell simulator.

    ``phase_jitter`` modulates the per-interval µop count (fixed-time
    sampling of a phased program); set it to 0 for fixed-size intervals.
    """
    simulator = MMUSimulator(MMUConfig.full_haswell(), page_size=spec.page_size)
    if spec.warm is not None:
        simulator.run(spec.warm.ops(spec.warm_ops))
    base = simulator.snapshot()
    schedule = _interval_schedule(
        interval_ops, spec.n_ops, phase_jitter, seed=_stable_seed(spec.name)
    )
    intervals = []
    for delta in simulator.run_intervals(spec.workload.ops(spec.n_ops), schedule):
        intervals.append(delta)
    counters = sorted(base)
    samples = collect_interval_samples(counters, intervals, multiplexer=multiplexer)
    final = simulator.snapshot()
    totals = {name: final[name] - base[name] for name in final}
    return Observation(
        spec.name,
        spec.page_size,
        totals,
        samples,
        meta=spec.workload.describe(),
    )


def standard_runspecs(scale=1.0):
    """The workload matrix (Section 7.1's sweep, at simulator scale)."""

    def ops(n):
        return max(2000, int(n * scale))

    def revisit(name, footprint, n, load_store_ratio=0.98, descending=False):
        return RunSpec(
            name,
            LinearAccessWorkload(
                footprint,
                stride=64,
                load_store_ratio=load_store_ratio,
                descending=descending,
            ),
            "4k",
            ops(n),
            warm=_warm_stream(footprint),
            warm_ops=footprint // 4096,
        )

    specs = [
        # --- 4K linear microbenchmarks -------------------------------
        RunSpec("lin4k-fresh-loads", LinearAccessWorkload(64 * MB, stride=64), "4k", ops(30000)),
        RunSpec(
            "lin4k-fresh-mix",
            LinearAccessWorkload(64 * MB, stride=64, load_store_ratio=0.75),
            "4k",
            ops(30000),
        ),
        RunSpec(
            "lin4k-fresh-stores",
            LinearAccessWorkload(64 * MB, stride=64, load_store_ratio=0.0),
            "4k",
            ops(30000),
        ),
        revisit("lin4k-revisit-a", 16 * MB, 35000),
        revisit("lin4k-revisit-b", 24 * MB, 35000),
        revisit("lin4k-revisit-desc", 16 * MB, 35000, descending=True),
        revisit("lin4k-revisit-mix", 16 * MB, 35000, load_store_ratio=0.95),
        # Partial prefetch coverage: every 5th op is a store, breaking
        # the 51/52 load pair on 2 of 5 pages — a mix of prefetch and
        # demand walks (the Section 2 tightness study's regime).
        revisit("lin4k-revisit-partial", 16 * MB, 35000, load_store_ratio=0.8),
        RunSpec(
            "lin4k-stride192",
            LinearAccessWorkload(32 * MB, stride=192, load_store_ratio=0.9),
            "4k",
            ops(30000),
            warm=_warm_stream(32 * MB),
            warm_ops=(32 * MB) // 4096,
        ),
        RunSpec(
            "lin4k-stride4k",
            LinearAccessWorkload(128 * MB, stride=4096, load_store_ratio=0.9),
            "4k",
            ops(30000),
        ),
        # --- 4K random / suite workloads ------------------------------
        RunSpec("rnd4k-small", RandomAccessWorkload(8 * MB, 0.75, seed=11), "4k", ops(30000)),
        RunSpec("rnd4k-large", RandomAccessWorkload(256 * MB, 0.75, seed=12), "4k", ops(30000)),
        RunSpec("bfs4k", BfsWorkload(64 * MB, seed=13), "4k", ops(30000)),
        RunSpec("ptr4k", PointerChaseWorkload(64 * MB, spec_fraction=0.08, seed=14), "4k", ops(30000)),
        RunSpec("stream4k", StreamWorkload(96 * MB), "4k", ops(30000)),
        RunSpec("zipf4k", ZipfianKVWorkload(128 * MB, seed=15), "4k", ops(30000)),
        # --- 2M page runs ----------------------------------------------
        RunSpec(
            "lin2m-fresh",
            LinearAccessWorkload(4 * GB, stride=32768, load_store_ratio=0.9),
            "2m",
            ops(30000),
        ),
        RunSpec(
            "lin2m-revisit",
            LinearAccessWorkload(4 * GB, stride=262144, load_store_ratio=0.9),
            "2m",
            ops(33000),
            warm=LinearAccessWorkload(4 * GB, stride=2 * MB, load_store_ratio=0.0),
            warm_ops=(4 * GB) // (2 * MB),
        ),
        RunSpec("rnd2m", RandomAccessWorkload(8 * GB, 0.75, seed=16), "2m", ops(30000)),
        RunSpec("zipf2m", ZipfianKVWorkload(8 * GB, seed=17), "2m", ops(30000)),
        # --- 1G page runs ----------------------------------------------
        RunSpec(
            "lin1g-mixed",
            LinearAccessWorkload(8 * GB, stride=1 * MB, load_store_ratio=0.9),
            "1g",
            ops(24000),
        ),
        RunSpec(
            "lin1g-revisit",
            LinearAccessWorkload(8 * GB, stride=2 * MB, load_store_ratio=0.9),
            "1g",
            ops(24000),
            warm=LinearAccessWorkload(8 * GB, stride=1 * GB, load_store_ratio=0.0),
            warm_ops=8,
        ),
        RunSpec("rnd1g", RandomAccessWorkload(16 * GB, 0.75, seed=18), "1g", ops(20000)),
        RunSpec("zipf1g", ZipfianKVWorkload(32 * GB, seed=19), "1g", ops(20000)),
    ]
    return specs


@lru_cache(maxsize=4)
def standard_dataset(scale=1.0, interval_ops=1000):
    """Run the full workload matrix once and memoise the observations."""
    return tuple(
        run_observation(spec, interval_ops=interval_ops)
        for spec in standard_runspecs(scale=scale)
    )


def borderline_runspecs(scale=1.0):
    """Light-merging random workloads whose constraint violations sit
    close to the feasibility boundary — the regime where correlated
    confidence regions outperform independent ones (Figure 3d)."""
    from repro.workloads import RandomAccessWorkload

    def ops(n):
        return max(2000, int(n * scale))

    return [
        RunSpec(
            "rnd4k-border-%dmb" % footprint_mb,
            RandomAccessWorkload(footprint_mb * MB, 0.9, seed=20 + footprint_mb),
            "4k",
            ops(30000),
        )
        for footprint_mb in (4, 6, 8, 12)
    ]


@lru_cache(maxsize=2)
def noisy_dataset(scale=1.0, n_physical=4, interval_ops=400, phase_jitter=0.9):
    """Multiplexed, phase-jittered measurements for the noise studies.

    Parameters follow the tuning of the Section 7.1 reproduction: enough
    intervals for a usable covariance estimate (M well above the counter
    count), fixed-time sampling of a phased program (intrinsic positive
    correlations), and perf-style multiplexing over ``n_physical``
    counters.
    """
    specs = standard_runspecs(scale=scale)[:8] + borderline_runspecs(scale=scale)
    observations = []
    for spec in specs:
        multiplexer = MultiplexingSimulator(
            n_physical=n_physical,
            slices_per_interval=48,
            phase_noise=0.3,
            seed=_stable_seed(spec.name),
        )
        observations.append(
            run_observation(
                spec,
                interval_ops=interval_ops,
                multiplexer=multiplexer,
                phase_jitter=phase_jitter,
            )
        )
    return tuple(observations)


def project_observations(observations, cone):
    """Restrict dataset observations to a cone's counter scope.

    The bundled hardware datasets carry the full 26-counter Haswell
    space; a DSL model usually covers a subset. Like the perf-CSV
    analysis path, the measurement is projected onto the model's
    counters — a counter the model never mentions cannot refute it. A
    counter the model *does* mention but the dataset lacks is an error.
    """
    from repro.errors import ReproError

    observations = list(observations)
    if not observations:
        return observations
    first = observations[0]
    missing = [name for name in cone.counters if name not in first.totals]
    if missing:
        raise ReproError(
            "dataset lacks model counters: %s" % ", ".join(missing)
        )
    if all(name in cone.counters for name in first.totals):
        return observations
    return [
        Observation(
            observation.name,
            observation.page_size,
            {name: observation.totals[name] for name in cone.counters},
            observation.samples.subset(cone.counters),
            meta=observation.meta,
        )
        for observation in observations
    ]
