"""The Appendix C.4 walk-replay model.

Replaces t0's opaque "walk bypassing" with the mechanism an Intel patent
describes: speculative walks can be aborted (e.g. on unset
accessed/dirty bits) and replayed at µop retirement; the replay's
memory references are non-speculative and are not captured by the
``walk_ref`` counters. Counter-wise a replayed walk therefore completes
with zero visible references — the same signatures as walk bypassing —
*plus* abort paths for the speculative first attempt.

The paper's finding, which the Table 3/5 benchmarks reproduce: this
model is feasible, but only while merging (and the other discovered
features) remain in the model.
"""

from repro.errors import ConfigurationError
from repro.models.features import M_SERIES, MERGING, TLB_PF, WALK_BYPASS
from repro.models.haswell import ABORT_DURING_WALK, build_mudd
from repro.models.prefetch_triggers import T_SERIES


def build_replay_mudd(include_merging=True, include_prefetch=True, name=None):
    """The walk-replay model, optionally ablating other features.

    ``include_merging=False`` reproduces the paper's observation that
    removing miss-merging makes the replay model infeasible.
    """
    features = set(M_SERIES["m4"])
    # WalkBypass stays: replayed walks complete with no visible refs —
    # the replay mechanism *explains* bypassing rather than removing it.
    if WALK_BYPASS not in features:
        raise ConfigurationError("m4 must include WalkBypass")
    if not include_merging:
        features.discard(MERGING)
    trigger = T_SERIES["t0"]
    if not include_prefetch:
        features.discard(TLB_PF)
        trigger = None
    if name is None:
        name = "replay[merging=%s,prefetch=%s]" % (include_merging, include_prefetch)
    return build_mudd(
        features,
        trigger=trigger,
        aborts=(ABORT_DURING_WALK,),
        name=name,
    )
