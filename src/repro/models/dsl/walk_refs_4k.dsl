# walk_refs_4k — page-walker references of a 4 KB walk entered via the
# PDE cache (Table 1's Constraint 3 family).
#
# A PDE-cache hit hands the walker a pointer to the page table, so the
# walk reads exactly one entry (the PTE); a miss forces the PDE read as
# well (we model the PDPTE cache as covering, the regime of the paper's
# 64 MB linear runs). Each read is served by some level of the data-cache
# hierarchy, expressed as a multiset choice so µpaths that differ only in
# load interleaving collapse onto one signature:
#   walk_ref.l1 + walk_ref.l2 + walk_ref.l3 + walk_ref.mem
#     == 1 + load.pde$_miss   on every µpath.
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
  Hit => switch RefMix1 {
    l1  => incr walk_ref.l1;
    l2  => incr walk_ref.l2;
    l3  => incr walk_ref.l3;
    mem => incr walk_ref.mem
  };
  Miss => {
    incr load.pde$_miss;
    switch RefMix2 {
      l1_l1   => { incr walk_ref.l1; incr walk_ref.l1; };
      l1_l2   => { incr walk_ref.l1; incr walk_ref.l2; };
      l1_l3   => { incr walk_ref.l1; incr walk_ref.l3; };
      l1_mem  => { incr walk_ref.l1; incr walk_ref.mem; };
      l2_l2   => { incr walk_ref.l2; incr walk_ref.l2; };
      l2_l3   => { incr walk_ref.l2; incr walk_ref.l3; };
      l2_mem  => { incr walk_ref.l2; incr walk_ref.mem; };
      l3_l3   => { incr walk_ref.l3; incr walk_ref.l3; };
      l3_mem  => { incr walk_ref.l3; incr walk_ref.mem; };
      mem_mem => { incr walk_ref.mem; incr walk_ref.mem; }
    }
  }
};
incr load.walk_done;
done;
