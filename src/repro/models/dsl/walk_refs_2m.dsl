# walk_refs_2m — page-walker references of a 2 MB walk (Constraint 2's
# subtlety).
#
# The PDE cache holds only pointers-to-page-tables, and a 2 MB
# translation's PDE *is* the leaf — so the probe misses unconditionally
# and every 2 MB walk increments pde$_miss (Table 1, Constraint 2). The
# walk then reads the leaf PDE directly on a PDPTE-cache hit (1 load) or
# the PDPTE and PDE on a miss (2 loads, root cache covering).
incr load.causes_walk;
do LookupPde$;
incr load.pde$_miss;
switch Pdpte$Status {
  Hit => switch RefMix1 {
    l1  => incr walk_ref.l1;
    l2  => incr walk_ref.l2;
    l3  => incr walk_ref.l3;
    mem => incr walk_ref.mem
  };
  Miss => switch RefMix2 {
    l1_l1   => { incr walk_ref.l1; incr walk_ref.l1; };
    l1_l2   => { incr walk_ref.l1; incr walk_ref.l2; };
    l1_l3   => { incr walk_ref.l1; incr walk_ref.l3; };
    l1_mem  => { incr walk_ref.l1; incr walk_ref.mem; };
    l2_l2   => { incr walk_ref.l2; incr walk_ref.l2; };
    l2_l3   => { incr walk_ref.l2; incr walk_ref.l3; };
    l2_mem  => { incr walk_ref.l2; incr walk_ref.mem; };
    l3_l3   => { incr walk_ref.l3; incr walk_ref.l3; };
    l3_mem  => { incr walk_ref.l3; incr walk_ref.mem; };
    mem_mem => { incr walk_ref.mem; incr walk_ref.mem; }
  }
};
incr load.walk_done_2m;
incr load.walk_done;
done;
