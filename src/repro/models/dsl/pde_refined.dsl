# pde_refined — early PSC probing (Figure 2, right / Figure 6).
#
# The paper's pipelining discovery: the PDE cache is probed *before* MSHR
# allocation, so a request that merges into an outstanding walk (and thus
# never increments causes_walk) still probes — and can still miss — the
# PDE cache. The µpaths where Merged = Yes contribute pde$_miss without
# causes_walk, which removes the pde$_miss <= causes_walk facet and makes
# observations with more misses than walks feasible.
do LookupPde$;
switch Pde$Status {
  Hit  => pass;
  Miss => incr load.pde$_miss
};
switch Merged {
  Yes => done;
  No  => pass
};
incr load.causes_walk;
do StartWalk;
done;
