# merging_load_side — load-side translation with MSHR walk merging.
#
# A load whose page already has an outstanding walk merges into that
# walk's MSHR: it neither starts nor completes a walk of its own, yet it
# still retires as an STLB-missing load. These Merged = Yes µpaths
# contribute ret_stlb_miss with no causes_walk/walk_done, so arbitrarily
# many retired missers can ride on a single walk — the mechanism that
# makes Constraint 1 violations feasible (Section 2).
switch Merged {
  Yes => {
    switch Retires {
      Yes => incr load.ret_stlb_miss;
      No  => pass
    };
    done;
  };
  No => pass
};
incr load.causes_walk;
do StartWalk;
incr load.walk_done;
switch Retires {
  Yes => incr load.ret_stlb_miss;
  No  => pass
};
done;
