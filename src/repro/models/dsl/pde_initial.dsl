# pde_initial — the textbook PDE-cache assumption (Figure 2, left).
#
# Every load-side translation request that misses the STLB starts a page
# table walk and probes the PDE cache exactly once on the way. Under this
# model each PDE-cache miss is paired with a walk, so the deduced
# constraint is  load.pde$_miss <= load.causes_walk  — the constraint the
# paper's 1 GB measurements refute (misses outnumber walks on real
# Haswell because merged requests probe the PDE cache too).
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
  Hit  => pass;
  Miss => incr load.pde$_miss
};
done;
