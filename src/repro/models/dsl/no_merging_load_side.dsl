# no_merging_load_side — load-side translation without walk merging.
#
# Without MSHR merging every STLB-missing load runs its own page table
# walk to completion: causes_walk and walk_done increment in lockstep,
# and a retired STLB-missing load can exist only on a path that also
# walked. The model therefore implies Table 1's Constraint 1,
#   load.ret_stlb_miss <= load.causes_walk  (with walk_done ==
# causes_walk as an equality) — which merged hardware violates because
# many retired missers share one walk.
incr load.causes_walk;
do StartWalk;
incr load.walk_done;
switch Retires {
  Yes => incr load.ret_stlb_miss;
  No  => pass
};
done;
