"""µDD builders for the Haswell MMU case study.

One master builder (:func:`build_mudd`) constructs every model family in
the paper from three ingredients:

* a **feature set** (Table 4): TLB prefetching, early PSC probing, walk
  merging, PML4E cache, walk bypassing;
* an optional **trigger specification** (Table 6): attaches translation
  prefetches to their triggering µop paths instead of modelling them as
  a free-standing request type;
* optional **abort points** (Table 7): translation requests may abort at
  chosen pipeline stages.

Modelling notes
---------------
* Microarchitectural properties are path attributes: ``PageSize`` is
  decided at the top of a translation request even though hardware only
  learns it during the walk — a µpath is labelled by its eventual
  outcome, which keeps signature generation exact.
* PSC status properties are *shared* between the probe and the walk
  body (``Pde$Status`` etc.), so path enumeration automatically keeps
  "probe missed" consistent with "walk starts at the level the probe
  provided" — the paper's tightness argument in action.
* A walker's loads are emitted as a *multiset* choice over cache levels
  (``RefMix3: l1_l1_mem``, ...). This produces exactly the same counter
  signatures as letting each load choose its level independently, with
  combinatorially fewer raw µpaths.
* The PDE cache caches only pointers-to-page-table entries, so 2 MB and
  1 GB translations increment ``pde$_miss`` unconditionally (Table 1,
  Constraint 2's subtlety).
"""

from itertools import combinations_with_replacement

from repro.cone import ModelCone
from repro.counters.events import HASWELL_MMU_EVENTS
from repro.errors import ConfigurationError
from repro.mudd import Do, Done, Incr, Pass, Seq, Switch, compile_program
from repro.models.features import (
    EARLY_PSC,
    FEATURES,
    MERGING,
    PML4E_CACHE,
    TLB_PF,
    WALK_BYPASS,
)

ALL_COUNTERS = [event.name for event in HASWELL_MMU_EVENTS]

REF_LEVELS = ("l1", "l2", "l3", "mem")

PAGE_SIZES = ("4k", "2m", "1g")

# Full walk depth per page size (see repro.mmu.config.PageSize).
_FULL_REFS = {"4k": 4, "2m": 3, "1g": 2}

ABORT_DURING_WALK = "during_walk"
ABORT_AFTER_PSC = "after_psc"
ABORT_AFTER_L2TLB = "after_l2tlb"
ABORT_AFTER_L1TLB = "after_l1tlb"

ABORT_POINTS = (
    ABORT_DURING_WALK,
    ABORT_AFTER_PSC,
    ABORT_AFTER_L2TLB,
    ABORT_AFTER_L1TLB,
)


def _refs_multiset(count, prefix):
    """Emit ``count`` walker loads, choosing the serving-level multiset."""
    if count == 0:
        return Pass()
    branches = {}
    for combo in combinations_with_replacement(REF_LEVELS, count):
        label = "_".join(combo)
        branches[label] = Seq([Incr("walk_ref.%s" % level) for level in combo])
    return Switch("%sRefMix%d" % (prefix, count), branches)


def _retire(t, stlb_missed):
    """Retirement bookkeeping: speculative µops increment nothing."""
    retired = [Incr("%s.ret" % t)]
    if stlb_missed:
        retired.append(Incr("%s.ret_stlb_miss" % t))
    return Switch("Retires", {"Yes": Seq(retired), "No": Pass()})


def _pde_probe(t, size, prefix=""):
    """The PDE-cache probe. Only 4K translations can hit (the PDE cache
    holds pointers to page tables, and 2M/1G leaves live higher up)."""
    if size == "4k":
        return Switch(
            "%sPde$Status" % prefix,
            {"Hit": Pass(), "Miss": Incr("%s.pde$_miss" % t)},
        )
    return Incr("%s.pde$_miss" % t)


def _walk_refs(size, features, prefix=""):
    """Walker loads as a function of which PSC supplied the entry point.

    Reuses the (possibly already assigned) PSC status properties so the
    refs are consistent with the probe outcome on the same path.
    """
    pml4e_present = PML4E_CACHE in features

    def deepest(refs_if_hit):
        if pml4e_present:
            return Switch(
                "%sPml4e$Status" % prefix,
                {
                    "Hit": _refs_multiset(refs_if_hit, prefix),
                    "Miss": _refs_multiset(refs_if_hit + 1, prefix),
                },
            )
        return _refs_multiset(refs_if_hit + 1, prefix)

    if size == "4k":
        return Switch(
            "%sPde$Status" % prefix,
            {
                "Hit": _refs_multiset(1, prefix),
                "Miss": Switch(
                    "%sPdpte$Status" % prefix,
                    {"Hit": _refs_multiset(2, prefix), "Miss": deepest(3)},
                ),
            },
        )
    if size == "2m":
        return Switch(
            "%sPdpte$Status" % prefix,
            {"Hit": _refs_multiset(1, prefix), "Miss": deepest(2)},
        )
    # 1g: only the root cache can shorten the two-load walk.
    return deepest(1)


def _abort_refs(size, prefix="Ab"):
    """A walk aborted mid-flight may have issued any number of loads up
    to a full walk (the most generous abort model)."""
    branches = {"0": Pass()}
    for count in range(1, _FULL_REFS[size] + 1):
        branches[str(count)] = _refs_multiset(count, prefix)
    return Switch("%sRefCount%s" % (prefix, size), branches)


def _prefetch_body(features, prefix="Pf"):
    """A translation prefetch resolved by the page table walker.

    Probes the PSCs (PDE misses attributed to loads), injects real
    walker loads; whether it then aborts on an unset accessed bit or
    completes is invisible to the Table 2 counters, so both outcomes
    share each signature. Never increments causes_walk/walk_done.
    """
    branches = {}
    for size in PAGE_SIZES:
        branches[size] = Seq(
            [
                _pde_probe("load", size, prefix=prefix),
                Do("PrefetchWalk"),
                _walk_refs(size, features, prefix=prefix),
            ]
        )
    return Switch("%sPageSize" % prefix, branches)


def _translation_request(t, size, features, aborts):
    """STLB-missing demand translation for one page size."""
    statements = []

    if ABORT_AFTER_L2TLB in aborts:
        statements.append(Switch("ReqAbortL2", {"Yes": Done(), "No": Pass()}))

    merged_exit = Seq([_retire(t, stlb_missed=True), Done()])
    if EARLY_PSC in features:
        # The paper's pipelining discovery: the PDE cache is probed
        # before MSHR allocation, so merged requests probe it too.
        statements.append(_pde_probe(t, size))
        if MERGING in features:
            statements.append(Switch("Merged", {"Yes": merged_exit, "No": Pass()}))
    else:
        if MERGING in features:
            statements.append(Switch("Merged", {"Yes": merged_exit, "No": Pass()}))
        statements.append(_pde_probe(t, size))

    if ABORT_AFTER_PSC in aborts:
        statements.append(Switch("ReqAbortPsc", {"Yes": Done(), "No": Pass()}))

    statements.append(Incr("%s.causes_walk" % t))
    statements.append(Do("StartWalk"))

    if ABORT_DURING_WALK in aborts:
        statements.append(
            Switch(
                "WalkAborted",
                {"Yes": Seq([_abort_refs(size), Done()]), "No": Pass()},
            )
        )

    if WALK_BYPASS in features:
        statements.append(
            Switch(
                "WalkReplayed",
                {"Yes": Pass(), "No": _walk_refs(size, features)},
            )
        )
    else:
        statements.append(_walk_refs(size, features))

    statements.append(Incr("%s.walk_done_%s" % (t, size)))
    statements.append(Incr("%s.walk_done" % t))
    statements.append(_retire(t, stlb_missed=True))
    statements.append(Done())
    return Seq(statements)


def _uop_program(t, features, aborts, attach=None):
    """The full µop pipeline for access type ``t``.

    ``attach`` optionally maps attachment points (``"pre_tlb"``,
    ``"dtlb_miss"``, ``"stlb_miss"``) to a prefetch-emission statement
    (the t-series trigger models).
    """
    attach = attach or {}

    stlb_miss_body = Switch(
        "PageSize",
        {size: _translation_request(t, size, features, aborts) for size in PAGE_SIZES},
    )
    if ABORT_AFTER_L1TLB in aborts:
        stlb_miss_body = Seq(
            [Switch("ReqAbortL1", {"Yes": Done(), "No": Pass()}), stlb_miss_body]
        )
    if "stlb_miss" in attach:
        stlb_miss_body = Seq([attach["stlb_miss"], stlb_miss_body])

    def stlb_hit(size):
        return Seq(
            [
                Incr("%s.stlb_hit_%s" % (t, size)),
                Incr("%s.stlb_hit" % t),
                _retire(t, stlb_missed=False),
                Done(),
            ]
        )

    miss_side = Switch(
        "StlbStatus",
        {"Hit4k": stlb_hit("4k"), "Hit2m": stlb_hit("2m"), "Miss": stlb_miss_body},
    )
    if "dtlb_miss" in attach:
        miss_side = Seq([attach["dtlb_miss"], miss_side])

    program = Switch(
        "L1TlbStatus",
        {
            "Hit": Seq([_retire(t, stlb_missed=False), Done()]),
            "Miss": miss_side,
        },
    )
    if "pre_tlb" in attach:
        program = Seq([attach["pre_tlb"], program])
    return program


def _prefetch_attachment(features, require_retire):
    """Optional prefetch emission on a µop path (t-series models).

    ``require_retire`` pins the µop's ``Retires`` property to ``Yes`` on
    prefetch-carrying paths — the non-speculative trigger restriction.
    """
    body = _prefetch_body(features)
    if require_retire:
        body = Switch("Retires", {"Yes": body})
    return Switch("PfIssued", {"No": Pass(), "Yes": body})


def build_mudd(features, trigger=None, aborts=(), name=None):
    """Master builder for Haswell MMU µDDs.

    Parameters
    ----------
    features:
        Iterable of feature flags (see :mod:`repro.models.features`).
    trigger:
        ``None`` — with :data:`TLB_PF` this models prefetches as a
        free-standing translation-request type (the m-series abstraction).
        A :class:`repro.models.prefetch_triggers.TriggerSpec` instead
        attaches prefetch emission to its triggering µop paths.
    aborts:
        Abort points (see :data:`ABORT_POINTS`).
    """
    features = frozenset(features)
    unknown = features - set(FEATURES)
    if unknown:
        raise ConfigurationError("unknown features: %s" % ", ".join(sorted(unknown)))
    for point in aborts:
        if point not in ABORT_POINTS:
            raise ConfigurationError("unknown abort point %r" % (point,))
    if trigger is not None and TLB_PF not in features:
        raise ConfigurationError("a trigger spec requires the TlbPf feature")

    attach_by_type = {"load": {}, "store": {}}
    if trigger is not None:
        point = "pre_tlb"
        if trigger.dtlb_miss:
            point = "dtlb_miss"
        if trigger.stlb_miss:
            point = "stlb_miss"
        statement_types = []
        if trigger.load:
            statement_types.append("load")
        if trigger.store:
            statement_types.append("store")
        for t in statement_types:
            attach_by_type[t][point] = _prefetch_attachment(
                features, require_retire=not trigger.speculative
            )

    branches = {
        "Load": _uop_program("load", features, aborts, attach=attach_by_type["load"]),
        "Store": _uop_program("store", features, aborts, attach=attach_by_type["store"]),
    }
    if TLB_PF in features and trigger is None:
        branches["TlbPrefetch"] = Seq([_prefetch_body(features), Done()])

    program = Switch("UopType", branches)
    if name is None:
        name = "haswell[%s]" % ",".join(sorted(features))
    return compile_program(program, name=name)


def build_haswell_mudd(features, name=None):
    """An m-series µDD (Table 3) for the given feature set."""
    return build_mudd(features, name=name)


_CONE_CACHE = {}


def build_model_cone(features, trigger=None, aborts=(), name=None):
    """Build (and memoise) the :class:`ModelCone` of a Haswell µDD over
    the full 26-counter space."""
    key = (frozenset(features), trigger, tuple(sorted(aborts)))
    if key not in _CONE_CACHE:
        mudd = build_mudd(features, trigger=trigger, aborts=aborts, name=name)
        _CONE_CACHE[key] = ModelCone.from_mudd(mudd, counters=ALL_COUNTERS)
    return _CONE_CACHE[key]
