"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``constraints <model.dsl>``
    Deduce and print the model constraints a µDD implies.
``analyze <model.dsl> (--observation k=v,... | --perf-csv file.csv)``
    Test an observation (exact totals or a perf interval CSV summarised
    as a confidence region) against a model; print violations and a
    Farkas certificate for infeasible observations.
``render <model.dsl> [-o out.dot]``
    Export the µDD as Graphviz dot.
``case-study [--scale S]``
    Run the Table 3 m-series sweep on the simulated Haswell MMU.
``errata-check --counters a,b,... [--smt]``
    Pre-flight errata check for a measurement plan.
``simulate <model.dsl | --bundled name> [--n-uops N] [--traces T]``
    Execute a µDD with the :mod:`repro.sim` engine and print synthetic
    counter totals. ``--weight Prop=Value:W`` biases branch choices,
    ``--noisy`` replays the run through counter multiplexing, and
    ``--analyze OTHER`` closes the loop: the simulated observation is
    tested against a second model (exit 1 when refuted). The
    closed-loop workflow is simulate-then-analyze::

        python -m repro simulate --bundled merging_load_side \\
            --weight Merged=Yes:3 --analyze no_merging_load_side
"""

import argparse
import sys

from repro.cone import ModelCone, identify_violations, separating_constraint
from repro.cone import test_point_feasibility, test_region_feasibility
from repro.counters.errata import check_measurement_plan
from repro.dsl import compile_dsl
from repro.errors import ReproError
from repro.mudd.dot import to_dot


def _load_model(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_dsl(source, name=path)


def _parse_observation(text):
    observation = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReproError("observation items must be name=value, got %r" % (item,))
        name, value = item.split("=", 1)
        observation[name.strip()] = float(value)
    if not observation:
        raise ReproError("empty observation")
    return observation


def cmd_constraints(arguments):
    mudd = _load_model(arguments.model)
    cone = ModelCone.from_mudd(mudd)
    constraints = cone.constraints()
    print("%d µpath signatures, %d constraints:" % (cone.n_paths, len(constraints)))
    for constraint in constraints:
        print("  " + constraint.render())
    return 0


def cmd_analyze(arguments):
    mudd = _load_model(arguments.model)
    cone = ModelCone.from_mudd(mudd)
    backend = arguments.backend

    if arguments.perf_csv:
        from repro.counters.perf_io import read_perf_csv

        samples = read_perf_csv(arguments.perf_csv, strict=False)
        samples = samples.subset(
            [name for name in samples.counters if name in cone.counters]
        )
        missing = [name for name in cone.counters if name not in samples.counters]
        if missing:
            print("error: CSV lacks model counters: %s" % ", ".join(missing))
            return 2
        region = samples.subset(cone.counters).confidence_region(
            confidence=arguments.confidence,
            correlated=not arguments.independent,
        )
        result = test_region_feasibility(cone, region, backend=backend)
        observation = region
    else:
        observation = _parse_observation(arguments.observation)
        result = test_point_feasibility(cone, observation, backend=backend)

    if result.feasible:
        print("FEASIBLE: the observation is consistent with the model.")
        return 0
    print("INFEASIBLE: the observation violates the model.")
    certificate = separating_constraint(
        cone,
        observation if isinstance(observation, dict) else observation.center(),
        backend=backend,
    )
    if certificate is not None:
        print("certificate (one violated constraint): %s" % certificate.render())
    if arguments.violations:
        print("all violated constraints:")
        for violation in identify_violations(cone, observation, backend=backend):
            print("  " + violation.render())
    return 1


def cmd_render(arguments):
    mudd = _load_model(arguments.model)
    text = to_dot(mudd)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % arguments.output)
    else:
        print(text, end="")
    return 0


def cmd_case_study(arguments):
    from repro.models import M_SERIES, build_model_cone, standard_dataset
    from repro.pipeline import CounterPoint

    observations = standard_dataset(scale=arguments.scale)
    counterpoint = CounterPoint(backend="scipy")
    print("%d observations" % len(observations))
    print("%-5s %-46s %s" % ("model", "features", "#infeasible"))
    for name in sorted(M_SERIES, key=lambda n: int(n[1:])):
        sweep = counterpoint.sweep(build_model_cone(M_SERIES[name]), observations)
        star = "*" if sweep.feasible else " "
        print("%s%-4s %-46s %d" % (
            star, name, ",".join(sorted(M_SERIES[name])) or "(none)", sweep.n_infeasible,
        ))
    return 0


def _parse_weights(items):
    """Parse repeated ``--weight Prop=Value:W`` options."""
    weights = {}
    for item in items or ():
        try:
            prop, rest = item.split("=", 1)
            value, weight = rest.rsplit(":", 1)
            weights.setdefault(prop.strip(), {})[value.strip()] = float(weight)
        except ValueError:
            raise ReproError(
                "--weight expects Prop=Value:W, got %r" % (item,)
            ) from None
    return weights


def _simulate_model(arguments, argument_name):
    from repro.sim import as_mudd

    value = getattr(arguments, argument_name)
    if arguments.bundled:
        return as_mudd(value)
    return _load_model(value)


def cmd_simulate(arguments):
    from repro.pipeline import CounterPoint
    from repro.sim import batch_simulate, simulate_observation

    model = _simulate_model(arguments, "model")
    weights = _parse_weights(arguments.weight)
    if arguments.traces < 1:
        raise ReproError("--traces must be at least 1, got %d" % arguments.traces)
    if arguments.noisy and arguments.traces > 1:
        raise ReproError("--noisy applies to single-trace runs (drop --traces)")

    counters = None
    if arguments.traces > 1:
        result = batch_simulate(
            model,
            arguments.n_uops,
            n_traces=arguments.traces,
            weights=weights,
            seed=arguments.seed,
        )
        print(
            "%d traces x %d µops of %s (mean totals):"
            % (result.n_traces, arguments.n_uops, model.name)
        )
        # The mean of feasible trace totals stays in any convex cone, so
        # analyzing it keeps the diagonal-feasibility guarantee.
        totals = observation = result.mean()
    else:
        simulated = simulate_observation(
            model,
            n_uops=arguments.n_uops,
            weights=weights,
            seed=arguments.seed,
            noisy=arguments.noisy,
        )
        print("1 trace x %d µops of %s:" % (arguments.n_uops, model.name))
        if arguments.noisy:
            # Multiplexed measurement: report the scale-estimated totals
            # and analyze the confidence region, like perf data would be.
            counters = simulated.samples.counters
            means = simulated.samples.mean_observation()
            totals = {
                name: means[name] * simulated.samples.n_samples for name in means
            }
            observation = simulated.region()
        else:
            totals = observation = simulated.point()
    for name in sorted(totals):
        print("  %s=%g" % (name, totals[name]))

    if not arguments.analyze:
        return 0
    candidate = _simulate_model(arguments, "analyze")
    if counters is None:
        counters = sorted(totals)
    cone = ModelCone.from_mudd(candidate, counters=counters)
    report = CounterPoint(backend=arguments.backend).analyze(cone, observation)
    print(report.summary())
    return 0 if report.feasible else 1


def cmd_errata_check(arguments):
    counters = [name.strip() for name in arguments.counters.split(",") if name.strip()]
    findings = check_measurement_plan(counters, smt_enabled=arguments.smt)
    if not findings:
        print("OK: measurement plan is errata-clean.")
        return 0
    for name, erratum in findings:
        print("WARNING: %s is affected by %s: %s" % (
            name, erratum.erratum_id, erratum.description,
        ))
    return 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="CounterPoint: test µDD models against HEC data"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    constraints = commands.add_parser("constraints", help="deduce model constraints")
    constraints.add_argument("model", help="DSL model file")
    constraints.set_defaults(handler=cmd_constraints)

    analyze = commands.add_parser("analyze", help="test an observation against a model")
    analyze.add_argument("model", help="DSL model file")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--observation", help="comma-separated name=value totals")
    source.add_argument("--perf-csv", help="perf stat -I -x, interval CSV file")
    analyze.add_argument("--backend", default="exact", choices=("exact", "scipy"))
    analyze.add_argument("--confidence", type=float, default=0.99)
    analyze.add_argument("--independent", action="store_true",
                         help="use the independent-counter baseline region")
    analyze.add_argument("--violations", action="store_true",
                         help="run full constraint deduction and list all violations")
    analyze.set_defaults(handler=cmd_analyze)

    render = commands.add_parser("render", help="export a µDD as Graphviz dot")
    render.add_argument("model", help="DSL model file")
    render.add_argument("-o", "--output", help="output .dot path (stdout if omitted)")
    render.set_defaults(handler=cmd_render)

    case_study = commands.add_parser("case-study", help="run the Table 3 sweep")
    case_study.add_argument("--scale", type=float, default=1.0)
    case_study.set_defaults(handler=cmd_case_study)

    simulate = commands.add_parser(
        "simulate", help="execute a µDD and emit synthetic counter totals"
    )
    simulate.add_argument("model", help="DSL model file (or bundled name with --bundled)")
    simulate.add_argument("--bundled", action="store_true",
                          help="treat model arguments as bundled-model names")
    simulate.add_argument("--n-uops", type=int, default=20000,
                          help="µops per simulated trace")
    simulate.add_argument("--traces", type=int, default=1,
                          help="batched trace count (prints mean totals)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--weight", action="append", metavar="PROP=VALUE:W",
                          help="bias a branch choice (repeatable)")
    simulate.add_argument("--noisy", action="store_true",
                          help="replay the run through counter multiplexing: print "
                               "scale-estimated totals and analyze the confidence "
                               "region (single trace only)")
    simulate.add_argument("--analyze", metavar="MODEL",
                          help="close the loop: test the simulated observation "
                               "against another model (exit 1 when refuted)")
    simulate.add_argument("--backend", default="exact", choices=("exact", "scipy"))
    simulate.set_defaults(handler=cmd_simulate)

    errata = commands.add_parser("errata-check", help="check a measurement plan")
    errata.add_argument("--counters", required=True,
                        help="comma-separated counter names (paper-style)")
    errata.add_argument("--smt", action="store_true", help="SMT enabled")
    errata.set_defaults(handler=cmd_errata_check)
    return parser


def main(argv=None):
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
