"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``constraints <model.dsl>``
    Deduce and print the model constraints a µDD implies.
``analyze <model.dsl> (--observation k=v,... | --perf-csv file.csv)``
    Test an observation (exact totals or a perf interval CSV summarised
    as a confidence region) against a model; print violations and a
    Farkas certificate for infeasible observations.
``render <model.dsl> [-o out.dot]``
    Export the µDD as Graphviz dot.
``case-study [--scale S]``
    Run the Table 3 m-series sweep on the simulated Haswell MMU.
``errata-check --counters a,b,... [--smt]``
    Pre-flight errata check for a measurement plan.
``sweep <model.dsl> [--dataset standard|noisy | --simulate-from M]``
    Evaluate one model against a whole dataset; print which
    observations it fails to explain and the violated constraint per
    failure.
``compare <model.dsl> [<model.dsl> ...]``
    Sweep a model family over one dataset and rank it (the Table 3
    workflow).
``run <plan.json> [--dry-run]``
    Execute a declarative :mod:`repro.plan` experiment spec — a whole
    campaign compiled into one content-addressed task DAG with global
    deduplication; ``--dry-run`` prices it without solving.
``plan <template> --models ...``
    Author a plan JSON from a template (``sweep``, ``compare``,
    ``cross-refute``, ``closed-loop``).
``show <result.json>``
    Load any serialized result by its ``kind`` tag and print its
    summary — including ``PlanResult`` bundles.
``trace summarize <trace.jsonl>``
    Reduce a ``--trace`` JSONL file to a plain-text breakdown: span
    totals, cache hit-rates per tier, and the LP solve-time histogram
    (``--json`` emits the summary dict instead).
``serve [--host --port --workers --cache-dir --max-queue]``
    Run the :mod:`repro.serve` daemon: POST plans over HTTP, stream
    progress, cancel, fetch results — all tenants share one
    content-addressed task space with weighted-fair scheduling.
``submit <plan.json> [--tenant --priority --wait]`` /
``status [job]`` / ``fetch <job> [-o out.json]`` / ``cancel <job>``
    The client side of ``serve`` (all take ``--url``): submit a plan to
    a running daemon, watch it, download the canonical result bundle,
    or cancel it.
``simulate <model.dsl | --bundled name> [--n-uops N] [--traces T]``
    Execute a µDD with the :mod:`repro.sim` engine and print synthetic
    counter totals. ``--weight Prop=Value:W`` biases branch choices,
    ``--noisy`` replays the run through counter multiplexing, and
    ``--analyze OTHER`` closes the loop: the simulated observation is
    tested against a second model (exit 1 when refuted). The
    closed-loop workflow is simulate-then-analyze::

        python -m repro simulate --bundled merging_load_side \\
            --weight Merged=Yes:3 --analyze no_merging_load_side

Shared performance flags (``analyze``, ``sweep``, ``compare``,
``simulate``, ``case-study``, ``run``): ``--cache-dir DIR`` persists
model cones *and* feasibility verdicts on disk
(:mod:`repro.cone.diskcache`, :mod:`repro.results.store`) — deduction
and verdicts run once per content ever, shared across runs and
processes; ``--workers N`` shards dataset sweeps across a process pool
(:mod:`repro.parallel`). The analysis commands (``analyze``, ``sweep``,
``compare``, ``case-study``, ``run``) accept ``--json`` to emit the
stable :mod:`repro.results` schema instead of text, and ``analyze`` /
``sweep`` / ``compare`` / ``run`` accept ``--stats`` to report session
cache effectiveness (computed cells vs memo/store hits).

Every command also accepts ``--trace FILE`` / ``--trace-format
{jsonl,chrome}`` (:mod:`repro.obs`): the whole invocation runs under an
enabled tracer — LP solves, cone deduction, verdicts, simulation,
scheduler dispatch, cache hits and evictions, including spans recorded
inside ``--workers`` pool processes — and the merged timeline is
written on exit, even when the command fails. ``jsonl`` is the archive
format ``trace summarize`` reads; ``chrome`` loads directly in
Perfetto / ``chrome://tracing``.
"""

import argparse
import sys

from repro.cone import ModelCone
from repro.counters.errata import check_measurement_plan
from repro.dsl import compile_dsl
from repro.errors import ReproError
from repro.mudd.dot import to_dot


def _load_model(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_dsl(source, name=path)


def _model_cone(mudd, arguments, counters=None):
    """Build (or load) a model cone honouring ``--cache-dir``."""
    cache_dir = getattr(arguments, "cache_dir", None)
    if cache_dir:
        from repro.cone.cache import get_model_cone

        return get_model_cone(mudd, counters=counters, cache_dir=cache_dir)
    return ModelCone.from_mudd(mudd, counters=counters)


def _parse_observation(text):
    observation = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReproError("observation items must be name=value, got %r" % (item,))
        name, value = item.split("=", 1)
        observation[name.strip()] = float(value)
    if not observation:
        raise ReproError("empty observation")
    return observation


def cmd_constraints(arguments):
    mudd = _load_model(arguments.model)
    cone = _model_cone(mudd, arguments)
    constraints = cone.constraints()
    print("%d µpath signatures, %d constraints:" % (cone.n_paths, len(constraints)))
    for constraint in constraints:
        print("  " + constraint.render())
    return 0


def _session_stats(counterpoint):
    return counterpoint.session().stats.as_dict()


def _render_stats(stats):
    return ("session stats: %(tests)d computed, %(memo_hits)d memo hits, "
            "%(store_hits)d store hits, %(reports)d reports" % stats)


def _emit_result(result, arguments, counterpoint):
    """Print a result honouring ``--json`` and ``--stats``.

    With both flags the stable result schema gains a top-level
    ``session_stats`` key — extra envelope keys are ignored by
    ``from_dict``, so the output still loads with ``result_from_json``.
    """
    import json

    stats = _session_stats(counterpoint) if getattr(arguments, "stats", False) \
        else None
    if arguments.json:
        data = result.to_dict()
        if stats is not None:
            data["session_stats"] = stats
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(result.summary())
        if stats is not None:
            print(_render_stats(stats))


def cmd_analyze(arguments):
    from repro.pipeline import CounterPoint

    mudd = _load_model(arguments.model)
    # Analysis goes through the facade — a one-op plan over the plan
    # engine — so --workers/--cache-dir reach the pipeline, verdicts
    # memoize in the session (observable with --stats), and the context
    # manager reaps the pool on every exit path.
    with CounterPoint(
        backend=arguments.backend,
        confidence=arguments.confidence,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    ) as counterpoint:
        cone = counterpoint.model_cone(mudd)

        if arguments.perf_csv:
            from repro.counters.perf_io import read_perf_csv

            samples = read_perf_csv(arguments.perf_csv, strict=False)
            samples = samples.subset(
                [name for name in samples.counters if name in cone.counters]
            )
            missing = [name for name in cone.counters if name not in samples.counters]
            if missing:
                print("error: CSV lacks model counters: %s" % ", ".join(missing))
                return 2
            observation = samples.subset(cone.counters).confidence_region(
                confidence=arguments.confidence,
                correlated=not arguments.independent,
            )
        else:
            observation = _parse_observation(arguments.observation)

        report = counterpoint.analyze(cone, observation, explain=True)

        if arguments.json:
            _emit_result(report, arguments, counterpoint)
            return 0 if report.feasible else 1

        if report.feasible:
            print("FEASIBLE: the observation is consistent with the model.")
        else:
            print("INFEASIBLE: the observation violates the model.")
            if report.certificate is not None:
                print("certificate (one violated constraint): %s"
                      % report.certificate.render())
            if arguments.violations:
                print("all violated constraints:")
                for violation in report.violations:
                    print("  " + violation.render())
        if arguments.stats:
            print(_render_stats(_session_stats(counterpoint)))
        return 0 if report.feasible else 1


def cmd_render(arguments):
    mudd = _load_model(arguments.model)
    text = to_dot(mudd)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % arguments.output)
    else:
        print(text, end="")
    return 0


def cmd_case_study(arguments):
    from repro.models import M_SERIES, build_model_cone, standard_dataset
    from repro.pipeline import CounterPoint

    from repro.results import CompareResult

    observations = standard_dataset(scale=arguments.scale)
    names = sorted(M_SERIES, key=lambda n: int(n[1:]))
    with CounterPoint(
        backend="scipy",
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    ) as counterpoint:
        sweeps = {}
        for name in names:
            sweep = counterpoint.sweep(
                build_model_cone(M_SERIES[name], name=name),
                observations,
                explain=arguments.json,
            )
            # The process-wide cone memo keys by feature set only, so a
            # cone built earlier in this process may carry another
            # name; key the comparison by the m-series name regardless.
            sweep.model_name = name
            sweeps[name] = sweep
        comparison = CompareResult(sweeps)
    if arguments.json:
        print(comparison.to_json(indent=2))
        return 0
    print("%d observations" % len(observations))
    print("%-5s %-46s %s" % ("model", "features", "#infeasible"))
    for name in names:
        sweep = comparison[name]
        star = "*" if sweep.feasible else " "
        print("%s%-4s %-46s %d" % (
            star, name, ",".join(sorted(M_SERIES[name])) or "(none)", sweep.n_infeasible,
        ))
    return 0


def _sweep_model(arguments, value):
    """A model argument for sweep/compare: DSL file, or bundled name."""
    if getattr(arguments, "bundled", False):
        from repro.sim import as_mudd

        return as_mudd(value)
    return _load_model(value)


def _sweep_observations(arguments):
    """The dataset a sweep/compare runs against."""
    if getattr(arguments, "simulate_from", None):
        from repro.sim import simulate_dataset

        source = _sweep_model(arguments, arguments.simulate_from)
        return simulate_dataset(
            source,
            arguments.n_observations,
            n_uops=arguments.n_uops,
            seed=arguments.seed,
        )
    if arguments.dataset == "noisy":
        from repro.models.dataset import noisy_dataset

        return noisy_dataset(scale=arguments.scale)
    from repro.models.dataset import standard_dataset

    return standard_dataset(scale=arguments.scale)


def _sweep_pipeline(arguments):
    from repro.pipeline import CounterPoint

    return CounterPoint(
        backend=arguments.backend,
        confidence=arguments.confidence,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    )


def _project_observations(observations, cone):
    """Dataset-to-model counter projection (shared with the plan
    engine; see :func:`repro.models.dataset.project_observations`)."""
    from repro.models.dataset import project_observations

    return project_observations(observations, cone)


def cmd_sweep(arguments):
    observations = _sweep_observations(arguments)
    with _sweep_pipeline(arguments) as counterpoint:
        # Simulated datasets define the counter ordering; the bundled
        # hardware datasets are projected onto the model's scope.
        counters = getattr(observations[0].samples, "counters", None) \
            if arguments.simulate_from else None
        cone = counterpoint.model_cone(
            _sweep_model(arguments, arguments.model), counters=counters
        )
        sweep = counterpoint.sweep(
            cone,
            _project_observations(observations, cone),
            use_regions=arguments.use_regions,
            correlated=not arguments.independent,
            explain=True,
        )
        _emit_result(sweep, arguments, counterpoint)
    return 0 if sweep.feasible else 1


def cmd_compare(arguments):
    observations = _sweep_observations(arguments)
    with _sweep_pipeline(arguments) as counterpoint:
        counters = getattr(observations[0].samples, "counters", None) \
            if arguments.simulate_from else None
        sweeps = []
        for model in arguments.models:
            cone = counterpoint.model_cone(
                _sweep_model(arguments, model), counters=counters
            )
            sweeps.append(counterpoint.sweep(
                cone,
                _project_observations(observations, cone),
                use_regions=arguments.use_regions,
                correlated=not arguments.independent,
                explain=True,
            ))
        from repro.results import CompareResult

        comparison = CompareResult(sweeps)
        _emit_result(comparison, arguments, counterpoint)
    return 0 if comparison.feasible_models else 1


def _parse_weights(items):
    """Parse repeated ``--weight Prop=Value:W`` options."""
    weights = {}
    for item in items or ():
        try:
            prop, rest = item.split("=", 1)
            value, weight = rest.rsplit(":", 1)
            weights.setdefault(prop.strip(), {})[value.strip()] = float(weight)
        except ValueError:
            raise ReproError(
                "--weight expects Prop=Value:W, got %r" % (item,)
            ) from None
    return weights


def _simulate_model(arguments, argument_name):
    from repro.sim import as_mudd

    value = getattr(arguments, argument_name)
    if arguments.bundled:
        return as_mudd(value)
    return _load_model(value)


def cmd_simulate(arguments):
    from repro.pipeline import CounterPoint
    from repro.sim import batch_simulate, simulate_observation

    model = _simulate_model(arguments, "model")
    weights = _parse_weights(arguments.weight)
    if arguments.traces < 1:
        raise ReproError("--traces must be at least 1, got %d" % arguments.traces)
    if arguments.noisy and arguments.traces > 1:
        raise ReproError("--noisy applies to single-trace runs (drop --traces)")

    counters = None
    if arguments.traces > 1:
        result = batch_simulate(
            model,
            arguments.n_uops,
            n_traces=arguments.traces,
            weights=weights,
            seed=arguments.seed,
            backend=arguments.sim_backend,
        )
        print(
            "%d traces x %d µops of %s (mean totals):"
            % (result.n_traces, arguments.n_uops, model.name)
        )
        # The mean of feasible trace totals stays in any convex cone, so
        # analyzing it keeps the diagonal-feasibility guarantee.
        totals = observation = result.mean()
    else:
        simulated = simulate_observation(
            model,
            n_uops=arguments.n_uops,
            weights=weights,
            seed=arguments.seed,
            noisy=arguments.noisy,
            backend=arguments.sim_backend,
        )
        print("1 trace x %d µops of %s:" % (arguments.n_uops, model.name))
        if arguments.noisy:
            # Multiplexed measurement: report the scale-estimated totals
            # and analyze the confidence region, like perf data would be.
            counters = simulated.samples.counters
            means = simulated.samples.mean_observation()
            totals = {
                name: means[name] * simulated.samples.n_samples for name in means
            }
            observation = simulated.region()
        else:
            totals = observation = simulated.point()
    for name in sorted(totals):
        print("  %s=%g" % (name, totals[name]))

    if not arguments.analyze:
        return 0
    candidate = _simulate_model(arguments, "analyze")
    if counters is None:
        counters = sorted(totals)
    cone = _model_cone(candidate, arguments, counters=counters)
    with CounterPoint(
        backend=arguments.backend,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    ) as counterpoint:
        report = counterpoint.analyze(cone, observation)
    print(report.summary())
    return 0 if report.feasible else 1


def cmd_errata_check(arguments):
    counters = [name.strip() for name in arguments.counters.split(",") if name.strip()]
    findings = check_measurement_plan(counters, smt_enabled=arguments.smt)
    if not findings:
        print("OK: measurement plan is errata-clean.")
        return 0
    for name, erratum in findings:
        print("WARNING: %s is affected by %s: %s" % (
            name, erratum.erratum_id, erratum.description,
        ))
    return 1


def cmd_run(arguments):
    """Execute (or price, with ``--dry-run``) a serialized plan."""
    from repro.pipeline import CounterPoint
    from repro.plan import Plan

    with open(arguments.plan, "r", encoding="utf-8") as handle:
        plan = Plan.from_json(handle.read())
    with CounterPoint(
        backend=arguments.backend,
        confidence=arguments.confidence,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
        sim_backend=arguments.sim_backend,
    ) as counterpoint:
        engine = counterpoint.plan_engine()
        if arguments.dry_run:
            report = engine.dry_run(plan)
            if arguments.json:
                print(report.to_json(indent=2))
            else:
                print(report.summary())
            return 0
        result = engine.run(plan)
        _emit_result(result, arguments, counterpoint)
    return 0


def _plan_model(value):
    """A model argument for plan authoring: a DSL file path (inlined as
    source, so the plan stays self-contained) or a bundled name."""
    import os

    if os.path.exists(value):
        with open(value, "r", encoding="utf-8") as handle:
            return handle.read()
    return value


def _plan_dataset(arguments):
    """The dataset spec a plan template sweeps over."""
    if arguments.simulate_from:
        return {"simulate": {
            "model": _plan_model(arguments.simulate_from),
            "n_observations": arguments.n_observations,
            "n_uops": arguments.n_uops,
            "seed": arguments.seed,
        }}
    return {"source": arguments.dataset, "scale": arguments.scale}


def cmd_plan(arguments):
    """Author a plan JSON from a template and bundled models/datasets."""
    from repro.plan import Plan

    models = [_plan_model(model) for model in arguments.models]
    plan = Plan()
    if arguments.template == "sweep":
        if len(models) != 1:
            raise ReproError("the sweep template takes exactly one model")
        plan.sweep(models[0], dataset=_plan_dataset(arguments),
                   explain=True, op_id="sweep")
    elif arguments.template == "compare":
        plan.compare(models, dataset=_plan_dataset(arguments),
                     explain=True, op_id="ranking")
    elif arguments.template == "cross-refute":
        plan.cross_refute(models, n_observations=arguments.n_observations,
                          n_uops=arguments.n_uops, seed=arguments.seed,
                          explain=True, op_id="matrix")
    else:  # closed-loop: the overlapping sweep+compare+matrix campaign
        data = plan.simulate_dataset(
            models[0], n_observations=arguments.n_observations,
            n_uops=arguments.n_uops, seed=arguments.seed, op_id="data",
        )
        for index, model in enumerate(models[1:]):
            plan.sweep(model, dataset=data, explain=True,
                       op_id="refute%d" % index)
        plan.compare(models, dataset=data, explain=True, op_id="ranking")
        plan.cross_refute(models, n_observations=arguments.n_observations,
                          n_uops=arguments.n_uops, seed=arguments.seed,
                          explain=True, op_id="matrix")
    text = plan.to_json(indent=2)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print("wrote %s (%d ops)" % (arguments.output, len(plan)))
    else:
        print(text)
    return 0


def cmd_trace_summarize(arguments):
    """Reduce a ``--trace`` JSONL file to the stable summary table."""
    import json

    from repro.obs import read_jsonl, render_summary, summarize_records

    records, metrics = read_jsonl(arguments.trace_file)
    summary = summarize_records(records, metrics=metrics)
    if arguments.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary, top=arguments.top), end="")
    return 0


def cmd_show(arguments):
    """Load any serialized result by its ``kind`` tag and render it."""
    from repro.results import result_from_json

    with open(arguments.result, "r", encoding="utf-8") as handle:
        result = result_from_json(handle.read())
    summary = getattr(result, "summary", None)
    print(summary() if callable(summary) else repr(result))
    return 0


def cmd_serve(arguments):
    """Run the multi-tenant analysis daemon until interrupted."""
    from repro.serve import PlanService, ServeDaemon

    service = PlanService(
        workers=arguments.workers,
        max_queue=arguments.max_queue,
        cache_dir=arguments.cache_dir or None,
        backend=arguments.backend,
        sim_backend=arguments.sim_backend,
    )
    daemon = ServeDaemon(service, host=arguments.host, port=arguments.port)
    print("repro serve listening on %s (workers=%d, max-queue=%d%s)" % (
        daemon.url, arguments.workers, arguments.max_queue,
        ", cache-dir=%s" % arguments.cache_dir if arguments.cache_dir
        else "",
    ))
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        daemon.close()
    return 0


def _serve_client(arguments):
    from repro.serve import ServeClient

    return ServeClient(
        arguments.url, tenant=getattr(arguments, "tenant", "anon"),
    )


def cmd_submit(arguments):
    """POST a plan JSON file to a serve daemon."""
    import json

    client = _serve_client(arguments)
    with open(arguments.plan, "r", encoding="utf-8") as handle:
        plan = handle.read()
    status = client.submit(plan, priority=arguments.priority)
    if arguments.wait:
        status = client.wait(status["id"], timeout=arguments.timeout)
    if arguments.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print("job %s: %s" % (status["id"], status["state"]))
        if status.get("errors"):
            for entry in status["errors"]:
                print("  op %s failed: %s" % (entry["op"], entry["error"]))
    return 0 if status["state"] not in ("failed", "cancelled") else 1


def cmd_status(arguments):
    """Report one job's state (or every job the daemon knows)."""
    import json

    client = _serve_client(arguments)
    if arguments.job:
        status = client.status(arguments.job)
        if arguments.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print("job %s (tenant %s): %s" % (
                status["id"], status["tenant"], status["state"],
            ))
            progress = status.get("progress", {})
            print("  %d batches queued, %d executed" % (
                progress.get("queued", 0), progress.get("executed", 0),
            ))
            if status.get("stats"):
                print("  " + _render_plan_stats(status["stats"]))
            if status.get("error"):
                print("  error: %s" % status["error"])
        return 0
    jobs = client.jobs()
    if arguments.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
    else:
        for status in jobs:
            print("%-12s %-10s %-9s %s" % (
                status["id"], status["tenant"], status["state"],
                status.get("error", ""),
            ))
    return 0


def _render_plan_stats(stats):
    return ("%(computed)d computed, %(memo_hits)d memo hits, "
            "%(store_hits)d store hits" % stats)


def cmd_fetch(arguments):
    """Download a finished job's canonical PlanResult bundle."""
    client = _serve_client(arguments)
    text = client.result_text(arguments.job)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % arguments.output)
    else:
        print(text)
    return 0


def cmd_cancel(arguments):
    """Request cooperative cancellation of a job."""
    client = _serve_client(arguments)
    status = client.cancel(arguments.job)
    print("job %s: %s (cancellation requested)" % (
        status["id"], status["state"],
    ))
    return 0


def _add_runtime_flags(subparser, workers_help):
    """The shared performance knobs (``--workers``, ``--cache-dir``)."""
    subparser.add_argument(
        "--workers", type=int, default=1, metavar="N", help=workers_help
    )
    subparser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk model-cone cache: deduced cones are "
             "stored here and reused across runs and processes "
             "(computed once per model, ever)")


def _add_trace_flags(subparser):
    """The shared observability knobs (``--trace``, ``--trace-format``),
    attached to every command by :func:`build_parser`."""
    subparser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a span/event trace of this invocation (LP solves, "
             "cone deduction, verdicts, simulation, cache activity — "
             "including pool workers) and write it here on exit")
    subparser.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
        help="trace file format: jsonl (read by 'repro trace "
             "summarize') or chrome (load in Perfetto or "
             "chrome://tracing)")


def _add_stats_flag(subparser):
    subparser.add_argument(
        "--stats", action="store_true",
        help="report session cache effectiveness (computed cells vs "
             "memo/store hits); with --json, added as a top-level "
             "session_stats key")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CounterPoint: test µDD microarchitectural models "
                    "against hardware event counter (HEC) data — deduce "
                    "the linear constraints a model implies, refute models "
                    "whose constraints the data violates, and simulate "
                    "models to generate synthetic observations.",
        epilog="run 'python -m repro <command> --help' for per-command "
               "examples; see README.md for the 60-second tour",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    constraints = commands.add_parser(
        "constraints",
        help="deduce model constraints",
        description="Deduce and print the linear HEC constraints a µDD "
                    "model implies (the paper's Section 6 pipeline: "
                    "equalities from Gaussian elimination, facet "
                    "inequalities from the double description method).",
        epilog="example:\n"
               "  python -m repro constraints model.dsl\n"
               "  python -m repro constraints model.dsl --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    constraints.add_argument("model", help="DSL model file")
    constraints.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk model-cone cache (reused across runs)")
    constraints.set_defaults(handler=cmd_constraints)

    analyze = commands.add_parser(
        "analyze",
        help="test an observation against a model",
        description="Test one observation — exact counter totals or a "
                    "perf interval CSV summarised as a confidence region — "
                    "against a µDD model. Runs through the pipeline "
                    "session, so an infeasible verdict carries the full "
                    "violated-constraint analysis (the report is memoized "
                    "whole: with --cache-dir a repeat run is free). Exit "
                    "status: 0 feasible, 1 infeasible (the observation "
                    "refutes the model), 2 usage error.",
        epilog="examples:\n"
               "  python -m repro analyze model.dsl "
               "--observation load.causes_walk=5,load.pde\\$_miss=12\n"
               "  python -m repro analyze model.dsl --perf-csv run.csv "
               "--confidence 0.99 --violations\n"
               "  python -m repro analyze model.dsl --perf-csv run.csv "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    analyze.add_argument("model", help="DSL model file")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--observation", help="comma-separated name=value totals")
    source.add_argument("--perf-csv", help="perf stat -I -x, interval CSV file")
    analyze.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                         help="LP backend: exact rational simplex (certified "
                              "verdicts) or scipy/HiGHS (fast)")
    analyze.add_argument("--confidence", type=float, default=0.99,
                         help="confidence level for --perf-csv regions")
    analyze.add_argument("--independent", action="store_true",
                         help="use the independent-counter baseline region")
    analyze.add_argument("--violations", action="store_true",
                         help="list every violated model constraint (computed "
                              "for any infeasible verdict; this flag controls "
                              "printing)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the AnalysisReport result schema as JSON "
                              "(exit status semantics unchanged)")
    _add_stats_flag(analyze)
    _add_runtime_flags(
        analyze,
        "process-pool size for sharded sweeps (a single-observation "
        "analysis itself runs in-process)")
    analyze.set_defaults(handler=cmd_analyze)

    render = commands.add_parser(
        "render",
        help="export a µDD as Graphviz dot",
        description="Compile a DSL model and export its µDD as Graphviz "
                    "dot (render with: dot -Tsvg out.dot -o out.svg).",
        epilog="example:\n  python -m repro render model.dsl -o model.dot",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    render.add_argument("model", help="DSL model file")
    render.add_argument("-o", "--output", help="output .dot path (stdout if omitted)")
    render.set_defaults(handler=cmd_render)

    case_study = commands.add_parser(
        "case-study",
        help="run the Table 3 sweep",
        description="Run the paper's Table 3 case study: sweep the "
                    "m-series Haswell MMU models over the simulated "
                    "standard dataset and report which observations each "
                    "model fails to explain (* marks feasible models).",
        epilog="examples:\n"
               "  python -m repro case-study\n"
               "  python -m repro case-study --workers 4 --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    case_study.add_argument("--scale", type=float, default=1.0,
                            help="workload scale factor for the dataset")
    case_study.add_argument("--json", action="store_true",
                            help="emit the CompareResult schema as JSON (with "
                                 "per-observation violated constraints)")
    _add_runtime_flags(
        case_study,
        "shard each model's dataset sweep across N worker processes")
    case_study.set_defaults(handler=cmd_case_study)

    def add_sweep_dataset_flags(subparser):
        """Dataset selection shared by ``sweep`` and ``compare``."""
        subparser.add_argument(
            "--dataset", choices=("standard", "noisy"), default="standard",
            help="bundled simulated-hardware dataset to sweep over")
        subparser.add_argument(
            "--scale", type=float, default=1.0,
            help="workload scale factor for the bundled datasets")
        subparser.add_argument(
            "--simulate-from", metavar="MODEL", default=None,
            help="sweep over a dataset simulated from this model instead "
                 "(DSL file, or bundled name with --bundled)")
        subparser.add_argument(
            "--n-observations", type=int, default=4,
            help="simulated dataset size for --simulate-from")
        subparser.add_argument(
            "--n-uops", type=int, default=20000,
            help="µops per simulated observation for --simulate-from")
        subparser.add_argument("--seed", type=int, default=0,
                               help="base seed for --simulate-from")
        subparser.add_argument(
            "--bundled", action="store_true",
            help="treat model arguments as bundled-model names")
        subparser.add_argument(
            "--backend", default="scipy", choices=("exact", "scipy"),
            help="LP backend (scipy/HiGHS is the fast sweep default)")
        subparser.add_argument(
            "--confidence", type=float, default=0.99,
            help="confidence level for --use-regions")
        subparser.add_argument(
            "--use-regions", action="store_true",
            help="test confidence regions instead of exact totals")
        subparser.add_argument(
            "--independent", action="store_true",
            help="with --use-regions, use the independent-counter baseline")
        subparser.add_argument(
            "--json", action="store_true",
            help="emit the result schema as JSON")
        _add_stats_flag(subparser)

    sweep = commands.add_parser(
        "sweep",
        help="evaluate one model against a dataset",
        description="Evaluate one µDD model against a whole dataset of "
                    "observations and report which observations it fails "
                    "to explain — with the violated model constraint per "
                    "failure. Verdicts are memoized on disk with "
                    "--cache-dir, so re-sweeping a grown dataset only "
                    "tests the new observations. Exit status: 0 the model "
                    "explains everything, 1 it was refuted, 2 usage error.",
        epilog="examples:\n"
               "  python -m repro sweep model.dsl --scale 0.3\n"
               "  python -m repro sweep --bundled pde_refined "
               "--simulate-from pde_initial --json\n"
               "  python -m repro sweep model.dsl --workers 4 "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("model", help="DSL model file (or bundled name with --bundled)")
    add_sweep_dataset_flags(sweep)
    _add_runtime_flags(
        sweep, "shard the dataset sweep across N worker processes")
    sweep.set_defaults(handler=cmd_sweep)

    compare = commands.add_parser(
        "compare",
        help="rank a model family over a dataset",
        description="Sweep several candidate models over one dataset and "
                    "rank them by how many observations each fails to "
                    "explain (the paper's Table 3 workflow). Exit status: "
                    "0 when at least one model explains the whole "
                    "dataset, 1 when every model is refuted.",
        epilog="examples:\n"
               "  python -m repro compare a.dsl b.dsl --scale 0.3\n"
               "  python -m repro compare --bundled pde_initial pde_refined "
               "--simulate-from pde_refined --json\n"
               "  python -m repro compare a.dsl b.dsl --workers 4 "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    compare.add_argument("models", nargs="+",
                         help="DSL model files (or bundled names with --bundled)")
    add_sweep_dataset_flags(compare)
    _add_runtime_flags(
        compare, "shard each model's sweep across N worker processes")
    compare.set_defaults(handler=cmd_compare)

    run = commands.add_parser(
        "run",
        help="execute a declarative plan",
        description="Execute a serialized repro.plan experiment spec: "
                    "compile the whole campaign into one content-"
                    "addressed task DAG, deduplicate overlapping ops "
                    "globally, and run it — or price it first with "
                    "--dry-run (task and cache estimates, no solving). "
                    "With --cache-dir, interrupted runs resume: cells "
                    "already answered by the artifact store are never "
                    "recomputed. Exit status: 0 whenever the plan "
                    "executes — a campaign's refutations are results, "
                    "reported in the output, not failures; 2 usage error.",
        epilog="examples:\n"
               "  python -m repro run examples/plans/closed_loop.json\n"
               "  python -m repro run plan.json --dry-run --json\n"
               "  python -m repro run plan.json --workers 4 "
               "--cache-dir .repro-cache --stats",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run.add_argument("plan", help="plan JSON file (author one with "
                                  "'python -m repro plan ...')")
    run.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                     help="LP backend for every verdict in the plan")
    run.add_argument(
        "--sim-backend", default="auto",
        choices=("interpreter", "vector", "codegen", "auto"),
        help="simulation engine for the plan's dataset ops (per-op "
             "sim_backend in the plan JSON wins; identical observations "
             "for every choice)")
    run.add_argument("--confidence", type=float, default=0.99,
                     help="confidence level for region-mode sweeps")
    run.add_argument("--dry-run", action="store_true",
                     help="report task counts, global-dedup savings, and "
                          "cache estimates without simulating or solving")
    run.add_argument("--json", action="store_true",
                     help="emit the PlanResult (or dry-run report) schema "
                          "as JSON")
    _add_stats_flag(run)
    _add_runtime_flags(
        run, "shard simulations and pending verdict cells across N "
             "worker processes")
    run.set_defaults(handler=cmd_run)

    plan = commands.add_parser(
        "plan",
        help="author a plan JSON from a template",
        description="Write a repro.plan experiment spec from a template: "
                    "'sweep' (one model over a dataset), 'compare' (rank "
                    "a family), 'cross-refute' (the closed-loop matrix), "
                    "or 'closed-loop' (simulate from the first model, "
                    "sweep and rank every model over it, plus the full "
                    "matrix — deliberately overlapping, so the planner's "
                    "global deduplication does the sharing). Models are "
                    "bundled names or DSL file paths (inlined as source, "
                    "so the plan is self-contained).",
        epilog="examples:\n"
               "  python -m repro plan closed-loop "
               "--models pde_refined pde_initial -o plan.json\n"
               "  python -m repro plan compare --models pde_initial "
               "pde_refined --simulate-from pde_refined\n"
               "  python -m repro plan sweep --models model.dsl "
               "--dataset noisy --scale 0.3",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    plan.add_argument("template",
                      choices=("sweep", "compare", "cross-refute",
                               "closed-loop"),
                      help="campaign shape to generate")
    plan.add_argument("--models", nargs="+", required=True,
                      help="bundled model names or DSL file paths")
    plan.add_argument("--dataset", choices=("standard", "noisy"),
                      default="standard",
                      help="bundled dataset for sweep/compare templates")
    plan.add_argument("--scale", type=float, default=1.0,
                      help="bundled-dataset workload scale factor")
    plan.add_argument("--simulate-from", metavar="MODEL", default=None,
                      help="sweep over a dataset simulated from this model "
                           "instead of a bundled dataset")
    plan.add_argument("--n-observations", type=int, default=3,
                      help="simulated dataset size")
    plan.add_argument("--n-uops", type=int, default=20000,
                      help="µops per simulated observation")
    plan.add_argument("--seed", type=int, default=0,
                      help="base seed for simulated datasets")
    plan.add_argument("-o", "--output",
                      help="output .json path (stdout if omitted)")
    plan.set_defaults(handler=cmd_plan)

    show = commands.add_parser(
        "show",
        help="render any serialized result",
        description="Load a serialized result of any kind — an "
                    "AnalysisReport, ModelSweep, CompareResult, "
                    "RefutationMatrix, a PlanResult bundle, a plan spec "
                    "— by its schema's kind tag and print its summary.",
        epilog="examples:\n"
               "  python -m repro sweep model.dsl --json > sweep.json\n"
               "  python -m repro show sweep.json\n"
               "  python -m repro run plan.json --json > result.json\n"
               "  python -m repro show result.json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    show.add_argument("result", help="serialized result JSON file")
    show.set_defaults(handler=cmd_show)

    simulate = commands.add_parser(
        "simulate",
        help="execute a µDD and emit synthetic counter totals",
        description="Execute a µDD with the repro.sim engine and print "
                    "synthetic counter totals; optionally close the loop "
                    "by testing the simulated observation against a second "
                    "model (exit 1 when the candidate is refuted).",
        epilog="examples:\n"
               "  python -m repro simulate model.dsl --n-uops 50000\n"
               "  python -m repro simulate --bundled merging_load_side \\\n"
               "      --weight Merged=Yes:3 --analyze no_merging_load_side\n"
               "  python -m repro simulate --bundled pde_initial --noisy "
               "--analyze pde_refined --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    simulate.add_argument("model", help="DSL model file (or bundled name with --bundled)")
    simulate.add_argument("--bundled", action="store_true",
                          help="treat model arguments as bundled-model names")
    simulate.add_argument("--n-uops", type=int, default=20000,
                          help="µops per simulated trace")
    simulate.add_argument("--traces", type=int, default=1,
                          help="batched trace count (prints mean totals)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--weight", action="append", metavar="PROP=VALUE:W",
                          help="bias a branch choice (repeatable)")
    simulate.add_argument("--noisy", action="store_true",
                          help="replay the run through counter multiplexing: print "
                               "scale-estimated totals and analyze the confidence "
                               "region (single trace only)")
    simulate.add_argument("--analyze", metavar="MODEL",
                          help="close the loop: test the simulated observation "
                               "against another model (exit 1 when refuted)")
    simulate.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                          help="LP backend for --analyze verdicts")
    simulate.add_argument(
        "--sim-backend", default="auto",
        choices=("interpreter", "vector", "codegen", "auto"),
        help="simulation engine (identical totals for every choice; "
             "compiled backends are faster on repeated or large runs)")
    _add_runtime_flags(
        simulate,
        "process-pool size for sharded sweeps (single-run simulation "
        "itself is vectorised in-process)")
    simulate.set_defaults(handler=cmd_simulate)

    errata = commands.add_parser(
        "errata-check",
        help="check a measurement plan",
        description="Pre-flight a measurement plan against the known "
                    "counter errata (e.g. HSD29/HSM30): warn when a "
                    "planned counter is unreliable in this configuration.",
        epilog="example:\n"
               "  python -m repro errata-check "
               "--counters load.causes_walk,load.stlb_hit --smt",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    errata.add_argument("--counters", required=True,
                        help="comma-separated counter names (paper-style)")
    errata.add_argument("--smt", action="store_true", help="SMT enabled")
    errata.set_defaults(handler=cmd_errata_check)

    trace = commands.add_parser(
        "trace",
        help="inspect --trace files",
        description="Tooling for the trace files every command records "
                    "with --trace: 'summarize' reduces a JSONL trace to "
                    "a plain-text breakdown of span totals, cache "
                    "hit-rates per tier, and the LP solve-time "
                    "histogram.",
        epilog="examples:\n"
               "  python -m repro run plan.json --trace run.jsonl\n"
               "  python -m repro trace summarize run.jsonl\n"
               "  python -m repro trace summarize run.jsonl --json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    summarize = trace_commands.add_parser(
        "summarize",
        help="reduce a JSONL trace to a breakdown table",
        description="Load a JSONL trace file (validating its schema) "
                    "and print span totals, phase counts, cache "
                    "hit-rates per tier, and the LP solve-time "
                    "histogram.",
    )
    summarize.add_argument("trace_file", help="JSONL trace file "
                                              "(from --trace)")
    summarize.add_argument("--top", type=int, default=15,
                           help="span rows to show (by cumulative time)")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary dict as JSON instead "
                                "of the table")
    summarize.set_defaults(handler=cmd_trace_summarize)

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant analysis daemon",
        description="Run the repro.serve HTTP daemon: clients POST plan "
                    "JSON to /v1/plans and get a job id back, poll or "
                    "stream per-cell progress, cancel jobs, and fetch "
                    "canonical PlanResult bundles. All tenants share one "
                    "content-addressed task space — overlapping plans "
                    "compute each cell exactly once (per daemon lifetime, "
                    "or ever with --cache-dir) — scheduled with weighted "
                    "fair sharing across tenants and priority classes. "
                    "Submissions beyond --max-queue are rejected with "
                    "HTTP 429 + Retry-After.",
        epilog="examples:\n"
               "  python -m repro serve --port 8651 --workers 4 "
               "--cache-dir .repro-cache\n"
               "  python -m repro serve --host 0.0.0.0 --max-queue 32",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind")
    serve.add_argument("--port", type=int, default=8651,
                       help="TCP port to bind (0 picks an ephemeral port)")
    serve.add_argument("--max-queue", type=int, default=16, metavar="N",
                       help="admission bound: jobs queued or running "
                            "beyond this are rejected with HTTP 429 + "
                            "Retry-After (backpressure)")
    serve.add_argument("--backend", default="exact",
                       choices=("exact", "scipy"),
                       help="LP backend for every verdict the daemon "
                            "computes")
    serve.add_argument(
        "--sim-backend", default="auto",
        choices=("interpreter", "vector", "codegen", "auto"),
        help="simulation engine for plans' dataset ops")
    _add_runtime_flags(
        serve, "worker threads draining the shared fair queue (cell "
               "batches from every tenant's jobs)")
    serve.set_defaults(handler=cmd_serve)

    def add_client_flags(subparser):
        """Daemon-address flags shared by the client commands."""
        subparser.add_argument(
            "--url", default="http://127.0.0.1:8651",
            help="base URL of the serve daemon")

    submit = commands.add_parser(
        "submit",
        help="POST a plan to a serve daemon",
        description="Submit a serialized repro.plan spec to a running "
                    "'repro serve' daemon and print the job id. The "
                    "daemon deduplicates against every other tenant's "
                    "work: cells any earlier job computed are cache "
                    "hits. With --wait, block until the job finishes "
                    "(exit 1 when it failed or was cancelled).",
        epilog="examples:\n"
               "  python -m repro submit examples/plans/closed_loop.json\n"
               "  python -m repro submit plan.json --tenant alice "
               "--priority high --wait\n"
               "  python -m repro submit plan.json --url "
               "http://analysis-host:8651 --json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    submit.add_argument("plan", help="plan JSON file (author one with "
                                     "'python -m repro plan ...')")
    add_client_flags(submit)
    submit.add_argument("--tenant", default="anon",
                        help="tenant identity for fair-share scheduling "
                             "and per-tenant metrics")
    submit.add_argument("--priority", default="normal",
                        choices=("high", "normal", "low"),
                        help="priority class (weighted fair share, never "
                             "starvation)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal state")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to block with --wait")
    submit.add_argument("--json", action="store_true",
                        help="print the full job status document as JSON")
    submit.set_defaults(handler=cmd_submit)

    status = commands.add_parser(
        "status",
        help="report serve job states",
        description="Report one job's state, progress, and cache "
                    "statistics — or, without a job id, list every job "
                    "the daemon knows, most recent first.",
        epilog="examples:\n"
               "  python -m repro status\n"
               "  python -m repro status job-000001 --json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    status.add_argument("job", nargs="?", default=None,
                        help="job id (omit to list all jobs)")
    add_client_flags(status)
    status.add_argument("--json", action="store_true",
                        help="print status documents as JSON")
    status.set_defaults(handler=cmd_status)

    fetch = commands.add_parser(
        "fetch",
        help="download a finished job's result bundle",
        description="Download the canonical PlanResult bundle of a "
                    "finished job — the same schema 'repro run --json' "
                    "emits, loadable with 'repro show'. Identical "
                    "submitted plans fetch byte-identical bundles.",
        epilog="examples:\n"
               "  python -m repro fetch job-000001 -o result.json\n"
               "  python -m repro fetch job-000001 | python -m repro "
               "show /dev/stdin",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    fetch.add_argument("job", help="job id")
    add_client_flags(fetch)
    fetch.add_argument("-o", "--output",
                       help="output .json path (stdout if omitted)")
    fetch.set_defaults(handler=cmd_fetch)

    cancel = commands.add_parser(
        "cancel",
        help="cancel a serve job",
        description="Request cooperative cancellation of a job: queued "
                    "jobs cancel at admission, running jobs at the next "
                    "batch boundary. Cells already computed stay in the "
                    "shared store, so re-submitting the same plan "
                    "resumes where the cancelled job stopped.",
        epilog="example:\n"
               "  python -m repro cancel job-000001",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    cancel.add_argument("job", help="job id")
    add_client_flags(cancel)
    cancel.set_defaults(handler=cmd_cancel)

    # Every command records: --trace/--trace-format are universal, like
    # --help. (Except the trace tooling itself, which reads trace files
    # rather than producing them.)
    for name, subcommand in commands.choices.items():
        if name != "trace":
            _add_trace_flags(subcommand)
    return parser


def _run_traced(arguments):
    """Run a command handler, honouring ``--trace``.

    The tracer is process-wide for the handler's extent — every layer
    (and every pool worker, via the shipped-records protocol) records
    into it — and the trace file is written on *every* exit path, so a
    failing run still leaves its timeline behind for diagnosis.
    """
    trace_path = getattr(arguments, "trace", None)
    if not trace_path:
        return arguments.handler(arguments)
    from repro.obs import Tracer, activate, write_trace

    tracer = Tracer()
    try:
        with activate(tracer):
            return arguments.handler(arguments)
    finally:
        write_trace(trace_path, tracer.drain(),
                    metrics=tracer.metrics.as_dict(),
                    fmt=arguments.trace_format)
        print("wrote trace to %s" % trace_path, file=sys.stderr)


def main(argv=None):
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _run_traced(arguments)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
