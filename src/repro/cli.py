"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``constraints <model.dsl>``
    Deduce and print the model constraints a µDD implies.
``analyze <model.dsl> (--observation k=v,... | --perf-csv file.csv)``
    Test an observation (exact totals or a perf interval CSV summarised
    as a confidence region) against a model; print violations and a
    Farkas certificate for infeasible observations.
``render <model.dsl> [-o out.dot]``
    Export the µDD as Graphviz dot.
``case-study [--scale S]``
    Run the Table 3 m-series sweep on the simulated Haswell MMU.
``errata-check --counters a,b,... [--smt]``
    Pre-flight errata check for a measurement plan.
"""

import argparse
import sys

from repro.cone import ModelCone, identify_violations, separating_constraint
from repro.cone import test_point_feasibility, test_region_feasibility
from repro.counters.errata import check_measurement_plan
from repro.dsl import compile_dsl
from repro.errors import ReproError
from repro.mudd.dot import to_dot


def _load_model(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_dsl(source, name=path)


def _parse_observation(text):
    observation = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReproError("observation items must be name=value, got %r" % (item,))
        name, value = item.split("=", 1)
        observation[name.strip()] = float(value)
    if not observation:
        raise ReproError("empty observation")
    return observation


def cmd_constraints(arguments):
    mudd = _load_model(arguments.model)
    cone = ModelCone.from_mudd(mudd)
    constraints = cone.constraints()
    print("%d µpath signatures, %d constraints:" % (cone.n_paths, len(constraints)))
    for constraint in constraints:
        print("  " + constraint.render())
    return 0


def cmd_analyze(arguments):
    mudd = _load_model(arguments.model)
    cone = ModelCone.from_mudd(mudd)
    backend = arguments.backend

    if arguments.perf_csv:
        from repro.counters.perf_io import read_perf_csv

        samples = read_perf_csv(arguments.perf_csv, strict=False)
        samples = samples.subset(
            [name for name in samples.counters if name in cone.counters]
        )
        missing = [name for name in cone.counters if name not in samples.counters]
        if missing:
            print("error: CSV lacks model counters: %s" % ", ".join(missing))
            return 2
        region = samples.subset(cone.counters).confidence_region(
            confidence=arguments.confidence,
            correlated=not arguments.independent,
        )
        result = test_region_feasibility(cone, region, backend=backend)
        observation = region
    else:
        observation = _parse_observation(arguments.observation)
        result = test_point_feasibility(cone, observation, backend=backend)

    if result.feasible:
        print("FEASIBLE: the observation is consistent with the model.")
        return 0
    print("INFEASIBLE: the observation violates the model.")
    certificate = separating_constraint(
        cone,
        observation if isinstance(observation, dict) else observation.center(),
        backend=backend,
    )
    if certificate is not None:
        print("certificate (one violated constraint): %s" % certificate.render())
    if arguments.violations:
        print("all violated constraints:")
        for violation in identify_violations(cone, observation, backend=backend):
            print("  " + violation.render())
    return 1


def cmd_render(arguments):
    mudd = _load_model(arguments.model)
    text = to_dot(mudd)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % arguments.output)
    else:
        print(text, end="")
    return 0


def cmd_case_study(arguments):
    from repro.models import M_SERIES, build_model_cone, standard_dataset
    from repro.pipeline import CounterPoint

    observations = standard_dataset(scale=arguments.scale)
    counterpoint = CounterPoint(backend="scipy")
    print("%d observations" % len(observations))
    print("%-5s %-46s %s" % ("model", "features", "#infeasible"))
    for name in sorted(M_SERIES, key=lambda n: int(n[1:])):
        sweep = counterpoint.sweep(build_model_cone(M_SERIES[name]), observations)
        star = "*" if sweep.feasible else " "
        print("%s%-4s %-46s %d" % (
            star, name, ",".join(sorted(M_SERIES[name])) or "(none)", sweep.n_infeasible,
        ))
    return 0


def cmd_errata_check(arguments):
    counters = [name.strip() for name in arguments.counters.split(",") if name.strip()]
    findings = check_measurement_plan(counters, smt_enabled=arguments.smt)
    if not findings:
        print("OK: measurement plan is errata-clean.")
        return 0
    for name, erratum in findings:
        print("WARNING: %s is affected by %s: %s" % (
            name, erratum.erratum_id, erratum.description,
        ))
    return 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="CounterPoint: test µDD models against HEC data"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    constraints = commands.add_parser("constraints", help="deduce model constraints")
    constraints.add_argument("model", help="DSL model file")
    constraints.set_defaults(handler=cmd_constraints)

    analyze = commands.add_parser("analyze", help="test an observation against a model")
    analyze.add_argument("model", help="DSL model file")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--observation", help="comma-separated name=value totals")
    source.add_argument("--perf-csv", help="perf stat -I -x, interval CSV file")
    analyze.add_argument("--backend", default="exact", choices=("exact", "scipy"))
    analyze.add_argument("--confidence", type=float, default=0.99)
    analyze.add_argument("--independent", action="store_true",
                         help="use the independent-counter baseline region")
    analyze.add_argument("--violations", action="store_true",
                         help="run full constraint deduction and list all violations")
    analyze.set_defaults(handler=cmd_analyze)

    render = commands.add_parser("render", help="export a µDD as Graphviz dot")
    render.add_argument("model", help="DSL model file")
    render.add_argument("-o", "--output", help="output .dot path (stdout if omitted)")
    render.set_defaults(handler=cmd_render)

    case_study = commands.add_parser("case-study", help="run the Table 3 sweep")
    case_study.add_argument("--scale", type=float, default=1.0)
    case_study.set_defaults(handler=cmd_case_study)

    errata = commands.add_parser("errata-check", help="check a measurement plan")
    errata.add_argument("--counters", required=True,
                        help="comma-separated counter names (paper-style)")
    errata.add_argument("--smt", action="store_true", help="SMT enabled")
    errata.set_defaults(handler=cmd_errata_check)
    return parser


def main(argv=None):
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
