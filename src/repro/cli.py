"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``constraints <model.dsl>``
    Deduce and print the model constraints a µDD implies.
``analyze <model.dsl> (--observation k=v,... | --perf-csv file.csv)``
    Test an observation (exact totals or a perf interval CSV summarised
    as a confidence region) against a model; print violations and a
    Farkas certificate for infeasible observations.
``render <model.dsl> [-o out.dot]``
    Export the µDD as Graphviz dot.
``case-study [--scale S]``
    Run the Table 3 m-series sweep on the simulated Haswell MMU.
``errata-check --counters a,b,... [--smt]``
    Pre-flight errata check for a measurement plan.
``sweep <model.dsl> [--dataset standard|noisy | --simulate-from M]``
    Evaluate one model against a whole dataset; print which
    observations it fails to explain and the violated constraint per
    failure.
``compare <model.dsl> [<model.dsl> ...]``
    Sweep a model family over one dataset and rank it (the Table 3
    workflow).
``simulate <model.dsl | --bundled name> [--n-uops N] [--traces T]``
    Execute a µDD with the :mod:`repro.sim` engine and print synthetic
    counter totals. ``--weight Prop=Value:W`` biases branch choices,
    ``--noisy`` replays the run through counter multiplexing, and
    ``--analyze OTHER`` closes the loop: the simulated observation is
    tested against a second model (exit 1 when refuted). The
    closed-loop workflow is simulate-then-analyze::

        python -m repro simulate --bundled merging_load_side \\
            --weight Merged=Yes:3 --analyze no_merging_load_side

Shared performance flags (``analyze``, ``sweep``, ``compare``,
``simulate``, ``case-study``): ``--cache-dir DIR`` persists model cones
*and* feasibility verdicts on disk (:mod:`repro.cone.diskcache`,
:mod:`repro.results.store`) — deduction and verdicts run once per
content ever, shared across runs and processes; ``--workers N`` shards
dataset sweeps across a process pool (:mod:`repro.parallel`). The
analysis commands (``analyze``, ``sweep``, ``compare``, ``case-study``)
accept ``--json`` to emit the stable :mod:`repro.results` schema
instead of text.
"""

import argparse
import sys

from repro.cone import ModelCone, identify_violations, separating_constraint
from repro.cone import test_point_feasibility, test_region_feasibility
from repro.counters.errata import check_measurement_plan
from repro.dsl import compile_dsl
from repro.errors import ReproError
from repro.mudd.dot import to_dot


def _load_model(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_dsl(source, name=path)


def _model_cone(mudd, arguments, counters=None):
    """Build (or load) a model cone honouring ``--cache-dir``."""
    cache_dir = getattr(arguments, "cache_dir", None)
    if cache_dir:
        from repro.cone.cache import get_model_cone

        return get_model_cone(mudd, counters=counters, cache_dir=cache_dir)
    return ModelCone.from_mudd(mudd, counters=counters)


def _parse_observation(text):
    observation = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReproError("observation items must be name=value, got %r" % (item,))
        name, value = item.split("=", 1)
        observation[name.strip()] = float(value)
    if not observation:
        raise ReproError("empty observation")
    return observation


def cmd_constraints(arguments):
    mudd = _load_model(arguments.model)
    cone = _model_cone(mudd, arguments)
    constraints = cone.constraints()
    print("%d µpath signatures, %d constraints:" % (cone.n_paths, len(constraints)))
    for constraint in constraints:
        print("  " + constraint.render())
    return 0


def cmd_analyze(arguments):
    from repro.pipeline import CounterPoint

    mudd = _load_model(arguments.model)
    # Cone construction goes through the facade so --workers/--cache-dir
    # reach the pipeline (the disk cache serves the cone; the pool is
    # available to any sharded work the pipeline grows). The context
    # manager reaps the pool on every exit path.
    with CounterPoint(
        backend=arguments.backend,
        confidence=arguments.confidence,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    ) as counterpoint:
        cone = counterpoint.model_cone(mudd)
        backend = arguments.backend

        if arguments.perf_csv:
            from repro.counters.perf_io import read_perf_csv

            samples = read_perf_csv(arguments.perf_csv, strict=False)
            samples = samples.subset(
                [name for name in samples.counters if name in cone.counters]
            )
            missing = [name for name in cone.counters if name not in samples.counters]
            if missing:
                print("error: CSV lacks model counters: %s" % ", ".join(missing))
                return 2
            region = samples.subset(cone.counters).confidence_region(
                confidence=arguments.confidence,
                correlated=not arguments.independent,
            )
            result = test_region_feasibility(cone, region, backend=backend)
            observation = region
        else:
            observation = _parse_observation(arguments.observation)
            result = test_point_feasibility(cone, observation, backend=backend)

        certificate = None
        violations = []
        if not result.feasible:
            certificate = separating_constraint(
                cone,
                observation if isinstance(observation, dict) else observation.center(),
                backend=backend,
            )
            if arguments.violations:
                violations = identify_violations(
                    cone, observation, backend=backend
                )

        if arguments.json:
            from repro.results import AnalysisReport

            report = AnalysisReport(
                cone.name,
                result.feasible,
                violations,
                witness=result.witness,
                certificate=certificate,
            )
            print(report.to_json(indent=2))
            return 0 if result.feasible else 1

        if result.feasible:
            print("FEASIBLE: the observation is consistent with the model.")
            return 0
        print("INFEASIBLE: the observation violates the model.")
        if certificate is not None:
            print("certificate (one violated constraint): %s" % certificate.render())
        if arguments.violations:
            print("all violated constraints:")
            for violation in violations:
                print("  " + violation.render())
        return 1


def cmd_render(arguments):
    mudd = _load_model(arguments.model)
    text = to_dot(mudd)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % arguments.output)
    else:
        print(text, end="")
    return 0


def cmd_case_study(arguments):
    from repro.models import M_SERIES, build_model_cone, standard_dataset
    from repro.pipeline import CounterPoint

    from repro.results import CompareResult

    observations = standard_dataset(scale=arguments.scale)
    names = sorted(M_SERIES, key=lambda n: int(n[1:]))
    with CounterPoint(
        backend="scipy",
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    ) as counterpoint:
        sweeps = {}
        for name in names:
            sweep = counterpoint.sweep(
                build_model_cone(M_SERIES[name], name=name),
                observations,
                explain=arguments.json,
            )
            # The process-wide cone memo keys by feature set only, so a
            # cone built earlier in this process may carry another
            # name; key the comparison by the m-series name regardless.
            sweep.model_name = name
            sweeps[name] = sweep
        comparison = CompareResult(sweeps)
    if arguments.json:
        print(comparison.to_json(indent=2))
        return 0
    print("%d observations" % len(observations))
    print("%-5s %-46s %s" % ("model", "features", "#infeasible"))
    for name in names:
        sweep = comparison[name]
        star = "*" if sweep.feasible else " "
        print("%s%-4s %-46s %d" % (
            star, name, ",".join(sorted(M_SERIES[name])) or "(none)", sweep.n_infeasible,
        ))
    return 0


def _sweep_model(arguments, value):
    """A model argument for sweep/compare: DSL file, or bundled name."""
    if getattr(arguments, "bundled", False):
        from repro.sim import as_mudd

        return as_mudd(value)
    return _load_model(value)


def _sweep_observations(arguments):
    """The dataset a sweep/compare runs against."""
    if getattr(arguments, "simulate_from", None):
        from repro.sim import simulate_dataset

        source = _sweep_model(arguments, arguments.simulate_from)
        return simulate_dataset(
            source,
            arguments.n_observations,
            n_uops=arguments.n_uops,
            seed=arguments.seed,
        )
    if arguments.dataset == "noisy":
        from repro.models.dataset import noisy_dataset

        return noisy_dataset(scale=arguments.scale)
    from repro.models.dataset import standard_dataset

    return standard_dataset(scale=arguments.scale)


def _sweep_pipeline(arguments):
    from repro.pipeline import CounterPoint

    return CounterPoint(
        backend=arguments.backend,
        confidence=arguments.confidence,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    )


def _project_observations(observations, cone):
    """Restrict dataset observations to a cone's counter scope.

    The bundled hardware datasets carry the full 26-counter Haswell
    space; a DSL model usually covers a subset. Like ``analyze
    --perf-csv``, the measurement is projected onto the model's
    counters — a counter the model never mentions cannot refute it. A
    counter the model *does* mention but the dataset lacks is an error.
    """
    from repro.models.dataset import Observation

    first = observations[0]
    missing = [name for name in cone.counters if name not in first.totals]
    if missing:
        raise ReproError(
            "dataset lacks model counters: %s" % ", ".join(missing)
        )
    if all(name in cone.counters for name in first.totals):
        return observations
    return [
        Observation(
            observation.name,
            observation.page_size,
            {name: observation.totals[name] for name in cone.counters},
            observation.samples.subset(cone.counters),
            meta=observation.meta,
        )
        for observation in observations
    ]


def cmd_sweep(arguments):
    observations = _sweep_observations(arguments)
    with _sweep_pipeline(arguments) as counterpoint:
        # Simulated datasets define the counter ordering; the bundled
        # hardware datasets are projected onto the model's scope.
        counters = getattr(observations[0].samples, "counters", None) \
            if arguments.simulate_from else None
        cone = counterpoint.model_cone(
            _sweep_model(arguments, arguments.model), counters=counters
        )
        sweep = counterpoint.sweep(
            cone,
            _project_observations(observations, cone),
            use_regions=arguments.use_regions,
            correlated=not arguments.independent,
            explain=True,
        )
    if arguments.json:
        print(sweep.to_json(indent=2))
    else:
        print(sweep.summary())
    return 0 if sweep.feasible else 1


def cmd_compare(arguments):
    observations = _sweep_observations(arguments)
    with _sweep_pipeline(arguments) as counterpoint:
        counters = getattr(observations[0].samples, "counters", None) \
            if arguments.simulate_from else None
        sweeps = []
        for model in arguments.models:
            cone = counterpoint.model_cone(
                _sweep_model(arguments, model), counters=counters
            )
            sweeps.append(counterpoint.sweep(
                cone,
                _project_observations(observations, cone),
                use_regions=arguments.use_regions,
                correlated=not arguments.independent,
                explain=True,
            ))
        from repro.results import CompareResult

        comparison = CompareResult(sweeps)
    if arguments.json:
        print(comparison.to_json(indent=2))
    else:
        print(comparison.summary())
    return 0 if comparison.feasible_models else 1


def _parse_weights(items):
    """Parse repeated ``--weight Prop=Value:W`` options."""
    weights = {}
    for item in items or ():
        try:
            prop, rest = item.split("=", 1)
            value, weight = rest.rsplit(":", 1)
            weights.setdefault(prop.strip(), {})[value.strip()] = float(weight)
        except ValueError:
            raise ReproError(
                "--weight expects Prop=Value:W, got %r" % (item,)
            ) from None
    return weights


def _simulate_model(arguments, argument_name):
    from repro.sim import as_mudd

    value = getattr(arguments, argument_name)
    if arguments.bundled:
        return as_mudd(value)
    return _load_model(value)


def cmd_simulate(arguments):
    from repro.pipeline import CounterPoint
    from repro.sim import batch_simulate, simulate_observation

    model = _simulate_model(arguments, "model")
    weights = _parse_weights(arguments.weight)
    if arguments.traces < 1:
        raise ReproError("--traces must be at least 1, got %d" % arguments.traces)
    if arguments.noisy and arguments.traces > 1:
        raise ReproError("--noisy applies to single-trace runs (drop --traces)")

    counters = None
    if arguments.traces > 1:
        result = batch_simulate(
            model,
            arguments.n_uops,
            n_traces=arguments.traces,
            weights=weights,
            seed=arguments.seed,
        )
        print(
            "%d traces x %d µops of %s (mean totals):"
            % (result.n_traces, arguments.n_uops, model.name)
        )
        # The mean of feasible trace totals stays in any convex cone, so
        # analyzing it keeps the diagonal-feasibility guarantee.
        totals = observation = result.mean()
    else:
        simulated = simulate_observation(
            model,
            n_uops=arguments.n_uops,
            weights=weights,
            seed=arguments.seed,
            noisy=arguments.noisy,
        )
        print("1 trace x %d µops of %s:" % (arguments.n_uops, model.name))
        if arguments.noisy:
            # Multiplexed measurement: report the scale-estimated totals
            # and analyze the confidence region, like perf data would be.
            counters = simulated.samples.counters
            means = simulated.samples.mean_observation()
            totals = {
                name: means[name] * simulated.samples.n_samples for name in means
            }
            observation = simulated.region()
        else:
            totals = observation = simulated.point()
    for name in sorted(totals):
        print("  %s=%g" % (name, totals[name]))

    if not arguments.analyze:
        return 0
    candidate = _simulate_model(arguments, "analyze")
    if counters is None:
        counters = sorted(totals)
    cone = _model_cone(candidate, arguments, counters=counters)
    with CounterPoint(
        backend=arguments.backend,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    ) as counterpoint:
        report = counterpoint.analyze(cone, observation)
    print(report.summary())
    return 0 if report.feasible else 1


def cmd_errata_check(arguments):
    counters = [name.strip() for name in arguments.counters.split(",") if name.strip()]
    findings = check_measurement_plan(counters, smt_enabled=arguments.smt)
    if not findings:
        print("OK: measurement plan is errata-clean.")
        return 0
    for name, erratum in findings:
        print("WARNING: %s is affected by %s: %s" % (
            name, erratum.erratum_id, erratum.description,
        ))
    return 1


def _add_runtime_flags(subparser, workers_help):
    """The shared performance knobs (``--workers``, ``--cache-dir``)."""
    subparser.add_argument(
        "--workers", type=int, default=1, metavar="N", help=workers_help
    )
    subparser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk model-cone cache: deduced cones are "
             "stored here and reused across runs and processes "
             "(computed once per model, ever)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CounterPoint: test µDD microarchitectural models "
                    "against hardware event counter (HEC) data — deduce "
                    "the linear constraints a model implies, refute models "
                    "whose constraints the data violates, and simulate "
                    "models to generate synthetic observations.",
        epilog="run 'python -m repro <command> --help' for per-command "
               "examples; see README.md for the 60-second tour",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    constraints = commands.add_parser(
        "constraints",
        help="deduce model constraints",
        description="Deduce and print the linear HEC constraints a µDD "
                    "model implies (the paper's Section 6 pipeline: "
                    "equalities from Gaussian elimination, facet "
                    "inequalities from the double description method).",
        epilog="example:\n"
               "  python -m repro constraints model.dsl\n"
               "  python -m repro constraints model.dsl --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    constraints.add_argument("model", help="DSL model file")
    constraints.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk model-cone cache (reused across runs)")
    constraints.set_defaults(handler=cmd_constraints)

    analyze = commands.add_parser(
        "analyze",
        help="test an observation against a model",
        description="Test one observation — exact counter totals or a "
                    "perf interval CSV summarised as a confidence region — "
                    "against a µDD model. Exit status: 0 feasible, "
                    "1 infeasible (the observation refutes the model), "
                    "2 usage error.",
        epilog="examples:\n"
               "  python -m repro analyze model.dsl "
               "--observation load.causes_walk=5,load.pde\\$_miss=12\n"
               "  python -m repro analyze model.dsl --perf-csv run.csv "
               "--confidence 0.99 --violations\n"
               "  python -m repro analyze model.dsl --perf-csv run.csv "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    analyze.add_argument("model", help="DSL model file")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--observation", help="comma-separated name=value totals")
    source.add_argument("--perf-csv", help="perf stat -I -x, interval CSV file")
    analyze.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                         help="LP backend: exact rational simplex (certified "
                              "verdicts) or scipy/HiGHS (fast)")
    analyze.add_argument("--confidence", type=float, default=0.99,
                         help="confidence level for --perf-csv regions")
    analyze.add_argument("--independent", action="store_true",
                         help="use the independent-counter baseline region")
    analyze.add_argument("--violations", action="store_true",
                         help="run full constraint deduction and list all violations")
    analyze.add_argument("--json", action="store_true",
                         help="emit the AnalysisReport result schema as JSON "
                              "(exit status semantics unchanged)")
    _add_runtime_flags(
        analyze,
        "process-pool size for sharded sweeps (a single-observation "
        "analysis itself runs in-process)")
    analyze.set_defaults(handler=cmd_analyze)

    render = commands.add_parser(
        "render",
        help="export a µDD as Graphviz dot",
        description="Compile a DSL model and export its µDD as Graphviz "
                    "dot (render with: dot -Tsvg out.dot -o out.svg).",
        epilog="example:\n  python -m repro render model.dsl -o model.dot",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    render.add_argument("model", help="DSL model file")
    render.add_argument("-o", "--output", help="output .dot path (stdout if omitted)")
    render.set_defaults(handler=cmd_render)

    case_study = commands.add_parser(
        "case-study",
        help="run the Table 3 sweep",
        description="Run the paper's Table 3 case study: sweep the "
                    "m-series Haswell MMU models over the simulated "
                    "standard dataset and report which observations each "
                    "model fails to explain (* marks feasible models).",
        epilog="examples:\n"
               "  python -m repro case-study\n"
               "  python -m repro case-study --workers 4 --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    case_study.add_argument("--scale", type=float, default=1.0,
                            help="workload scale factor for the dataset")
    case_study.add_argument("--json", action="store_true",
                            help="emit the CompareResult schema as JSON (with "
                                 "per-observation violated constraints)")
    _add_runtime_flags(
        case_study,
        "shard each model's dataset sweep across N worker processes")
    case_study.set_defaults(handler=cmd_case_study)

    def add_sweep_dataset_flags(subparser):
        """Dataset selection shared by ``sweep`` and ``compare``."""
        subparser.add_argument(
            "--dataset", choices=("standard", "noisy"), default="standard",
            help="bundled simulated-hardware dataset to sweep over")
        subparser.add_argument(
            "--scale", type=float, default=1.0,
            help="workload scale factor for the bundled datasets")
        subparser.add_argument(
            "--simulate-from", metavar="MODEL", default=None,
            help="sweep over a dataset simulated from this model instead "
                 "(DSL file, or bundled name with --bundled)")
        subparser.add_argument(
            "--n-observations", type=int, default=4,
            help="simulated dataset size for --simulate-from")
        subparser.add_argument(
            "--n-uops", type=int, default=20000,
            help="µops per simulated observation for --simulate-from")
        subparser.add_argument("--seed", type=int, default=0,
                               help="base seed for --simulate-from")
        subparser.add_argument(
            "--bundled", action="store_true",
            help="treat model arguments as bundled-model names")
        subparser.add_argument(
            "--backend", default="scipy", choices=("exact", "scipy"),
            help="LP backend (scipy/HiGHS is the fast sweep default)")
        subparser.add_argument(
            "--confidence", type=float, default=0.99,
            help="confidence level for --use-regions")
        subparser.add_argument(
            "--use-regions", action="store_true",
            help="test confidence regions instead of exact totals")
        subparser.add_argument(
            "--independent", action="store_true",
            help="with --use-regions, use the independent-counter baseline")
        subparser.add_argument(
            "--json", action="store_true",
            help="emit the result schema as JSON")

    sweep = commands.add_parser(
        "sweep",
        help="evaluate one model against a dataset",
        description="Evaluate one µDD model against a whole dataset of "
                    "observations and report which observations it fails "
                    "to explain — with the violated model constraint per "
                    "failure. Verdicts are memoized on disk with "
                    "--cache-dir, so re-sweeping a grown dataset only "
                    "tests the new observations. Exit status: 0 the model "
                    "explains everything, 1 it was refuted, 2 usage error.",
        epilog="examples:\n"
               "  python -m repro sweep model.dsl --scale 0.3\n"
               "  python -m repro sweep --bundled pde_refined "
               "--simulate-from pde_initial --json\n"
               "  python -m repro sweep model.dsl --workers 4 "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("model", help="DSL model file (or bundled name with --bundled)")
    add_sweep_dataset_flags(sweep)
    _add_runtime_flags(
        sweep, "shard the dataset sweep across N worker processes")
    sweep.set_defaults(handler=cmd_sweep)

    compare = commands.add_parser(
        "compare",
        help="rank a model family over a dataset",
        description="Sweep several candidate models over one dataset and "
                    "rank them by how many observations each fails to "
                    "explain (the paper's Table 3 workflow). Exit status: "
                    "0 when at least one model explains the whole "
                    "dataset, 1 when every model is refuted.",
        epilog="examples:\n"
               "  python -m repro compare a.dsl b.dsl --scale 0.3\n"
               "  python -m repro compare --bundled pde_initial pde_refined "
               "--simulate-from pde_refined --json\n"
               "  python -m repro compare a.dsl b.dsl --workers 4 "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    compare.add_argument("models", nargs="+",
                         help="DSL model files (or bundled names with --bundled)")
    add_sweep_dataset_flags(compare)
    _add_runtime_flags(
        compare, "shard each model's sweep across N worker processes")
    compare.set_defaults(handler=cmd_compare)

    simulate = commands.add_parser(
        "simulate",
        help="execute a µDD and emit synthetic counter totals",
        description="Execute a µDD with the repro.sim engine and print "
                    "synthetic counter totals; optionally close the loop "
                    "by testing the simulated observation against a second "
                    "model (exit 1 when the candidate is refuted).",
        epilog="examples:\n"
               "  python -m repro simulate model.dsl --n-uops 50000\n"
               "  python -m repro simulate --bundled merging_load_side \\\n"
               "      --weight Merged=Yes:3 --analyze no_merging_load_side\n"
               "  python -m repro simulate --bundled pde_initial --noisy "
               "--analyze pde_refined --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    simulate.add_argument("model", help="DSL model file (or bundled name with --bundled)")
    simulate.add_argument("--bundled", action="store_true",
                          help="treat model arguments as bundled-model names")
    simulate.add_argument("--n-uops", type=int, default=20000,
                          help="µops per simulated trace")
    simulate.add_argument("--traces", type=int, default=1,
                          help="batched trace count (prints mean totals)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--weight", action="append", metavar="PROP=VALUE:W",
                          help="bias a branch choice (repeatable)")
    simulate.add_argument("--noisy", action="store_true",
                          help="replay the run through counter multiplexing: print "
                               "scale-estimated totals and analyze the confidence "
                               "region (single trace only)")
    simulate.add_argument("--analyze", metavar="MODEL",
                          help="close the loop: test the simulated observation "
                               "against another model (exit 1 when refuted)")
    simulate.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                          help="LP backend for --analyze verdicts")
    _add_runtime_flags(
        simulate,
        "process-pool size for sharded sweeps (single-run simulation "
        "itself is vectorised in-process)")
    simulate.set_defaults(handler=cmd_simulate)

    errata = commands.add_parser(
        "errata-check",
        help="check a measurement plan",
        description="Pre-flight a measurement plan against the known "
                    "counter errata (e.g. HSD29/HSM30): warn when a "
                    "planned counter is unreliable in this configuration.",
        epilog="example:\n"
               "  python -m repro errata-check "
               "--counters load.causes_walk,load.stlb_hit --smt",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    errata.add_argument("--counters", required=True,
                        help="comma-separated counter names (paper-style)")
    errata.add_argument("--smt", action="store_true", help="SMT enabled")
    errata.set_defaults(handler=cmd_errata_check)
    return parser


def main(argv=None):
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
