"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``constraints <model.dsl>``
    Deduce and print the model constraints a µDD implies.
``analyze <model.dsl> (--observation k=v,... | --perf-csv file.csv)``
    Test an observation (exact totals or a perf interval CSV summarised
    as a confidence region) against a model; print violations and a
    Farkas certificate for infeasible observations.
``render <model.dsl> [-o out.dot]``
    Export the µDD as Graphviz dot.
``case-study [--scale S]``
    Run the Table 3 m-series sweep on the simulated Haswell MMU.
``errata-check --counters a,b,... [--smt]``
    Pre-flight errata check for a measurement plan.
``simulate <model.dsl | --bundled name> [--n-uops N] [--traces T]``
    Execute a µDD with the :mod:`repro.sim` engine and print synthetic
    counter totals. ``--weight Prop=Value:W`` biases branch choices,
    ``--noisy`` replays the run through counter multiplexing, and
    ``--analyze OTHER`` closes the loop: the simulated observation is
    tested against a second model (exit 1 when refuted). The
    closed-loop workflow is simulate-then-analyze::

        python -m repro simulate --bundled merging_load_side \\
            --weight Merged=Yes:3 --analyze no_merging_load_side

Shared performance flags (``analyze``, ``simulate``, ``case-study``):
``--cache-dir DIR`` serves model cones from the persistent on-disk
cache (:mod:`repro.cone.diskcache`) — deduction runs once per model
ever, shared across runs and processes; ``--workers N`` shards dataset
sweeps across a process pool (:mod:`repro.parallel`).
"""

import argparse
import sys

from repro.cone import ModelCone, identify_violations, separating_constraint
from repro.cone import test_point_feasibility, test_region_feasibility
from repro.counters.errata import check_measurement_plan
from repro.dsl import compile_dsl
from repro.errors import ReproError
from repro.mudd.dot import to_dot


def _load_model(path):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_dsl(source, name=path)


def _model_cone(mudd, arguments, counters=None):
    """Build (or load) a model cone honouring ``--cache-dir``."""
    cache_dir = getattr(arguments, "cache_dir", None)
    if cache_dir:
        from repro.cone.cache import get_model_cone

        return get_model_cone(mudd, counters=counters, cache_dir=cache_dir)
    return ModelCone.from_mudd(mudd, counters=counters)


def _parse_observation(text):
    observation = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReproError("observation items must be name=value, got %r" % (item,))
        name, value = item.split("=", 1)
        observation[name.strip()] = float(value)
    if not observation:
        raise ReproError("empty observation")
    return observation


def cmd_constraints(arguments):
    mudd = _load_model(arguments.model)
    cone = _model_cone(mudd, arguments)
    constraints = cone.constraints()
    print("%d µpath signatures, %d constraints:" % (cone.n_paths, len(constraints)))
    for constraint in constraints:
        print("  " + constraint.render())
    return 0


def cmd_analyze(arguments):
    from repro.pipeline import CounterPoint

    mudd = _load_model(arguments.model)
    # Cone construction goes through the facade so --workers/--cache-dir
    # reach the pipeline (the disk cache serves the cone; the pool is
    # available to any sharded work the pipeline grows).
    counterpoint = CounterPoint(
        backend=arguments.backend,
        confidence=arguments.confidence,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    )
    cone = counterpoint.model_cone(mudd)
    backend = arguments.backend

    if arguments.perf_csv:
        from repro.counters.perf_io import read_perf_csv

        samples = read_perf_csv(arguments.perf_csv, strict=False)
        samples = samples.subset(
            [name for name in samples.counters if name in cone.counters]
        )
        missing = [name for name in cone.counters if name not in samples.counters]
        if missing:
            print("error: CSV lacks model counters: %s" % ", ".join(missing))
            return 2
        region = samples.subset(cone.counters).confidence_region(
            confidence=arguments.confidence,
            correlated=not arguments.independent,
        )
        result = test_region_feasibility(cone, region, backend=backend)
        observation = region
    else:
        observation = _parse_observation(arguments.observation)
        result = test_point_feasibility(cone, observation, backend=backend)

    if result.feasible:
        print("FEASIBLE: the observation is consistent with the model.")
        return 0
    print("INFEASIBLE: the observation violates the model.")
    certificate = separating_constraint(
        cone,
        observation if isinstance(observation, dict) else observation.center(),
        backend=backend,
    )
    if certificate is not None:
        print("certificate (one violated constraint): %s" % certificate.render())
    if arguments.violations:
        print("all violated constraints:")
        for violation in identify_violations(cone, observation, backend=backend):
            print("  " + violation.render())
    return 1


def cmd_render(arguments):
    mudd = _load_model(arguments.model)
    text = to_dot(mudd)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %s" % arguments.output)
    else:
        print(text, end="")
    return 0


def cmd_case_study(arguments):
    from repro.models import M_SERIES, build_model_cone, standard_dataset
    from repro.pipeline import CounterPoint

    observations = standard_dataset(scale=arguments.scale)
    counterpoint = CounterPoint(
        backend="scipy",
        workers=arguments.workers,
        cache_dir=arguments.cache_dir or None,
    )
    print("%d observations" % len(observations))
    print("%-5s %-46s %s" % ("model", "features", "#infeasible"))
    for name in sorted(M_SERIES, key=lambda n: int(n[1:])):
        sweep = counterpoint.sweep(build_model_cone(M_SERIES[name]), observations)
        star = "*" if sweep.feasible else " "
        print("%s%-4s %-46s %d" % (
            star, name, ",".join(sorted(M_SERIES[name])) or "(none)", sweep.n_infeasible,
        ))
    return 0


def _parse_weights(items):
    """Parse repeated ``--weight Prop=Value:W`` options."""
    weights = {}
    for item in items or ():
        try:
            prop, rest = item.split("=", 1)
            value, weight = rest.rsplit(":", 1)
            weights.setdefault(prop.strip(), {})[value.strip()] = float(weight)
        except ValueError:
            raise ReproError(
                "--weight expects Prop=Value:W, got %r" % (item,)
            ) from None
    return weights


def _simulate_model(arguments, argument_name):
    from repro.sim import as_mudd

    value = getattr(arguments, argument_name)
    if arguments.bundled:
        return as_mudd(value)
    return _load_model(value)


def cmd_simulate(arguments):
    from repro.pipeline import CounterPoint
    from repro.sim import batch_simulate, simulate_observation

    model = _simulate_model(arguments, "model")
    weights = _parse_weights(arguments.weight)
    if arguments.traces < 1:
        raise ReproError("--traces must be at least 1, got %d" % arguments.traces)
    if arguments.noisy and arguments.traces > 1:
        raise ReproError("--noisy applies to single-trace runs (drop --traces)")

    counters = None
    if arguments.traces > 1:
        result = batch_simulate(
            model,
            arguments.n_uops,
            n_traces=arguments.traces,
            weights=weights,
            seed=arguments.seed,
        )
        print(
            "%d traces x %d µops of %s (mean totals):"
            % (result.n_traces, arguments.n_uops, model.name)
        )
        # The mean of feasible trace totals stays in any convex cone, so
        # analyzing it keeps the diagonal-feasibility guarantee.
        totals = observation = result.mean()
    else:
        simulated = simulate_observation(
            model,
            n_uops=arguments.n_uops,
            weights=weights,
            seed=arguments.seed,
            noisy=arguments.noisy,
        )
        print("1 trace x %d µops of %s:" % (arguments.n_uops, model.name))
        if arguments.noisy:
            # Multiplexed measurement: report the scale-estimated totals
            # and analyze the confidence region, like perf data would be.
            counters = simulated.samples.counters
            means = simulated.samples.mean_observation()
            totals = {
                name: means[name] * simulated.samples.n_samples for name in means
            }
            observation = simulated.region()
        else:
            totals = observation = simulated.point()
    for name in sorted(totals):
        print("  %s=%g" % (name, totals[name]))

    if not arguments.analyze:
        return 0
    candidate = _simulate_model(arguments, "analyze")
    if counters is None:
        counters = sorted(totals)
    cone = _model_cone(candidate, arguments, counters=counters)
    report = CounterPoint(
        backend=arguments.backend, workers=arguments.workers
    ).analyze(cone, observation)
    print(report.summary())
    return 0 if report.feasible else 1


def cmd_errata_check(arguments):
    counters = [name.strip() for name in arguments.counters.split(",") if name.strip()]
    findings = check_measurement_plan(counters, smt_enabled=arguments.smt)
    if not findings:
        print("OK: measurement plan is errata-clean.")
        return 0
    for name, erratum in findings:
        print("WARNING: %s is affected by %s: %s" % (
            name, erratum.erratum_id, erratum.description,
        ))
    return 1


def _add_runtime_flags(subparser, workers_help):
    """The shared performance knobs (``--workers``, ``--cache-dir``)."""
    subparser.add_argument(
        "--workers", type=int, default=1, metavar="N", help=workers_help
    )
    subparser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk model-cone cache: deduced cones are "
             "stored here and reused across runs and processes "
             "(computed once per model, ever)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CounterPoint: test µDD microarchitectural models "
                    "against hardware event counter (HEC) data — deduce "
                    "the linear constraints a model implies, refute models "
                    "whose constraints the data violates, and simulate "
                    "models to generate synthetic observations.",
        epilog="run 'python -m repro <command> --help' for per-command "
               "examples; see README.md for the 60-second tour",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    constraints = commands.add_parser(
        "constraints",
        help="deduce model constraints",
        description="Deduce and print the linear HEC constraints a µDD "
                    "model implies (the paper's Section 6 pipeline: "
                    "equalities from Gaussian elimination, facet "
                    "inequalities from the double description method).",
        epilog="example:\n"
               "  python -m repro constraints model.dsl\n"
               "  python -m repro constraints model.dsl --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    constraints.add_argument("model", help="DSL model file")
    constraints.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk model-cone cache (reused across runs)")
    constraints.set_defaults(handler=cmd_constraints)

    analyze = commands.add_parser(
        "analyze",
        help="test an observation against a model",
        description="Test one observation — exact counter totals or a "
                    "perf interval CSV summarised as a confidence region — "
                    "against a µDD model. Exit status: 0 feasible, "
                    "1 infeasible (the observation refutes the model), "
                    "2 usage error.",
        epilog="examples:\n"
               "  python -m repro analyze model.dsl "
               "--observation load.causes_walk=5,load.pde\\$_miss=12\n"
               "  python -m repro analyze model.dsl --perf-csv run.csv "
               "--confidence 0.99 --violations\n"
               "  python -m repro analyze model.dsl --perf-csv run.csv "
               "--cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    analyze.add_argument("model", help="DSL model file")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--observation", help="comma-separated name=value totals")
    source.add_argument("--perf-csv", help="perf stat -I -x, interval CSV file")
    analyze.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                         help="LP backend: exact rational simplex (certified "
                              "verdicts) or scipy/HiGHS (fast)")
    analyze.add_argument("--confidence", type=float, default=0.99,
                         help="confidence level for --perf-csv regions")
    analyze.add_argument("--independent", action="store_true",
                         help="use the independent-counter baseline region")
    analyze.add_argument("--violations", action="store_true",
                         help="run full constraint deduction and list all violations")
    _add_runtime_flags(
        analyze,
        "process-pool size for sharded sweeps (a single-observation "
        "analysis itself runs in-process)")
    analyze.set_defaults(handler=cmd_analyze)

    render = commands.add_parser(
        "render",
        help="export a µDD as Graphviz dot",
        description="Compile a DSL model and export its µDD as Graphviz "
                    "dot (render with: dot -Tsvg out.dot -o out.svg).",
        epilog="example:\n  python -m repro render model.dsl -o model.dot",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    render.add_argument("model", help="DSL model file")
    render.add_argument("-o", "--output", help="output .dot path (stdout if omitted)")
    render.set_defaults(handler=cmd_render)

    case_study = commands.add_parser(
        "case-study",
        help="run the Table 3 sweep",
        description="Run the paper's Table 3 case study: sweep the "
                    "m-series Haswell MMU models over the simulated "
                    "standard dataset and report which observations each "
                    "model fails to explain (* marks feasible models).",
        epilog="examples:\n"
               "  python -m repro case-study\n"
               "  python -m repro case-study --workers 4 --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    case_study.add_argument("--scale", type=float, default=1.0,
                            help="workload scale factor for the dataset")
    _add_runtime_flags(
        case_study,
        "shard each model's dataset sweep across N worker processes")
    case_study.set_defaults(handler=cmd_case_study)

    simulate = commands.add_parser(
        "simulate",
        help="execute a µDD and emit synthetic counter totals",
        description="Execute a µDD with the repro.sim engine and print "
                    "synthetic counter totals; optionally close the loop "
                    "by testing the simulated observation against a second "
                    "model (exit 1 when the candidate is refuted).",
        epilog="examples:\n"
               "  python -m repro simulate model.dsl --n-uops 50000\n"
               "  python -m repro simulate --bundled merging_load_side \\\n"
               "      --weight Merged=Yes:3 --analyze no_merging_load_side\n"
               "  python -m repro simulate --bundled pde_initial --noisy "
               "--analyze pde_refined --cache-dir .repro-cache",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    simulate.add_argument("model", help="DSL model file (or bundled name with --bundled)")
    simulate.add_argument("--bundled", action="store_true",
                          help="treat model arguments as bundled-model names")
    simulate.add_argument("--n-uops", type=int, default=20000,
                          help="µops per simulated trace")
    simulate.add_argument("--traces", type=int, default=1,
                          help="batched trace count (prints mean totals)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--weight", action="append", metavar="PROP=VALUE:W",
                          help="bias a branch choice (repeatable)")
    simulate.add_argument("--noisy", action="store_true",
                          help="replay the run through counter multiplexing: print "
                               "scale-estimated totals and analyze the confidence "
                               "region (single trace only)")
    simulate.add_argument("--analyze", metavar="MODEL",
                          help="close the loop: test the simulated observation "
                               "against another model (exit 1 when refuted)")
    simulate.add_argument("--backend", default="exact", choices=("exact", "scipy"),
                          help="LP backend for --analyze verdicts")
    _add_runtime_flags(
        simulate,
        "process-pool size for sharded sweeps (single-run simulation "
        "itself is vectorised in-process)")
    simulate.set_defaults(handler=cmd_simulate)

    errata = commands.add_parser(
        "errata-check",
        help="check a measurement plan",
        description="Pre-flight a measurement plan against the known "
                    "counter errata (e.g. HSD29/HSM30): warn when a "
                    "planned counter is unreliable in this configuration.",
        epilog="example:\n"
               "  python -m repro errata-check "
               "--counters load.causes_walk,load.stlb_hit --smt",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    errata.add_argument("--counters", required=True,
                        help="comma-separated counter names (paper-style)")
    errata.add_argument("--smt", action="store_true", help="SMT enabled")
    errata.set_defaults(handler=cmd_errata_check)
    return parser


def main(argv=None):
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
