"""CounterPoint: testing microarchitectural models against HEC data.

A reproduction of *CounterPoint: Using Hardware Event Counters to Refute
and Refine Microarchitectural Assumptions* (ASPLOS 2026). See DESIGN.md
for the system inventory and the paper-to-module map.

Quick start::

    from repro import CounterPoint

    MODEL = '''
    incr load.causes_walk;
    do LookupPde$;
    switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
    done;
    '''
    report = CounterPoint().analyze(
        MODEL, {"load.causes_walk": 5, "load.pde$_miss": 12}
    )
    print(report.summary())   # INFEASIBLE: pde$_miss <= causes_walk violated
"""

from repro.pipeline import AnalysisReport, CounterPoint, ModelSweep
from repro.cone import ModelCone
from repro.dsl import compile_dsl
from repro.mudd import MuDD
from repro.stats import ConfidenceRegion, PointRegion

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "ConfidenceRegion",
    "CounterPoint",
    "ModelCone",
    "ModelSweep",
    "MuDD",
    "PointRegion",
    "compile_dsl",
    "__version__",
]
