"""CounterPoint: testing microarchitectural models against HEC data.

A reproduction of *CounterPoint: Using Hardware Event Counters to Refute
and Refine Microarchitectural Assumptions* (ASPLOS 2026). See DESIGN.md
for the system inventory and the paper-to-module map.

Quick start::

    from repro import CounterPoint

    MODEL = '''
    incr load.causes_walk;
    do LookupPde$;
    switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
    done;
    '''
    report = CounterPoint().analyze(
        MODEL, {"load.causes_walk": 5, "load.pde$_miss": 12}
    )
    print(report.summary())   # INFEASIBLE: pde$_miss <= causes_walk violated

The pipeline also runs in reverse — :mod:`repro.sim` *executes* µDDs to
generate synthetic counter observations, closing the loop::

    counterpoint = CounterPoint()
    observation = counterpoint.simulate(
        "merging_load_side",                      # a bundled model
        weights={"Merged": {"Yes": 3.0, "No": 1.0}},
    )
    report = counterpoint.analyze(
        CounterPoint().model_cone(...),           # any candidate model
        observation.point(),
    )

or from the shell: ``python -m repro simulate --bundled
merging_load_side --weight Merged=Yes:3 --analyze no_merging_load_side``
(exit status 1 = the candidate was refuted by the simulated data).
"""

from repro.pipeline import CounterPoint
from repro.cone import DiskConeCache, ModelCone
from repro.dsl import compile_dsl
from repro.mudd import MuDD
from repro.obs import MetricsRegistry, Tracer, activate, get_tracer, traced
from repro.parallel import ParallelRunner
from repro.plan import Plan, PlanEngine, PlanResult
from repro.results import (
    AnalysisReport,
    AnalysisSession,
    ArtifactStore,
    ClaimTable,
    CompareResult,
    ModelSweep,
    RefutationMatrix,
    result_from_dict,
    result_from_json,
)
from repro.serve import (
    PlanService,
    QueueScheduler,
    ServeClient,
    ServeDaemon,
)
from repro.sim import (
    MMUOracle,
    MuDDExecutor,
    RandomOracle,
    batch_simulate,
    closed_loop,
    simulate_observation,
)
from repro.stats import ConfidenceRegion, PointRegion

__version__ = "1.5.0"

__all__ = [
    "AnalysisReport",
    "AnalysisSession",
    "ArtifactStore",
    "ClaimTable",
    "CompareResult",
    "ConfidenceRegion",
    "CounterPoint",
    "DiskConeCache",
    "MMUOracle",
    "MetricsRegistry",
    "ModelCone",
    "ModelSweep",
    "MuDD",
    "MuDDExecutor",
    "ParallelRunner",
    "Plan",
    "PlanEngine",
    "PlanResult",
    "PlanService",
    "PointRegion",
    "QueueScheduler",
    "RandomOracle",
    "RefutationMatrix",
    "ServeClient",
    "ServeDaemon",
    "Tracer",
    "activate",
    "batch_simulate",
    "closed_loop",
    "compile_dsl",
    "get_tracer",
    "result_from_dict",
    "result_from_json",
    "simulate_observation",
    "traced",
    "__version__",
]
