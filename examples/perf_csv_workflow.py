#!/usr/bin/env python
"""The adoption workflow: CounterPoint over perf-format measurements.

On real hardware you would run::

    perf stat -I 1000 -x, -e dtlb_load_misses.miss_causes_a_walk,... ./app

and feed the interval CSV to CounterPoint. This example produces that
CSV from the simulated MMU instead (byte-compatible format), then runs
the complete analysis from the file alone:

1. parse the perf CSV into a sample matrix,
2. pre-flight errata check for the measurement plan,
3. summarise as a 99% correlated counter confidence region,
4. test against a user model written in the DSL,
5. on infeasibility, print a Farkas certificate (cheap) and the full
   violated-constraint list (deduced).

Run:  python examples/perf_csv_workflow.py
"""

import os
import tempfile

from repro.cone import ModelCone, identify_violations, separating_constraint
from repro.cone import test_region_feasibility
from repro.counters import MultiplexingSimulator, collect_interval_samples
from repro.counters.errata import check_measurement_plan
from repro.counters.perf_io import read_perf_csv, write_perf_csv
from repro.dsl import compile_dsl
from repro.mmu import MMUConfig, MMUSimulator
from repro.workloads import LinearAccessWorkload

# A user's conservative mental model of the load side: every retired
# STLB miss comes from its own completed walk (no merging).
USER_MODEL = """
switch StlbStatus {
  Hit => done;
  Miss => pass;
};
incr load.causes_walk;
do WalkThePageTable;
incr load.walk_done;
switch Retires {
  Yes => incr load.ret_stlb_miss;
  No => pass;
};
done;
"""

COUNTERS = ["load.causes_walk", "load.walk_done", "load.ret_stlb_miss"]


def record_measurement(path):
    """Simulate `perf stat -I` on a merging-heavy workload."""
    simulator = MMUSimulator(MMUConfig.full_haswell())
    workload = LinearAccessWorkload(64 * 1024 * 1024, stride=64)
    intervals = list(simulator.run_intervals(workload.ops(30000), 500))
    names = sorted(intervals[0])
    multiplexer = MultiplexingSimulator(n_physical=4, slices_per_interval=48, seed=1)
    matrix = collect_interval_samples(names, intervals, multiplexer=multiplexer)
    write_perf_csv(matrix.subset(COUNTERS), path)


def main():
    print("=== CounterPoint on perf interval CSV ===\n")
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "perf.csv")
        record_measurement(csv_path)
        print("Recorded %s (perf stat -I -x, format)\n" % csv_path)

        print("Pre-flight errata check (SMT off, the paper's setting):")
        findings = check_measurement_plan(COUNTERS, smt_enabled=False)
        print("  " + ("clean" if not findings else str(findings)))
        findings_smt = check_measurement_plan(COUNTERS, smt_enabled=True)
        print("  (with SMT it would warn: %s)\n"
              % ", ".join(sorted({e.erratum_id for _, e in findings_smt})))

        samples = read_perf_csv(csv_path)
        print("Parsed %d intervals x %d counters" % (samples.n_samples, len(samples.counters)))

        cone = ModelCone.from_mudd(compile_dsl(USER_MODEL, name="user-model"),
                                   counters=COUNTERS)
        region = samples.subset(COUNTERS).confidence_region(confidence=0.99)
        verdict = test_region_feasibility(cone, region, backend="scipy")
        print("\nModel feasibility at 99%% confidence: %s"
              % ("feasible" if verdict.feasible else "INFEASIBLE"))

        if not verdict.feasible:
            certificate = separating_constraint(cone, region.center(), backend="scipy")
            print("\nFarkas certificate (no deduction needed):")
            print("   " + certificate.render())
            print("\nFull violated-constraint report:")
            for violation in identify_violations(cone, region, backend="scipy"):
                print("   " + violation.render())
            print(
                "\nThe measurement shows more retired STLB misses than walks:\n"
                "the hardware must be merging page-table walks (the paper's\n"
                "MSHR discovery). Refine the model with a Merged branch."
            )


if __name__ == "__main__":
    main()
