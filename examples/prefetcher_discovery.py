#!/usr/bin/env python
"""Reverse-engineering the TLB prefetcher's trigger conditions (§C.2).

Regenerates the Table 5 experiment: eighteen variants of the feasible
model m4 attach translation prefetches to different candidate trigger
conditions (speculative-or-not x load/store x pre-TLB / DTLB-miss /
STLB-miss). Feasibility against the linear-access microbenchmarks
pins down where the trigger lives: before any TLB lookup, in the
load/store queue.

Run:  python examples/prefetcher_discovery.py
"""

from repro.models import M_SERIES, T_SERIES, build_model_cone, standard_dataset
from repro.pipeline import CounterPoint


def describe(spec):
    parts = []
    parts.append("spec" if spec.speculative else "retired-only")
    kinds = []
    if spec.load:
        kinds.append("load")
    if spec.store:
        kinds.append("store")
    parts.append("+".join(kinds))
    if spec.dtlb_miss:
        parts.append("on DTLB miss")
    elif spec.stlb_miss:
        parts.append("on STLB miss")
    else:
        parts.append("pre-TLB (LSQ)")
    return ", ".join(parts)


def main():
    print("Collecting observations ...")
    observations = standard_dataset()
    # The context manager reaps any worker pool the pipeline spawns.
    with CounterPoint(backend="scipy") as counterpoint:
        print("\nTable 5 — prefetch trigger condition models:\n")
        print("%-5s %-48s %s" % ("model", "trigger condition", "#infeasible"))
        results = {}
        for name in sorted(T_SERIES, key=lambda n: int(n[1:])):
            spec = T_SERIES[name]
            cone = build_model_cone(M_SERIES["m4"], trigger=spec)
            sweep = counterpoint.sweep(cone, observations)
            results[name] = sweep
            marker = " " if sweep.feasible else "x"
            print("%s%-4s %-48s %d" % (marker, name, describe(spec), sweep.n_infeasible))

    print("\nInference (the paper's §C.2 reasoning):")
    spec_ok = all(results["t%d" % i].feasible for i in range(9))
    print("  * all speculative-trigger models feasible:", spec_ok)
    miss_stream_refuted = all(
        not results[name].feasible for name in ("t10", "t11", "t13", "t14")
    )
    print("  * retired-only miss-stream triggers refuted:", miss_stream_refuted)
    pre_tlb_ok = results["t9"].feasible
    print("  * retired-only pre-TLB load trigger feasible:", pre_tlb_ok)
    if spec_ok and miss_stream_refuted and pre_tlb_ok:
        print(
            "\n  => The prefetcher cannot live on the TLB miss streams; it\n"
            "     must scan virtual page numbers in the load/store queue\n"
            "     *before* any TLB lookup — the paper's discovery."
        )
    refuters = sorted(
        {name for sweep in results.values() for name in sweep.infeasible_names}
    )
    print("\nObservations doing the refuting:", ", ".join(refuters))
    print(
        "(All are linear-access microbenchmark instances — the paper's\n"
        " ablation: remove them and the prefetcher is invisible.)"
    )


if __name__ == "__main__":
    main()
