#!/usr/bin/env python
"""Guided refinement with suggestions and hardware cross-checks.

The closing loop of the paper's methodology, end to end:

1. the conservative model m0 fails on a measurement;
2. CounterPoint turns each violated constraint into a µpath requirement
   ("need a path incrementing X without Y") and ranks candidate
   microarchitectural features against a knowledge base;
3. applying the suggested features yields a feasible model;
4. as a consistency cross-check, counterfactual *hardware* with a
   feature removed produces data that the correspondingly weakened
   model accepts — model-space and hardware-space ablations agree.

Run:  python examples/guided_refinement.py
"""

from repro.cone import identify_violations
from repro.cone import test_point_feasibility as point_feasibility
from repro.explore import describe_required_path, suggest_features
from repro.mmu import MMUSimulator, config_without
from repro.models import M_SERIES, build_model_cone
from repro.models.features import MERGING, TLB_PF
from repro.workloads import LinearAccessWorkload


def measure(config=None):
    simulator = MMUSimulator(config)
    simulator.run(LinearAccessWorkload(32 << 20, stride=64).ops(15000))
    return simulator.snapshot()


def main():
    print("=== Guided refinement on the conservative model ===\n")
    observation = measure()
    m0 = build_model_cone(M_SERIES["m0"])
    violations = identify_violations(m0, observation, backend="scipy")
    print("m0 violations: %d" % len(violations))
    for violation in violations[:3]:
        requirement = describe_required_path(violation.constraint) \
            if not violation.constraint.is_equality else None
        print("  " + violation.constraint.render())
        if requirement:
            print("    -> " + requirement.render())

    print("\nFeature suggestions (knowledge-base match):")
    ranked = suggest_features(violations)
    for feature, score, _ in ranked:
        print("  %-12s score %.2f" % (feature, score))

    top = frozenset(feature for feature, _, _ in ranked[:3])
    refined = build_model_cone(top)
    remaining = identify_violations(refined, observation, backend="scipy")
    print("\nApplying top suggestions {%s}: %d violations remain"
          % (",".join(sorted(top)), len(remaining)))

    print("\nCross-check: counterfactual hardware vs weakened models")
    for feature, model in ((MERGING, "m7"), (TLB_PF, "m5")):
        counterfactual = measure(config_without(feature))
        cone = build_model_cone(M_SERIES[model])
        verdict = point_feasibility(cone, counterfactual, backend="scipy")
        print("  hardware without %-8s vs model %s: %s"
              % (feature, model, "feasible" if verdict.feasible else "INFEASIBLE"))
    print("\nModel-space and hardware-space ablations agree — the feasibility\n"
          "verdicts track the actual mechanisms, not dataset accidents.")


if __name__ == "__main__":
    main()
