#!/usr/bin/env python
"""The Haswell MMU case study: guided model exploration (Section 7).

Regenerates the Table 3 experiment end-to-end:

1. run the workload matrix on the simulated Haswell MMU to collect
   observations,
2. evaluate the m-series feature-set µDDs against every observation,
3. run the discovery/elimination search from the conservative model m0,
4. classify features by what all feasible models agree on.

Run:  python examples/haswell_case_study.py [--scale 0.5]
"""

import argparse

from repro.explore import GuidedSearch, classify_features, essential_features
from repro.models import M_SERIES, build_model_cone, standard_dataset
from repro.models.features import FEATURES
from repro.pipeline import CounterPoint


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    arguments = parser.parse_args()

    print("Collecting observations from the simulated Haswell MMU ...")
    observations = standard_dataset(scale=arguments.scale)
    print("  %d observations (4K/2M/1G pages, %d workload families)\n" % (
        len(observations),
        len({o.meta.get("name") for o in observations}),
    ))

    # The context manager reaps any worker pool the pipeline spawns.
    with CounterPoint(backend="scipy") as counterpoint:
        print("Table 3 — initial model search:")
        print("%-5s %-45s %s" % ("model", "features", "#infeasible"))
        for name in sorted(M_SERIES, key=lambda n: int(n[1:])):
            features = M_SERIES[name]
            cone = build_model_cone(features)
            sweep = counterpoint.sweep(cone, observations)
            star = "*" if sweep.feasible else " "
            print("%s%-4s %-45s %d" % (star, name, ",".join(sorted(features)) or "(none)", sweep.n_infeasible))
    print()

    print("Guided search (discovery from the conservative model m0):")
    search = GuidedSearch(
        lambda features: build_model_cone(features),
        observations,
        candidate_features=FEATURES,
        backend="scipy",
    )
    result = search.run()
    for step, features in enumerate(result.discovery_trail):
        evaluation = search.evaluate(features)
        print(
            "  step %d: {%s} -> %d infeasible"
            % (step, ",".join(sorted(features)) or "", evaluation.n_infeasible)
        )
    print("  candidate:", ",".join(sorted(result.candidate)))
    print("  models explored:", len(result.evaluations))
    print("  minimal feasible models:")
    for features in result.minimal_feasible:
        print("    {%s}" % ",".join(sorted(features)))
    print()

    # Classify over everything evaluated: the search's models plus the
    # Table 3 sweep (which includes m4, the PML4E-cache-bearing twin of
    # the search's candidate m8).
    for name, features in M_SERIES.items():
        search.evaluate(features)
    evaluations = list(search._cache.values())

    print("Feature classification (Figure 7):")
    classification = classify_features(evaluations, FEATURES)
    for feature in FEATURES:
        print("  %-12s %s" % (feature, classification[feature]))
    print("\nEssential features (in every feasible model):",
          ",".join(sorted(essential_features(evaluations))))
    print(
        "\nReading: the prefetcher, early PSC probe, walk merging and walk\n"
        "bypassing are *required* to explain the measurements; the root-level\n"
        "PML4E cache is consistent with them but not required (m4 vs m8) —\n"
        "the paper's Section 7.1 conclusions."
    )


if __name__ == "__main__":
    main()
