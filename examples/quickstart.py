#!/usr/bin/env python
"""Quickstart: refute and refine a PDE-cache model (paper Figures 2 & 6).

An architect believes the PDE cache is probed exactly once per page
table walk, which implies ``load.pde$_miss <= load.causes_walk``. A
measurement contradicts that. CounterPoint derives the violated model
constraint automatically, and the refined model — early PDE probing
plus abortable translation requests — reconciles the data.

Run:  python examples/quickstart.py
"""

from repro import CounterPoint

INITIAL_MODEL = """
# Figure 6a: the walker starts, then the PDE cache is probed.
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
  Hit  => pass;
  Miss => incr load.pde$_miss
};
done;
"""

REFINED_MODEL = """
# Figure 6c: the PDE cache is probed *before* the walk starts, and the
# translation request may abort in between.
do LookupPde$;
switch Pde$Status {
  Miss => incr load.pde$_miss;
  Hit  => pass;
};
switch Abort {
  Yes => done;
  No  => pass;
};
incr load.causes_walk;
do StartWalk;
done;
"""

# A measurement (aggregated counter totals) where PDE-cache misses
# outnumber walks — the surprise the paper opens with.
OBSERVATION = {"load.causes_walk": 412, "load.pde$_miss": 805}


def main():
    # The context manager reaps the pipeline's worker pool (if any was
    # spawned) deterministically on every exit path.
    with CounterPoint(backend="exact") as counterpoint:
        print("=== CounterPoint quickstart: the PDE cache surprise ===\n")
        print("Observation:", OBSERVATION, "\n")

        print("-- Initial model (walk starts before PDE probe) --")
        report = counterpoint.analyze(INITIAL_MODEL, OBSERVATION)
        print(report.summary())
        assert not report.feasible, "the observation should refute the initial model"
        print()

        print("Derived model constraints of the initial model:")
        for constraint in counterpoint.model_cone(INITIAL_MODEL).constraints():
            print("   ", constraint.render())
        print()

        print("-- Refined model (early PDE probe + abortable requests) --")
        report = counterpoint.analyze(REFINED_MODEL, OBSERVATION)
        print(report.summary())
        assert report.feasible, "the refinement should reconcile the data"
        print()

    print(
        "Conclusion: the hardware must probe the PDE cache before the\n"
        "walk begins, and some translation requests never start a walk —\n"
        "exactly the paper's Section 5 refinement."
    )


if __name__ == "__main__":
    main()
