#!/usr/bin/env python
"""Closed-loop validation: simulate one µDD, refute another.

CounterPoint's analysis direction turns hardware measurements into
refutations. The ``repro.sim`` engine runs the other direction: it
*executes* a µDD and emits the counter observations the analysis
consumes. Chaining the two closes the loop —

    simulate(model A)  →  observations  →  analyze(model B)

— which is how unlimited synthetic scenarios get ground truth: the
generating model is feasible *by construction* (every executed µop
contributes one genuine µpath signature, so the totals lie inside A's
cone), while candidates whose mechanisms disagree are refuted.

This demo replays the paper's Constraint 1 story synthetically: walk
*merging* lets many retired STLB-missing loads share one page table
walk, which a no-merging model cannot explain.

Run:  python examples/closed_loop_refutation.py
"""

from repro import CounterPoint
from repro.models.bundled import bundled_model_source, load_bundled_model
from repro.sim import closed_loop, simulate_observation

# Three µops in four merge into an outstanding walk — a page-local
# access pattern (the regime the paper's linear microbenchmarks hit).
WEIGHTS = {"Merged": {"Yes": 3.0, "No": 1.0}}


def main():
    print("=== Closed-loop refutation: simulate merging, refute no-merging ===\n")

    print("-- The generating model (bundled 'merging_load_side') --")
    print(bundled_model_source("merging_load_side"))

    observation = simulate_observation(
        "merging_load_side", n_uops=20000, weights=WEIGHTS, seed=0
    )
    totals = observation.point()
    print("Simulated totals over 20k µops:")
    for name in sorted(totals):
        print("   %s = %d" % (name, totals[name]))
    ratio = totals["load.ret_stlb_miss"] / max(1, totals["load.walk_done"])
    print("\n%.2f retired STLB-missers per completed walk -- merging at work.\n"
          % ratio)

    print("-- Testing both mechanism hypotheses against the synthetic data --")
    reports = closed_loop(
        "merging_load_side",
        ["merging_load_side", "no_merging_load_side"],
        n_uops=20000,
        weights=WEIGHTS,
        seed=0,
    )
    for name, report in sorted(reports.items()):
        print(report.summary())
    assert reports["merging_load_side"].feasible
    assert not reports["no_merging_load_side"].feasible

    print("\n-- The same loop through the pipeline facade --")
    # workers=2 shards the row simulations and pending verdict cells
    # across a process pool (identical results to serial); the context
    # manager shuts the pool down on every exit path — never construct
    # a pooled pipeline without one.
    with CounterPoint(backend="exact", workers=2) as counterpoint:
        matrix = counterpoint.cross_refute(
            ["merging_load_side", "no_merging_load_side"],
            n_observations=3,
            n_uops=10000,
            weights=WEIGHTS,
        )
    print("%-22s" % "simulated \\ candidate", end="")
    names = sorted(matrix)
    for name in names:
        print(" %-22s" % name, end="")
    print()
    for observed in names:
        print("%-22s" % observed, end="")
        for candidate in names:
            sweep = matrix[observed][candidate]
            verdict = "feasible" if sweep.feasible else (
                "refuted %d/%d" % (sweep.n_infeasible, sweep.n_observations)
            )
            print(" %-22s" % verdict, end="")
        print()

    print(
        "\nConclusion: the diagonal is feasible by construction (counter\n"
        "conservation); the off-diagonal shows synthetic merging data\n"
        "refuting the no-merging hypothesis -- the closed loop works."
    )


if __name__ == "__main__":
    main()
