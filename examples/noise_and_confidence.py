#!/usr/bin/env python
"""Multiplexing noise and counter confidence regions (Sections 2, 4, 7.1).

Demonstrates the paper's noise-handling story on live data:

1. run workloads on the simulated MMU, sampling counters at fixed
   wall-clock intervals (µop counts per interval vary with the
   program's phases, so counters co-vary) through a perf-style
   multiplexing scheduler,
2. summarise each noisy measurement as a correlated and as an
   independent-counter confidence region,
3. test the conservative model m0's constraints against both: the
   correlated regions, being tighter in the directions that matter,
   expose more definite constraint violations (Figure 3d / the
   Section 7.1 ">24% more violations" experiment).

Run:  python examples/noise_and_confidence.py
"""

from repro.cone import identify_violations
from repro.models import M_SERIES, build_model_cone, noisy_dataset
from repro.stats.covariance import highly_correlated_fraction


def definite_inequality_violations(cone, region):
    return [
        violation
        for violation in identify_violations(cone, region, backend="scipy")
        if violation.definite and not violation.constraint.is_equality
    ]


def main():
    print("Collecting multiplexed, phase-jittered measurements ...")
    observations = noisy_dataset()
    print("  %d observations, %d interval samples each (typical)\n" % (
        len(observations),
        observations[0].samples.n_samples,
    ))

    print("Deducing the conservative model's constraints (m0, m7) ...")
    models = {name: build_model_cone(M_SERIES[name]) for name in ("m0", "m7")}
    for cone in models.values():
        cone.constraints()

    total_correlated = 0
    total_independent = 0
    print("\n%-22s %-6s %s" % ("observation", "corr", "indep  (definite violations)"))
    for observation in observations:
        region_correlated = observation.region(correlated=True)
        region_independent = observation.region(correlated=False)
        n_correlated = n_independent = 0
        for cone in models.values():
            n_correlated += len(definite_inequality_violations(cone, region_correlated))
            n_independent += len(definite_inequality_violations(cone, region_independent))
        total_correlated += n_correlated
        total_independent += n_independent
        print("%-22s %-6d %d" % (observation.name, n_correlated, n_independent))

    gain = 100.0 * (total_correlated - total_independent) / max(total_independent, 1)
    print("\nTotal definite violations: correlated=%d independent=%d (%+.0f%%)" % (
        total_correlated,
        total_independent,
        gain,
    ))

    hot = 0
    pairs = 0
    for observation in observations:
        samples = observation.samples.samples
        active = [c for c in range(samples.shape[1]) if samples[:, c].std() > 0]
        if len(active) < 2:
            continue
        fraction = highly_correlated_fraction(samples[:, active])
        n = len(active)
        pairs += n * (n - 1) // 2
        hot += round(fraction * (n * (n - 1) // 2))
    print("\nWhy it works: HECs are highly correlated in the time series")
    print("  (%.0f%% of active counter pairs have |r| > 0.9 across the runs," % (100 * hot / pairs))
    print("   driven by program phases — the paper's Section 7.1 observation).")


if __name__ == "__main__":
    main()
