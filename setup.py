"""Legacy setup shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CounterPoint: testing microarchitectural models against hardware "
        "event counter data (ASPLOS 2026 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.models": ["dsl/*.dsl"]},
    include_package_data=True,
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
