"""Tests for refinement suggestions and hardware-side ablations."""

import pytest

from repro.cone import identify_violations
from repro.cone import test_point_feasibility as point_feasibility
from repro.errors import ConfigurationError
from repro.explore.refinement import (
    HASWELL_ARCHETYPES,
    describe_required_path,
    suggest_features,
)
from repro.mmu.ablation import (
    config_without,
    counter_delta,
    feature_ablations,
    run_ablations,
)
from repro.models import M_SERIES, build_model_cone
from repro.models.features import (
    EARLY_PSC,
    MERGING,
    PML4E_CACHE,
    TLB_PF,
    WALK_BYPASS,
)
from repro.workloads import LinearAccessWorkload


@pytest.fixture(scope="module")
def m0_violations():
    """Violations of the conservative model on a merging-heavy run."""
    from repro.mmu import MMUSimulator

    simulator = MMUSimulator()
    simulator.run(LinearAccessWorkload(32 << 20, stride=64).ops(12000))
    cone = build_model_cone(M_SERIES["m0"])
    return identify_violations(cone, simulator.snapshot(), backend="scipy")


class TestRequiredPath:
    def test_direction_of_requirement(self, m0_violations):
        inequality = next(
            v.constraint for v in m0_violations if not v.constraint.is_equality
        )
        requirement = describe_required_path(inequality)
        # Must-increment counters are the constraint's negative side.
        for name in requirement.must_increment:
            coefficient = inequality.normal[inequality.counters.index(name)]
            assert coefficient < 0
        assert "need a µpath incrementing" in requirement.render()


class TestSuggestFeatures:
    def test_merging_run_suggests_merging_or_prefetch(self, m0_violations):
        ranked = suggest_features(m0_violations)
        assert ranked, "violations should yield suggestions"
        suggested = [feature for feature, _, _ in ranked]
        # The run's dominant violations (ret_stlb_miss excess, walk_ref
        # excess) are resolved by merging and prefetching archetypes.
        assert MERGING in suggested
        assert TLB_PF in suggested

    def test_suggestions_carry_explanations(self, m0_violations):
        ranked = suggest_features(m0_violations)
        feature, score, explanations = ranked[0]
        assert score > 0
        assert explanations and all(len(pair) == 2 for pair in explanations)

    def test_equalities_ignored(self):
        assert suggest_features([]) == []

    def test_archetype_kb_covers_all_features(self):
        features = {archetype.feature for archetype in HASWELL_ARCHETYPES}
        assert features == {TLB_PF, EARLY_PSC, MERGING, PML4E_CACHE, WALK_BYPASS}

    def test_suggested_features_actually_help(self, m0_violations):
        """The top suggestions, applied, reduce infeasibility — closing
        the guided-refinement loop."""
        from repro.mmu import MMUSimulator

        simulator = MMUSimulator()
        simulator.run(LinearAccessWorkload(32 << 20, stride=64).ops(12000))
        observation = simulator.snapshot()

        ranked = suggest_features(m0_violations)
        top = {feature for feature, _, _ in ranked[:3]}
        refined = build_model_cone(frozenset(top))
        base_ok = point_feasibility(
            build_model_cone(M_SERIES["m0"]), observation, backend="scipy"
        ).feasible
        refined_violations = identify_violations(refined, observation, backend="scipy")
        assert not base_ok
        assert len(refined_violations) < len(m0_violations)


class TestHardwareAblation:
    def test_config_without_each_feature(self):
        for feature in (TLB_PF, EARLY_PSC, MERGING, PML4E_CACHE, WALK_BYPASS):
            config = config_without(feature)
            assert not config.feature_set()[feature]
            others = {k: v for k, v in config.feature_set().items() if k != feature}
            assert all(others.values())

    def test_unknown_feature_rejected(self):
        with pytest.raises(ConfigurationError):
            config_without("WarpDrive")

    def test_feature_ablations_labels(self):
        configurations = feature_ablations()
        assert "full" in configurations
        assert "no-Merging" in configurations
        assert len(configurations) == 6

    def test_run_ablations_deltas(self):
        workload = LinearAccessWorkload(16 << 20, stride=64)
        results = run_ablations(workload, 8000)
        # No merging: more walks (each µop walks for itself).
        delta = counter_delta(results["full"], results["no-Merging"])
        assert delta.get("load.causes_walk", 0) > 0
        # No prefetcher: fewer walker references.
        delta_pf = counter_delta(results["full"], results["no-TlbPf"])
        refs = sum(
            delta_pf.get("walk_ref.%s" % level, 0) for level in ("l1", "l2", "l3", "mem")
        )
        assert refs < 0

    def test_hardware_model_ablation_alignment(self):
        """The methodology's consistency check: data from hardware
        lacking feature F is feasible for the model lacking F."""
        workload = LinearAccessWorkload(16 << 20, stride=64)
        pairs = [
            (TLB_PF, "m5"),      # m5 = m4 - TlbPf
            (EARLY_PSC, "m6"),
            (MERGING, "m7"),
        ]
        for feature, model_name in pairs:
            simulator_config = config_without(feature)
            from repro.mmu import MMUSimulator

            simulator = MMUSimulator(simulator_config)
            simulator.run(workload.ops(8000))
            cone = build_model_cone(M_SERIES[model_name])
            result = point_feasibility(cone, simulator.snapshot(), backend="scipy")
            assert result.feasible, (
                "hardware without %s must satisfy model %s" % (feature, model_name)
            )
