"""Tests for the bundled DSL model library."""

import pytest

from repro.cone import ModelCone
from repro.cone import test_point_feasibility as point_feasibility
from repro.errors import ConfigurationError
from repro.models.bundled import (
    bundled_model_names,
    bundled_model_source,
    load_bundled_model,
)


class TestBundledLibrary:
    def test_names_discovered(self):
        names = bundled_model_names()
        assert "pde_initial" in names
        assert "pde_refined" in names
        assert "no_merging_load_side" in names
        assert "merging_load_side" in names
        assert "walk_refs_4k" in names

    def test_all_models_compile_and_validate(self):
        for name in bundled_model_names():
            mudd = load_bundled_model(name)
            assert mudd.validate()
            assert mudd.name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            bundled_model_source("ghost_model")

    def test_sources_carry_documentation(self):
        for name in bundled_model_names():
            assert bundled_model_source(name).startswith("#")


class TestBundledSemantics:
    def test_pde_pair_tells_the_figure6_story(self):
        observation = {"load.causes_walk": 5, "load.pde$_miss": 12}
        initial = ModelCone.from_mudd(load_bundled_model("pde_initial"))
        refined = ModelCone.from_mudd(
            load_bundled_model("pde_refined"),
            counters=["load.causes_walk", "load.pde$_miss"],
        )
        assert not point_feasibility(initial, observation).feasible
        assert point_feasibility(refined, observation).feasible

    def test_merging_pair_tells_the_constraint1_story(self):
        counters = ["load.causes_walk", "load.walk_done", "load.ret_stlb_miss"]
        observation = {
            "load.causes_walk": 10,
            "load.walk_done": 10,
            "load.ret_stlb_miss": 45,
        }
        without = ModelCone.from_mudd(
            load_bundled_model("no_merging_load_side"), counters=counters
        )
        with_merging = ModelCone.from_mudd(
            load_bundled_model("merging_load_side"), counters=counters
        )
        assert not point_feasibility(without, observation).feasible
        assert point_feasibility(with_merging, observation).feasible

    def test_no_merging_model_implies_constraint1(self):
        # The facet basis renders Constraint 1 in the equivalent form
        # 2*ret_stlb <= causes_walk + walk_done (with walk_done ==
        # causes_walk as an equality); check the implication itself.
        cone = ModelCone.from_mudd(load_bundled_model("no_merging_load_side"))
        constraints = cone.constraints()
        boundary = [10, 10, 10]  # walks, done, retired misses
        violating = [10, 10, 11]
        assert constraints.satisfied_by(boundary)
        assert not constraints.satisfied_by(violating)

    def test_walk_refs_model_bounds_references(self):
        cone = ModelCone.from_mudd(load_bundled_model("walk_refs_4k"))
        index = {name: i for i, name in enumerate(cone.counters)}
        refs = [index[n] for n in ("walk_ref.l1", "walk_ref.l2", "walk_ref.l3", "walk_ref.mem") if n in index]
        for signature in cone.signatures:
            total_refs = sum(signature[i] for i in refs)
            pde_miss = signature[index["load.pde$_miss"]]
            assert total_refs == 1 + pde_miss  # 1 read on hit, 2 on miss
