"""Tests for guided model exploration and the pipeline facade."""

import pytest

from repro import CounterPoint, PointRegion
from repro.errors import AnalysisError
from repro.explore import (
    GuidedSearch,
    classify_features,
    essential_features,
)
from repro.explore.classification import CONFIRMED, POSSIBLE, UNSUPPORTED
from repro.explore.search import ModelEvaluation
from repro.cone import ModelCone


# A miniature universe: two counters, two features.
#   Feature "B" adds a µpath (0,1) — pde-miss-without-walk.
#   Feature "A" adds a µpath (2,1) — irrelevant to the data.
def tiny_cone_builder(features):
    signatures = [(1, 0), (1, 1)]
    if "B" in features:
        signatures.append((0, 1))
    if "A" in features:
        signatures.append((2, 1))
    return ModelCone(["causes_walk", "pde_miss"], signatures, name=str(sorted(features)))


class TinyObservation:
    def __init__(self, name, causes_walk, pde_miss):
        self.name = name
        self._point = {"causes_walk": causes_walk, "pde_miss": pde_miss}

    def point(self):
        return dict(self._point)


OBSERVATIONS = [
    TinyObservation("benign", 10, 4),
    TinyObservation("excess-pde", 5, 9),  # needs feature B
]


@pytest.fixture
def search():
    return GuidedSearch(
        tiny_cone_builder, OBSERVATIONS, candidate_features=("A", "B"), backend="exact"
    )


class TestGuidedSearch:
    def test_initial_model_infeasible(self, search):
        evaluation = search.evaluate(frozenset())
        assert evaluation.n_infeasible == 1
        assert evaluation.infeasible == ["excess-pde"]

    def test_discovery_finds_feature_b(self, search):
        candidate, trail = search.discovery()
        assert candidate is not None
        assert "B" in candidate
        assert trail[0] == frozenset()

    def test_discovery_does_not_add_useless_feature(self, search):
        candidate, _ = search.discovery()
        assert "A" not in candidate

    def test_run_produces_minimal_models(self, search):
        result = search.run()
        assert result.candidate is not None
        minimal = result.minimal_feasible
        assert frozenset({"B"}) in minimal

    def test_elimination_prunes(self, search):
        result = search.run()
        # The empty set was evaluated (during discovery) and is
        # infeasible; {B} is feasible and minimal.
        assert not search.evaluate(frozenset()).feasible
        assert search.evaluate(frozenset({"B"})).feasible

    def test_evaluation_cache(self, search):
        first = search.evaluate(frozenset({"B"}))
        second = search.evaluate(frozenset({"B"}))
        assert first is second

    def test_needs_observations(self):
        with pytest.raises(AnalysisError):
            GuidedSearch(tiny_cone_builder, [], candidate_features=("A",))

    def test_stuck_discovery_returns_none(self):
        # An observation no feature combination can explain.
        impossible = [TinyObservation("impossible", -0.0, 0.0)]

        def zero_builder(features):
            return ModelCone(["causes_walk", "pde_miss"], [(1, 0)], name="rigid")

        stuck = GuidedSearch(
            zero_builder,
            [TinyObservation("unexplainable", 0, 7)],
            candidate_features=("A",),
            backend="exact",
        )
        candidate, trail = stuck.discovery()
        assert candidate is None
        del impossible


class TestClassification:
    def make_evaluations(self):
        return [
            ModelEvaluation({"A", "B"}, [], 2),
            ModelEvaluation({"B"}, [], 2),
            ModelEvaluation({"A"}, ["x"], 2),
            ModelEvaluation(set(), ["x", "y"], 2),
        ]

    def test_essential_features(self):
        assert essential_features(self.make_evaluations()) == frozenset({"B"})

    def test_classify(self):
        classification = classify_features(self.make_evaluations(), ("A", "B", "C"))
        assert classification["B"] == CONFIRMED
        assert classification["A"] == POSSIBLE
        assert classification["C"] == UNSUPPORTED

    def test_classification_requires_feasible_model(self):
        with pytest.raises(AnalysisError):
            essential_features([ModelEvaluation(set(), ["x"], 1)])

    def test_accepts_dict_input(self):
        evaluations = {ev.features: ev for ev in self.make_evaluations()}
        assert essential_features(evaluations) == frozenset({"B"})


PDE_MODEL = """
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
  Hit => pass;
  Miss => incr load.pde$_miss
};
done;
"""


class TestCounterPointFacade:
    def test_analyze_feasible_point(self):
        report = CounterPoint().analyze(
            PDE_MODEL, {"load.causes_walk": 10, "load.pde$_miss": 4}
        )
        assert report.feasible
        assert report.violations == []
        assert "feasible" in report.summary()

    def test_analyze_infeasible_point_reports_violations(self):
        report = CounterPoint().analyze(
            PDE_MODEL, {"load.causes_walk": 5, "load.pde$_miss": 12}
        )
        assert not report.feasible
        assert any(
            "load.pde$_miss <= load.causes_walk" in v.constraint.render()
            for v in report.violations
        )
        assert "INFEASIBLE" in report.summary()

    def test_analyze_region(self):
        report = CounterPoint().analyze(PDE_MODEL, PointRegion([10.0, 4.0]))
        assert report.feasible

    def test_model_cone_passthrough(self):
        cp = CounterPoint()
        cone = cp.model_cone(PDE_MODEL)
        assert cp.model_cone(cone) is cone

    def test_rejects_unknown_model_type(self):
        with pytest.raises(AnalysisError):
            CounterPoint().model_cone(42)

    def test_sweep_counts(self):
        cp = CounterPoint(backend="exact")

        class Obs:
            def __init__(self, name, point):
                self.name = name
                self._point = point

            def point(self):
                return dict(self._point)

        observations = [
            Obs("good", {"load.causes_walk": 5, "load.pde$_miss": 2}),
            Obs("bad", {"load.causes_walk": 2, "load.pde$_miss": 5}),
        ]
        sweep = cp.sweep(PDE_MODEL, observations)
        assert sweep.n_infeasible == 1
        assert sweep.infeasible_names == ["bad"]
        assert not sweep.feasible

    def test_compare(self):
        cp = CounterPoint(backend="exact")

        class Obs:
            name = "only"

            def point(self):
                return {"load.causes_walk": 2, "load.pde$_miss": 5}

        refined = """
        do LookupPde$;
        switch Pde$Status { Miss => incr load.pde$_miss; Hit => pass; };
        switch Abort { Yes => done; No => pass; };
        incr load.causes_walk;
        done;
        """
        cones = [cp.model_cone(PDE_MODEL), cp.model_cone(refined)]
        cones[0].name = "initial"
        cones[1].name = "refined"
        results = cp.compare(cones, [Obs()])
        assert results["initial"].n_infeasible == 1
        assert results["refined"].n_infeasible == 0
