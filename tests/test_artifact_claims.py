"""The artifact store's concurrency hardening (repro.results.store).

Covers the two mechanisms the serve daemon leans on when tenants share
one cache directory:

* claim markers — atomic ``O_CREAT|O_EXCL`` files granting exactly one
  worker ownership of an in-flight cell, with stale-claim stealing when
  the owner died mid-compute,
* eviction races — an entry vanishing (or turning to garbage) between
  ``contains`` and ``get`` degrades to a miss-and-recompute, never a
  crash,

plus the :class:`~repro.results.store.ClaimTable` protocol that stitches
them into thread- and process-level work dedup, and two-process stress
tests following ``tests/test_disk_cache.py``'s pattern.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.results import AnalysisSession, ArtifactStore, ClaimTable
from repro.results.store import _STALE_CLAIM_SECONDS, content_key

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "artifacts"), max_bytes=None)


def _backdate(path, seconds):
    old = os.path.getmtime(path) - seconds
    os.utime(path, (old, old))


class TestStoreClaims:
    def test_claim_is_exclusive_until_released(self, store):
        key = content_key("cell", 0)
        assert store.claim("verdict", key)
        assert not store.claim("verdict", key)      # second caller loses
        assert store.claimed("verdict", key)
        store.release_claim("verdict", key)
        assert not store.claimed("verdict", key)
        assert store.claim("verdict", key)          # re-claimable

    def test_release_is_idempotent(self, store):
        key = content_key("cell", 1)
        store.release_claim("verdict", key)         # never claimed: no-op
        assert store.claim("verdict", key)
        store.release_claim("verdict", key)
        store.release_claim("verdict", key)

    def test_stale_claim_is_stolen(self, store):
        key = content_key("cell", 2)
        assert store.claim("verdict", key)
        _backdate(store._claim_path("verdict", key), _STALE_CLAIM_SECONDS + 60)
        assert not store.claimed("verdict", key)    # expired, not live
        # The next claimant steals the dead worker's marker.
        assert store.claim("verdict", key)
        assert store.claimed("verdict", key)        # fresh marker again

    def test_prune_sweeps_stale_claims_but_not_live_ones(self, store):
        live = content_key("cell", 3)
        dead = content_key("cell", 4)
        store.claim("verdict", live)
        store.claim("verdict", dead)
        _backdate(store._claim_path("verdict", dead), _STALE_CLAIM_SECONDS + 60)
        store.prune()
        assert os.path.exists(store._claim_path("verdict", live))
        assert not os.path.exists(store._claim_path("verdict", dead))

    def test_clear_drops_even_live_claims(self, store):
        key = content_key("cell", 5)
        store.claim("verdict", key)
        store.clear()
        assert not store.claimed("verdict", key)


class TestEvictionRace:
    def test_entry_vanishing_behind_our_back_is_a_miss(self, store):
        key = content_key("cell", 10)
        store.put("verdict", key, {"feasible": True})
        assert store.get("verdict", key) is not None
        # Another process's LRU pruning races our read: the file is
        # simply gone. That must read as a miss, never raise.
        os.unlink(store._path("verdict", key))
        misses = store.misses
        assert store.get("verdict", key) is None
        assert store.misses == misses + 1

    def test_torn_bytes_are_discarded_and_missed(self, store):
        key = content_key("cell", 11)
        store.put("verdict", key, {"feasible": True})
        path = store._path("verdict", key)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get("verdict", key) is None
        assert not os.path.exists(path)             # garbage was dropped

    def test_session_recomputes_foreign_verdict_payloads(self, tmp_path):
        """A valid envelope wrapping a payload that isn't a CellVerdict
        (older schema, or torn by a racing writer) is discarded and
        recomputed by the session — a sweep never crashes on it."""
        from tests.test_session import dataset, tiny_cone

        store_dir = str(tmp_path / "artifacts")
        warm = AnalysisSession(store=store_dir, backend="exact")
        baseline = warm.sweep(tiny_cone(), dataset(6))
        assert warm.stats.tests == 6

        for path in warm.store._entries():
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            envelope["payload"] = {"geometry": "nonsense"}
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)

        cold = AnalysisSession(store=store_dir, backend="exact")
        replay = cold.sweep(tiny_cone(), dataset(6))
        assert cold.stats.tests == 6                # all recomputed
        assert cold.stats.store_hits == 0
        assert replay.to_dict() == baseline.to_dict()


class TestClaimTable:
    def test_local_claim_release_wait(self):
        claims = ClaimTable()
        assert claims.claim("k")
        assert not claims.claim("k")
        assert len(claims) == 1

        finished = []

        def waiter():
            finished.append(claims.wait("k", timeout=30))

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        claims.release("k")
        thread.join(timeout=10)
        assert finished == [True]
        assert len(claims) == 0

    def test_wait_on_unclaimed_key_returns_immediately(self):
        claims = ClaimTable()
        assert claims.wait("never-claimed", timeout=0)

    def test_remote_owner_blocks_second_table(self, store):
        owner = ClaimTable(store=store, poll_interval=0.01)
        other = ClaimTable(store=store, poll_interval=0.01)
        assert owner.claim("k")
        assert store.claimed("verdict", "k")        # visible cross-process
        assert not other.claim("k")                 # remote owner detected

    def test_remote_wait_returns_when_artifact_published(self, store):
        owner = ClaimTable(store=store, poll_interval=0.01)
        other = ClaimTable(store=store, poll_interval=0.01)
        owner.claim("k")
        other.claim("k")
        store.put("verdict", "k", {"feasible": True})
        assert other.wait("k", timeout=10)          # artifact appeared
        assert len(other) == 0                      # waiter deregistered

    def test_remote_wait_returns_when_claim_released(self, store):
        owner = ClaimTable(store=store, poll_interval=0.01)
        other = ClaimTable(store=store, poll_interval=0.01)
        owner.claim("k")
        other.claim("k")

        def release_soon():
            time.sleep(0.05)
            owner.release("k")

        thread = threading.Thread(target=release_soon, daemon=True)
        thread.start()
        # No artifact ever published (the owner "failed") — the lapsed
        # claim still wakes the waiter, which then computes itself.
        assert other.wait("k", timeout=10)
        thread.join(timeout=10)

    def test_remote_wait_times_out_on_stuck_owner(self, store):
        owner = ClaimTable(store=store, poll_interval=0.01)
        other = ClaimTable(store=store, poll_interval=0.01)
        owner.claim("k")
        other.claim("k")
        assert not other.wait("k", timeout=0.2)     # owner never finishes


_CLAIM_SCRIPT = """
import sys
from repro.results import ArtifactStore

store = ArtifactStore(sys.argv[1], max_bytes=None)
wins = sum(
    1
    for index in range(int(sys.argv[2]))
    if store.claim("verdict", "key%04d" % index)
)
print("wins=%d" % wins)
"""

_PUT_SCRIPT = """
import sys
from repro.results import ArtifactStore

store = ArtifactStore(sys.argv[1], max_bytes=2048)  # constantly evicting
for lap in range(int(sys.argv[2])):
    for index in range(32):
        store.put("verdict", "key%04d" % index, {"lap": lap, "cell": index})
print("ok")
"""

_GET_SCRIPT = """
import sys
from repro.results import ArtifactStore

store = ArtifactStore(sys.argv[1], max_bytes=None)
hits = 0
for lap in range(int(sys.argv[2])):
    for index in range(32):
        payload = store.get("verdict", "key%04d" % index)
        if payload is not None:
            assert payload["cell"] == index, payload
            hits += 1
print("hits=%d" % hits)
"""


def _spawn(script, store_dir, count):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, store_dir, str(count)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestTwoProcessStress:
    @pytest.mark.slow
    def test_claims_grant_exactly_one_winner_per_key(self, tmp_path):
        """Two processes race to claim the same 64 keys; O_CREAT|O_EXCL
        must grant each key to exactly one of them — no double grants,
        no lost keys."""
        store_dir = str(tmp_path / "artifacts")
        first = _spawn(_CLAIM_SCRIPT, store_dir, 64)
        second = _spawn(_CLAIM_SCRIPT, store_dir, 64)
        out_first, err_first = first.communicate(timeout=120)
        out_second, err_second = second.communicate(timeout=120)
        assert first.returncode == 0, err_first
        assert second.returncode == 0, err_second

        wins = [
            int(out.strip().split("=")[1]) for out in (out_first, out_second)
        ]
        assert sum(wins) == 64
        verifier = ArtifactStore(store_dir, max_bytes=None)
        assert all(
            verifier.claimed("verdict", "key%04d" % index)
            for index in range(64)
        )

    @pytest.mark.slow
    def test_reader_races_evicting_writer_without_crashing(self, tmp_path):
        """A writer publishing under a tiny byte cap evicts constantly
        while a reader loops get() over the same keys: every read is a
        hit or a miss, never an exception, and hits are never torn."""
        store_dir = str(tmp_path / "artifacts")
        writer = _spawn(_PUT_SCRIPT, store_dir, 40)
        reader = _spawn(_GET_SCRIPT, store_dir, 40)
        out_writer, err_writer = writer.communicate(timeout=300)
        out_reader, err_reader = reader.communicate(timeout=300)
        assert writer.returncode == 0, err_writer
        assert reader.returncode == 0, err_reader
        assert "ok" in out_writer
        assert "hits=" in out_reader
