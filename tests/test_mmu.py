"""Tests for the Haswell MMU simulator substrate.

The paper's discovered behaviours are the specification here: each
feature's counting semantics must produce exactly the constraint
violations CounterPoint attributes to it.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mmu import MMUConfig, MMUSimulator, MemoryOp, PageSize
from repro.mmu.paging import PageTable, PagingStructureCache
from repro.mmu.prefetcher import PrefetchTrigger
from repro.mmu.tlb import STLB, L1DTLB, TLBArray


def sweep_ops(n_pages, lines_per_page=64, kind="load", page_bytes=4096, retires=True):
    for page in range(n_pages):
        for line in range(lines_per_page):
            yield MemoryOp(kind, page * page_bytes + line * 64, retires=retires)


def walk_ref_total(counters):
    return sum(counters["walk_ref.%s" % level] for level in ("l1", "l2", "l3", "mem"))


class TestTLBStructures:
    def test_tlb_array_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            TLBArray(10, 4)

    def test_tlb_hit_after_insert(self):
        tlb = TLBArray(16, 4)
        tlb.insert(42)
        assert tlb.lookup(42)
        assert not tlb.lookup(43)

    def test_tlb_lru(self):
        tlb = TLBArray(2, 2)  # one set, two ways
        tlb.insert(0)
        tlb.insert(1)
        tlb.lookup(0)
        tlb.insert(2)  # evicts 1
        assert tlb.lookup(0)
        assert not tlb.lookup(1)

    def test_l1_dtlb_per_size_arrays(self):
        dtlb = L1DTLB(MMUConfig())
        dtlb.insert(5, PageSize.SIZE_4K)
        assert dtlb.lookup(5, PageSize.SIZE_4K)
        assert not dtlb.lookup(5, PageSize.SIZE_2M)

    def test_stlb_no_1g_entries(self):
        stlb = STLB(MMUConfig())
        stlb.insert(7, PageSize.SIZE_1G)
        assert not stlb.lookup(7, PageSize.SIZE_1G)

    def test_stlb_size_tagging(self):
        stlb = STLB(MMUConfig())
        stlb.insert(7, PageSize.SIZE_4K)
        assert stlb.lookup(7, PageSize.SIZE_4K)
        assert not stlb.lookup(7, PageSize.SIZE_2M)


class TestPaging:
    def test_walk_levels_by_size(self):
        assert PageTable("4k").walk_levels() == ["pml4", "pdpt", "pd", "pt"]
        assert PageTable("2m").walk_levels() == ["pml4", "pdpt", "pd"]
        assert PageTable("1g").walk_levels() == ["pml4", "pdpt"]

    def test_walk_levels_with_entry(self):
        assert PageTable("4k").walk_levels("pd") == ["pt"]
        assert PageTable("4k").walk_levels("pdpt") == ["pd", "pt"]
        assert PageTable("2m").walk_levels("pdpt") == ["pd"]

    def test_leaf_entry_level_invalid(self):
        with pytest.raises(ConfigurationError):
            PageTable("2m").walk_levels("pd")  # PD is the 2M leaf

    def test_entry_addresses_disjoint_per_level(self):
        table = PageTable("4k")
        addresses = {table.entry_address(level, 0x1234567) for level in
                     ("pml4", "pdpt", "pd", "pt")}
        assert len(addresses) == 4

    def test_accessed_bits(self):
        table = PageTable("4k")
        assert not table.is_accessed(9)
        table.set_accessed(9)
        assert table.is_accessed(9)

    def test_pde_cache_never_hits_for_2m(self):
        """The Table 1 Constraint 2 subtlety: PDE cache entries are
        pointers to page tables; 2M/1G translations always miss it."""
        psc = PagingStructureCache("pd", 8)
        psc.insert(0x200000)
        assert psc.lookup(0x200000, PageSize.SIZE_4K)
        assert not psc.lookup(0x200000, PageSize.SIZE_2M)
        assert not psc.lookup(0x200000, PageSize.SIZE_1G)

    def test_pml4e_cache_covers_all_sizes(self):
        psc = PagingStructureCache("pml4", 4)
        psc.insert(0)
        for size in (PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G):
            assert psc.lookup(0, size)

    def test_disabled_psc_never_hits(self):
        psc = PagingStructureCache("pml4", 4, enabled=False)
        psc.insert(0)
        assert not psc.lookup(0, PageSize.SIZE_4K)

    def test_psc_lru_capacity(self):
        psc = PagingStructureCache("pd", 2)
        for region in range(3):
            psc.insert(region << 21)
        assert not psc.lookup(0 << 21, PageSize.SIZE_4K)
        assert psc.lookup(2 << 21, PageSize.SIZE_4K)


class TestPrefetchTrigger:
    def test_ascending_trigger_51_52(self):
        trigger = PrefetchTrigger()
        assert trigger.observe(51 * 64, 4096) is None
        assert trigger.observe(52 * 64, 4096) == 1

    def test_descending_trigger_8_7(self):
        trigger = PrefetchTrigger()
        base = 10 * 4096
        assert trigger.observe(base + 8 * 64, 4096) is None
        assert trigger.observe(base + 7 * 64, 4096) == 9

    def test_no_other_line_pairs(self):
        trigger = PrefetchTrigger()
        for line in (10, 11, 30, 31, 50, 51):  # 50->51 is not a trigger
            result = trigger.observe(line * 64, 4096)
        assert result is None

    def test_cross_frame_pair_does_not_trigger(self):
        trigger = PrefetchTrigger()
        trigger.observe(51 * 64, 4096)
        assert trigger.observe(4096 + 52 * 64, 4096) is None

    def test_trigger_once_per_target(self):
        trigger = PrefetchTrigger()
        trigger.observe(51 * 64, 4096)
        assert trigger.observe(52 * 64, 4096) == 1
        trigger.observe(51 * 64, 4096)
        assert trigger.observe(52 * 64, 4096) is None

    def test_2m_page_requires_last_frame(self):
        trigger = PrefetchTrigger()
        page_bytes = 2 * 1024 * 1024
        # Middle frame of the 2M page: no page crossing predicted.
        middle = 100 * 4096
        trigger.observe(middle + 51 * 64, page_bytes)
        assert trigger.observe(middle + 52 * 64, page_bytes) is None
        # Last frame of the 2M page does predict a crossing.
        last = page_bytes - 4096
        trigger.observe(last + 51 * 64, page_bytes)
        assert trigger.observe(last + 52 * 64, page_bytes) == 1

    def test_descending_below_zero(self):
        trigger = PrefetchTrigger()
        trigger.observe(8 * 64, 4096)
        assert trigger.observe(7 * 64, 4096) is None  # page -1 invalid


class TestSimulatorBasics:
    def test_memory_op_validation(self):
        with pytest.raises(SimulationError):
            MemoryOp("fetch", 0)
        with pytest.raises(SimulationError):
            MemoryOp("load", -1)

    def test_counters_cover_table2(self):
        sim = MMUSimulator()
        assert len(sim.counters) == 26

    def test_retired_ops_counted(self):
        sim = MMUSimulator()
        sim.run([MemoryOp("load", 0), MemoryOp("store", 64)])
        assert sim.counters["load.ret"] == 1
        assert sim.counters["store.ret"] == 1

    def test_speculative_ops_not_retired(self):
        sim = MMUSimulator()
        sim.run([MemoryOp("load", 0, retires=False)])
        assert sim.counters["load.ret"] == 0
        assert sim.counters["load.causes_walk"] == 1  # walk still happens

    def test_l1_tlb_hit_no_counters(self):
        sim = MMUSimulator()
        sim.run([MemoryOp("load", 0), MemoryOp("load", 8)])
        assert sim.counters["load.causes_walk"] == 1  # only the first
        assert sim.counters["load.stlb_hit"] == 0

    def test_stlb_hit_counted(self):
        config = MMUConfig(l1_tlb_entries_4k=4, l1_tlb_ways_4k=4, prefetcher=False)
        sim = MMUSimulator(config)
        # Touch 20 pages (blows the 4-entry L1 and outlives the walk
        # latency window), then revisit page 0: its translation has left
        # the L1 TLB but still sits in the STLB.
        ops = [MemoryOp("load", page * 4096) for page in range(20)]
        ops.append(MemoryOp("load", 0))
        sim.run(ops)
        assert sim.counters["load.stlb_hit"] == 1
        assert sim.counters["load.stlb_hit_4k"] == 1

    def test_walk_done_equals_causes_walk_when_drained(self):
        sim = MMUSimulator()
        sim.run(sweep_ops(20))
        for t in ("load", "store"):
            assert sim.counters["%s.walk_done" % t] == sim.counters["%s.causes_walk" % t]

    def test_walk_done_size_breakdown(self):
        sim = MMUSimulator(page_size="2m")
        sim.run([MemoryOp("load", 0)])
        sim.drain()
        assert sim.counters["load.walk_done_2m"] == 1
        assert sim.counters["load.walk_done_4k"] == 0

    def test_run_intervals_shapes(self):
        sim = MMUSimulator()
        intervals = list(sim.run_intervals(sweep_ops(10), ops_per_interval=160))
        assert len(intervals) == 4  # 640 ops / 160
        assert all(len(interval) == 26 for interval in intervals)

    def test_run_intervals_sums_to_totals(self):
        sim = MMUSimulator()
        intervals = list(sim.run_intervals(sweep_ops(10), ops_per_interval=100))
        totals = {name: sum(i[name] for i in intervals) for name in intervals[0]}
        assert totals == sim.snapshot()

    def test_run_intervals_validation(self):
        sim = MMUSimulator()
        with pytest.raises(SimulationError):
            list(sim.run_intervals(sweep_ops(1), ops_per_interval=0))


class TestDiscoveredBehaviours:
    """Each paper discovery, as a counting-semantics assertion."""

    def test_merging_violates_constraint1(self):
        """Table 1 Constraint 1: merging makes retired STLB misses
        exceed completed walks."""
        sim = MMUSimulator()  # walk latency 12 ops; stride-64 sweep merges
        sim.run(sweep_ops(50))
        assert sim.counters["load.ret_stlb_miss"] > sim.counters["load.walk_done"]

    def test_no_merging_no_violation(self):
        sim = MMUSimulator(MMUConfig(merging=False, prefetcher=False))
        sim.run(sweep_ops(50))
        assert sim.counters["load.ret_stlb_miss"] <= sim.counters["load.causes_walk"]

    def test_early_psc_pde_misses_exceed_walks_on_1g(self):
        """1G translations always miss the PDE cache, and merged requests
        probe it before MSHR allocation: pde$_miss > causes_walk."""
        page = PageSize.BYTES[PageSize.SIZE_1G]
        ops = []
        for page_index in range(8):
            for step in range(32):
                ops.append(MemoryOp("load", page_index * page + step * (1 << 20)))
        ops = ops * 3  # revisit so L1-1G TLB (4 entries) keeps missing
        sim = MMUSimulator(page_size="1g")
        sim.run(ops)
        assert sim.counters["load.pde$_miss"] > sim.counters["load.causes_walk"]

    def test_late_psc_pde_misses_bounded(self):
        page = PageSize.BYTES[PageSize.SIZE_1G]
        ops = []
        for page_index in range(8):
            for step in range(32):
                ops.append(MemoryOp("load", page_index * page + step * (1 << 20)))
        sim = MMUSimulator(MMUConfig(early_psc=False, prefetcher=False), page_size="1g")
        sim.run(ops)
        assert sim.counters["load.pde$_miss"] <= sim.counters["load.causes_walk"]

    def test_prefetcher_inflates_walk_refs(self):
        """Prefetch-induced walks inject real walker loads: walk_ref
        exceeds what demand walks alone could produce."""
        with_pf = MMUSimulator(MMUConfig(walk_replay=False))
        with_pf.run(sweep_ops(100))
        without_pf = MMUSimulator(MMUConfig(walk_replay=False, prefetcher=False))
        without_pf.run(sweep_ops(100))
        assert walk_ref_total(with_pf.counters) > walk_ref_total(without_pf.counters)

    def test_prefetch_abort_on_unset_accessed_bit(self):
        """Fresh pages: prefetches abort (no TLB fill), so demand walks
        still happen for every page."""
        sim = MMUSimulator(MMUConfig(walk_replay=False))
        sim.run(sweep_ops(60))
        # Every page still demand-walked despite prefetching.
        assert sim.counters["load.causes_walk"] >= 59

    def test_prefetch_completes_on_accessed_pages(self):
        """Warmed pages: prefetches fill the TLBs ahead of the sweep, so
        demand walks nearly vanish (the Table 5 revisit scenario)."""
        sim = MMUSimulator()
        warm = [MemoryOp("store", page * 4096) for page in range(3000)]
        sim.run(warm)
        before = dict(sim.counters)
        sim.run(sweep_ops(600))
        walks = sim.counters["load.causes_walk"] - before["load.causes_walk"]
        refs = walk_ref_total(sim.counters) - walk_ref_total(before)
        assert walks <= 5
        assert refs >= 500  # prefetch walks injected the references

    def test_walk_replay_suppresses_refs(self):
        """First-touch walks replay: they complete but emit no walk_ref."""
        sim = MMUSimulator(MMUConfig(prefetcher=False))
        ops = [MemoryOp("load", page * 4096) for page in range(50)]
        sim.run(ops)
        assert sim.counters["load.walk_done"] == 50
        assert walk_ref_total(sim.counters) == 0

    def test_no_replay_first_touch_refs_counted(self):
        sim = MMUSimulator(MMUConfig(prefetcher=False, walk_replay=False))
        ops = [MemoryOp("load", page * 4096) for page in range(50)]
        sim.run(ops)
        assert walk_ref_total(sim.counters) >= 50

    def test_pml4e_cache_shortens_1g_walks(self):
        """Constraint 3: with the root cache, 1G walks emit one walker
        load instead of two."""
        page = PageSize.BYTES[PageSize.SIZE_1G]
        ops = [MemoryOp("load", p * page) for p in range(8)] * 4

        with_cache = MMUSimulator(
            MMUConfig(prefetcher=False, walk_replay=False), page_size="1g"
        )
        with_cache.run(ops)
        without_cache = MMUSimulator(
            MMUConfig(prefetcher=False, walk_replay=False, pml4e_cache=False),
            page_size="1g",
        )
        without_cache.run(ops)

        walks = with_cache.counters["load.causes_walk"]
        assert walks == without_cache.counters["load.causes_walk"]
        assert walk_ref_total(with_cache.counters) < walk_ref_total(
            without_cache.counters
        )
        # Without the root cache every walk reads PML4E + PDPTE.
        assert walk_ref_total(without_cache.counters) == 2 * walks

    def test_counters_never_negative(self):
        sim = MMUSimulator()
        sim.run(sweep_ops(30, kind="store"))
        assert all(value >= 0 for value in sim.counters.values())

    def test_store_only_sweep_no_prefetch(self):
        """Only loads trigger the prefetcher (Appendix C.2)."""
        with_stores = MMUSimulator(MMUConfig(walk_replay=False))
        with_stores.run(sweep_ops(100, kind="store"))
        baseline = MMUSimulator(MMUConfig(walk_replay=False, prefetcher=False))
        baseline.run(sweep_ops(100, kind="store"))
        assert walk_ref_total(with_stores.counters) == walk_ref_total(
            baseline.counters
        )


class TestConfig:
    def test_full_haswell_features(self):
        features = MMUConfig.full_haswell().feature_set()
        assert all(features.values())

    def test_textbook_features(self):
        features = MMUConfig.textbook().feature_set()
        assert not any(features.values())

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            MMUConfig(stlb_entries=0)

    def test_page_size_validation(self):
        with pytest.raises(ConfigurationError):
            MMUSimulator(page_size="16k")
