"""Seeded random-µDD generator for the differential equivalence suite.

Grows random acyclic decision diagrams over all five node kinds
(START / EVENT / COUNTER / DECISION / END) so the fuzz sweep in
``test_sim_equivalence.py`` exercises every structural feature the
execution backends must agree on:

* configurable depth and decision fan-out,
* repeated properties along a path (the traversal rule: a property
  resolved earlier on the same µop's path is never re-asked),
* counters that appear in the graph but not in the requested counter
  ordering (unobserved counters),
* prefetch-style EVENT nodes between decisions.

Generation is tree-shaped (every tree is a DAG, so :meth:`MuDD.validate`
acyclicity holds by construction) and fully determined by the seed.
Repeated decisions always branch over the property's *full* value
domain, so a value assigned upstream always has a matching branch —
fuzz models never dead-end, whatever the oracle chooses.
"""

import random

from repro.mudd.graph import COUNTER, DECISION, END, EVENT, START, MuDD

#: Value domains per generated property (small, so repeats are common).
_DOMAINS = {
    "Hit": ("Yes", "No"),
    "Level": ("L1", "L2", "Mem"),
    "Merged": ("Yes", "No"),
    "PfKind": ("None", "Next", "Stride"),
}

_COUNTER_POOL = (
    "ctr.loads", "ctr.walks", "ctr.hits", "ctr.misses", "ctr.evictions",
)

_EVENT_POOL = ("ev.issue", "ev.prefetch.issue", "ev.prefetch.drop", "ev.retire")


class _Budget:
    """Mutable node budget shared across the recursive build."""

    def __init__(self, nodes):
        self.nodes = nodes

    def take(self):
        self.nodes -= 1
        return self.nodes >= 0


def random_mudd(seed, max_depth=6, max_fanout=3, n_properties=4, n_counters=4,
                n_events=3, p_repeat=0.35, p_counter=0.35, p_event=0.15,
                p_end=0.15, node_budget=300, full_domains=False,
                name=None):
    """A random valid µDD, fully determined by ``seed``.

    ``full_domains=True`` forces every decision (not just repeated ones)
    to branch over its property's whole value domain — required when a
    :class:`~repro.sim.oracles.TableOracle` scripts constant values, so
    the scripted value always has a branch.
    """
    rng = random.Random(seed)
    properties = list(_DOMAINS)[:max(1, min(n_properties, len(_DOMAINS)))]
    counters = list(_COUNTER_POOL[:max(1, min(n_counters, len(_COUNTER_POOL)))])
    events = list(_EVENT_POOL[:max(1, min(n_events, len(_EVENT_POOL)))])
    mudd = MuDD(name or "fuzz-%d" % seed)
    start = mudd.add_node(START)
    budget = _Budget(node_budget)

    def grow(parent, value, depth, assigned):
        """Attach a random subtree below ``parent`` (via ``value`` when
        the parent is a decision)."""
        if depth >= max_depth or not budget.take() or rng.random() < p_end:
            mudd.add_edge(parent, mudd.add_node(END), value=value)
            return
        roll = rng.random()
        if roll < p_counter:
            node = mudd.add_node(COUNTER, rng.choice(counters))
            mudd.add_edge(parent, node, value=value)
            grow(node, None, depth + 1, assigned)
            return
        if roll < p_counter + p_event:
            node = mudd.add_node(EVENT, rng.choice(events))
            mudd.add_edge(parent, node, value=value)
            grow(node, None, depth + 1, assigned)
            return
        repeat = assigned and rng.random() < p_repeat
        prop = rng.choice(sorted(assigned)) if repeat else rng.choice(properties)
        domain = list(_DOMAINS[prop])
        if repeat or full_domains or prop in assigned:
            # Every already-assignable value needs a branch (traversal
            # rule: the walk follows the earlier assignment statically).
            branch_values = domain
        else:
            fanout = rng.randint(2, min(max_fanout, len(domain)))
            branch_values = rng.sample(domain, fanout)
        node = mudd.add_node(DECISION, prop)
        mudd.add_edge(parent, node, value=value)
        for branch in branch_values:
            grow(node, branch, depth + 1, assigned | {prop})
        return

    grow(start, None, 0, frozenset())
    mudd.validate()
    return mudd


def random_weights(seed, mudd, p_weighted=0.6):
    """A random (possibly empty) RandomOracle ``weights`` mapping for
    ``mudd``'s properties; positive weights only, so no zero-sum."""
    rng = random.Random(seed ^ 0x5EED)
    weights = {}
    for prop in mudd.properties:
        if rng.random() >= p_weighted:
            continue
        weights[prop] = {
            value: rng.choice((0.5, 1.0, 2.0, 3.0)) for value in _DOMAINS[prop]
        }
    return weights or None


def observed_counters(seed, mudd):
    """A counter ordering that drops some of the µDD's counters (the
    unobserved-counter case) and shuffles the rest."""
    rng = random.Random(seed ^ 0xC0C0)
    names = list(mudd.counters)
    if len(names) > 1 and rng.random() < 0.5:
        names = rng.sample(names, rng.randint(1, len(names) - 1))
    rng.shuffle(names)
    return names


def constant_table(seed, mudd):
    """A TableOracle mapping scripting a constant value for a random
    subset of properties (valid only with ``full_domains=True`` models)."""
    rng = random.Random(seed ^ 0x7AB1E)
    table = {}
    for prop in mudd.properties:
        if rng.random() < 0.7:
            table[prop] = rng.choice(_DOMAINS[prop])
    return table
