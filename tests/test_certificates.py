"""Tests for Farkas separating-constraint certificates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cone import ModelCone, separating_constraint
from repro.cone import test_point_feasibility as point_feasibility
from repro.dsl import compile_dsl

PDE_MODEL = """
incr load.causes_walk;
do LookupPde$;
switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
done;
"""


@pytest.fixture
def pde_cone():
    return ModelCone.from_mudd(compile_dsl(PDE_MODEL))


class TestSeparatingConstraint:
    def test_feasible_returns_none(self, pde_cone):
        observation = {"load.causes_walk": 10, "load.pde$_miss": 4}
        assert separating_constraint(pde_cone, observation) is None

    def test_infeasible_returns_violated_constraint(self, pde_cone):
        observation = {"load.causes_walk": 4, "load.pde$_miss": 10}
        certificate = separating_constraint(pde_cone, observation)
        assert certificate is not None
        # The certificate is violated by the observation...
        vector = pde_cone.vector_from_observation(observation)
        assert certificate.evaluate(vector) < 0
        # ...and satisfied by every µpath signature (a valid constraint).
        for signature in pde_cone.signatures:
            assert certificate.evaluate(list(signature)) >= 0

    def test_certificate_is_the_paper_constraint(self, pde_cone):
        observation = {"load.causes_walk": 4, "load.pde$_miss": 10}
        certificate = separating_constraint(pde_cone, observation)
        assert certificate.render() == "load.pde$_miss <= load.causes_walk"

    def test_scipy_backend_verified_exactly(self, pde_cone):
        observation = {"load.causes_walk": 4, "load.pde$_miss": 10}
        certificate = separating_constraint(pde_cone, observation, backend="scipy")
        assert certificate is not None
        vector = pde_cone.vector_from_observation(observation)
        assert certificate.evaluate(vector) < 0
        for signature in pde_cone.signatures:
            assert certificate.evaluate(list(signature)) >= 0

    def test_negative_counters_certified(self, pde_cone):
        certificate = separating_constraint(
            pde_cone, {"load.causes_walk": -3, "load.pde$_miss": 0}
        )
        assert certificate is not None

    def test_haswell_model_certificate(self):
        """A certificate on the full 26-counter conservative model."""
        from repro.models import M_SERIES, build_model_cone, standard_dataset

        cone = build_model_cone(M_SERIES["m0"])
        observation = standard_dataset()[0].point()
        assert not point_feasibility(cone, observation, backend="scipy").feasible
        certificate = separating_constraint(cone, observation, backend="scipy")
        assert certificate is not None
        vector = cone.vector_from_observation(observation)
        assert certificate.evaluate(vector) < 0


# ---------------------------------------------------------------------------
# Property: certificate exists iff infeasible, and is always valid.
# ---------------------------------------------------------------------------

signatures_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=4,
)

points_strategy = st.lists(
    st.integers(min_value=0, max_value=5), min_size=3, max_size=3
)


@settings(max_examples=30, deadline=None)
@given(signatures_strategy, points_strategy)
def test_certificate_iff_infeasible(signatures, point):
    cone = ModelCone(["a", "b", "c"], signatures)
    feasible = point_feasibility(cone, point).feasible
    certificate = separating_constraint(cone, point)
    assert (certificate is None) == feasible
    if certificate is not None:
        assert certificate.evaluate([v for v in point]) < 0
        for signature in cone.signatures:
            assert certificate.evaluate(list(signature)) >= 0
