"""Equivalence tests: integer fast paths vs the Fraction reference.

The exact-geometry fast path (gcd-normalised int rows, Bareiss
elimination, bitset adjacency, facet screening) must be *bit-for-bit*
interchangeable with the Fraction/rank reference implementations — an
optimisation that changes any verdict is a bug, full stop. These tests
drive both paths over hundreds of seeded random instances (plus a few
hypothesis sweeps) and require identical results:

* ``rank`` / ``rref_fast`` / ``solve`` against the Fraction RREF,
* ``extreme_rays(adjacency="bitset")`` against
  ``extreme_rays(adjacency="algebraic")``,
* batched ``test_points_feasibility`` (facet screen + LP) against
  per-point ``test_point_feasibility``.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cone import ModelCone
from repro.cone import test_point_feasibility as point_feasibility
from repro.cone import test_points_feasibility as points_feasibility
from repro.errors import GeometryError, LinalgError
from repro.geometry import extreme_rays
from repro.linalg import (
    int_row,
    rank,
    rref,
    rref_fast,
    scale_to_integers,
    solve,
)

N_SEEDS = 200  # instances per equivalence sweep (acceptance floor)


# -- Fraction reference implementations (the pre-fast-path algorithms) ----

def reference_rank(matrix):
    return len(rref(matrix)[1])


def reference_solve(matrix, rhs):
    n = len(matrix)
    augmented = [list(row) + [value] for row, value in zip(matrix, rhs)]
    reduced, pivots = rref(augmented)
    if len(pivots) < n or any(col >= n for col in pivots):
        raise LinalgError("singular")
    return [reduced[i][n] for i in range(n)]


def random_matrix(rng, n_rows, n_cols, fractions=False):
    def entry():
        if fractions and rng.random() < 0.5:
            return Fraction(rng.randint(-6, 6), rng.randint(1, 5))
        return rng.randint(-4, 4)

    matrix = [[entry() for _ in range(n_cols)] for _ in range(n_rows)]
    if n_rows >= 2 and rng.random() < 0.3:
        # Inject a dependent row: duplicate or scaled copy.
        source = rng.randrange(n_rows)
        target = rng.randrange(n_rows)
        scale = rng.choice([1, 2, -1])
        matrix[target] = [scale * value for value in matrix[source]]
    return matrix


class TestIntegerKernelEquivalence:
    def test_rank_matches_rref_pivots(self):
        rng = random.Random(1234)
        for _ in range(N_SEEDS):
            matrix = random_matrix(
                rng, rng.randint(1, 6), rng.randint(1, 6), fractions=True
            )
            assert rank(matrix) == reference_rank(matrix)

    def test_rref_fast_matches_rref(self):
        rng = random.Random(2345)
        for _ in range(N_SEEDS):
            matrix = random_matrix(
                rng, rng.randint(1, 6), rng.randint(1, 6), fractions=True
            )
            assert rref_fast(matrix) == rref(matrix)

    def test_solve_matches_reference(self):
        rng = random.Random(3456)
        solved = 0
        trials = 0
        while solved < N_SEEDS and trials < 20 * N_SEEDS:
            trials += 1
            n = rng.randint(1, 5)
            matrix = random_matrix(rng, n, n, fractions=True)
            rhs = [rng.randint(-5, 5) for _ in range(n)]
            try:
                expected = reference_solve(matrix, rhs)
            except LinalgError:
                with pytest.raises(LinalgError):
                    solve(matrix, rhs)
                continue
            assert solve(matrix, rhs) == expected
            solved += 1
        assert solved >= N_SEEDS

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(min_value=-9, max_value=9), min_size=3, max_size=3),
            min_size=1,
            max_size=5,
        )
    )
    def test_rank_property(self, matrix):
        assert rank(matrix) == reference_rank(matrix)


def random_inequalities(rng, dim):
    n_rows = rng.randint(dim, dim + 4)
    rows = [[rng.randint(-3, 3) for _ in range(dim)] for _ in range(n_rows)]
    if rng.random() < 0.4:
        # Duplicate a row (degenerate active sets stress the tie path).
        rows.append(list(rows[rng.randrange(len(rows))]))
    return rows


def ray_set(rays):
    return {tuple(int_row(ray)) for ray in rays}


class TestBitsetAdjacencyEquivalence:
    def test_bitset_matches_algebraic_on_random_cones(self):
        rng = random.Random(97531)
        compared = 0
        trials = 0
        while compared < N_SEEDS and trials < 30 * N_SEEDS:
            trials += 1
            dim = rng.randint(2, 4)
            rows = random_inequalities(rng, dim)
            try:
                reference = extreme_rays(rows, adjacency="algebraic")
            except GeometryError:
                with pytest.raises(GeometryError):
                    extreme_rays(rows, adjacency="bitset")
                continue
            fast = extreme_rays(rows, adjacency="bitset")
            assert ray_set(fast) == ray_set(reference), rows
            compared += 1
        assert compared >= N_SEEDS

    def test_rays_satisfy_constraints_both_modes(self):
        rng = random.Random(86420)
        checked = 0
        trials = 0
        while checked < 50 and trials < 2000:
            trials += 1
            dim = rng.randint(2, 4)
            rows = random_inequalities(rng, dim)
            for mode in ("bitset", "algebraic"):
                try:
                    rays = extreme_rays(rows, adjacency=mode)
                except GeometryError:
                    break
                for ray in rays:
                    for row in rows:
                        assert sum(a * b for a, b in zip(row, ray)) >= 0
            else:
                checked += 1

    def test_unknown_adjacency_mode_rejected(self):
        with pytest.raises(GeometryError):
            extreme_rays([[1, 0], [0, 1]], adjacency="guess")


def random_model_cone(rng, max_counters=4, max_signatures=5):
    n = rng.randint(1, max_counters)
    count = rng.randint(1, max_signatures)
    signatures = [
        tuple(rng.randint(0, 3) for _ in range(n)) for _ in range(count)
    ]
    counters = ["c%d" % i for i in range(n)]
    return ModelCone(counters, signatures, name="random")


def random_points(rng, n, count=3):
    return [
        [rng.randint(-1, 6) for _ in range(n)] for _ in range(count)
    ]


class TestBatchedFeasibilityEquivalence:
    def test_screen_plus_lp_agrees_with_per_point(self):
        rng = random.Random(24680)
        for _ in range(N_SEEDS):
            cone = random_model_cone(rng)
            points = random_points(rng, len(cone.counters))
            expected = [
                point_feasibility(cone, point).feasible for point in points
            ]
            for screen in ("never", "always", "auto"):
                batched = points_feasibility(cone, points, screen=screen)
                assert [r.feasible for r in batched] == expected, (
                    cone.signatures,
                    points,
                    screen,
                )

    def test_screen_refutations_carry_certificates(self):
        rng = random.Random(13579)
        found_certificate = False
        for _ in range(N_SEEDS):
            cone = random_model_cone(rng)
            points = random_points(rng, len(cone.counters))
            for point, result in zip(
                points, points_feasibility(cone, points, screen="always")
            ):
                if result.certificate is None:
                    continue
                found_certificate = True
                # The certificate is an exact witness: the point really
                # violates this deduced model constraint, and the exact
                # LP agrees the point is infeasible.
                assert not result.feasible
                assert not result.certificate.is_satisfied_by(
                    [Fraction(value) for value in point]
                )
                assert not point_feasibility(cone, point).feasible
        assert found_certificate

    def test_auto_screen_only_after_deduction(self):
        cone = ModelCone(["a", "b"], [(1, 0), (1, 1)])
        assert not cone.has_deduced_constraints()
        results = points_feasibility(cone, [[1, 2]], screen="auto")
        assert not results[0].feasible
        assert results[0].certificate is None  # no deduction: LP verdict
        cone.constraints()
        assert cone.has_deduced_constraints()
        results = points_feasibility(cone, [[1, 2]], screen="auto")
        assert not results[0].feasible
        assert results[0].certificate is not None  # screened this time

    def test_scipy_backend_agrees_on_integer_points(self):
        rng = random.Random(112358)
        for _ in range(60):
            cone = random_model_cone(rng)
            points = random_points(rng, len(cone.counters))
            exact = [
                r.feasible for r in points_feasibility(cone, points)
            ]
            fast = [
                r.feasible
                for r in points_feasibility(cone, points, backend="scipy")
            ]
            assert fast == exact, (cone.signatures, points)


class TestFloatRoundTrip:
    """`Fraction(float)` must survive the integer kernel unchanged."""

    def test_scale_to_integers_binary_float_semantics(self):
        # 0.1 is 3602879701896397 / 2**55 in binary: scaling is exact
        # with respect to that value, not the decimal literal (which
        # would scale [0.1, 1] to [1, 10]).
        scaled = scale_to_integers([0.1, 1.0])
        assert scaled == [3602879701896397, 2 ** 55]
        assert Fraction(scaled[0], scaled[1]) == Fraction(0.1)

    def test_int_row_matches_fraction_arithmetic(self):
        values = [0.1, 0.25, -0.75]
        row = int_row(values)
        fractions = [Fraction(v) for v in values]
        lcm = 1
        for f in fractions:
            lcm = lcm * f.denominator // __import__("math").gcd(lcm, f.denominator)
        expected = [int(f * lcm) for f in fractions]
        common = 0
        for v in expected:
            common = __import__("math").gcd(common, abs(v))
        expected = [v // common for v in expected]
        assert list(row) == expected

    def test_solve_with_float_rhs_is_exact(self):
        # Solving with float inputs equals solving with their exact
        # Fraction values — no precision is lost in the int kernel.
        matrix = [[1, 1], [1, -1]]
        rhs_float = [0.1, 0.3]
        rhs_fraction = [Fraction(0.1), Fraction(0.3)]
        assert solve(matrix, rhs_float) == solve(matrix, rhs_fraction)
        x = solve(matrix, rhs_float)
        assert x[0] + x[1] == Fraction(0.1)
        assert x[0] - x[1] == Fraction(0.3)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_scale_round_trip_preserves_ratio(self, value):
        scaled = scale_to_integers([value, 1.0])
        if value == 0:
            assert scaled[0] == 0
            return
        # The scaled pair preserves the exact binary ratio value/1.
        assert Fraction(scaled[0], scaled[1]) == Fraction(value)
