"""repro.parallel: the pool orchestrator and its serial equivalence.

The contract under test everywhere: ``workers=N`` changes wall-clock,
never results. Every sharded entry point is compared cell-for-cell
against its serial counterpart, and the fallback paths (workers=1,
single cell, unpicklable work) are exercised explicitly.
"""

import pytest

from repro.errors import AnalysisError
from repro.models.bundled import bundled_model_names
from repro.parallel import (
    ParallelRunner,
    parallel_cross_refute,
    parallel_simulate_dataset,
    parallel_sweep,
    split_seeds,
)
from repro.parallel.tasks import _chunks
from repro.pipeline import CounterPoint
from repro.sim import as_mudd, closed_loop, simulate_dataset


def _square(x):
    return x * x


def _call(fn):
    return fn()


def _cell_n(cell):
    return cell["n"]


class TestRunner:
    def test_serial_map(self):
        runner = ParallelRunner(workers=1)
        assert runner.map_cells(_square, [1, 2, 3]) == [1, 4, 9]
        assert runner.serial
        assert runner.dispatches == 0

    def test_pool_map_preserves_order(self):
        runner = ParallelRunner(workers=2)
        assert runner.map_cells(_square, range(20)) == [i * i for i in range(20)]
        assert runner.dispatches == 1
        assert runner.fallbacks == 0

    def test_single_cell_stays_in_process(self):
        runner = ParallelRunner(workers=4)
        assert runner.map_cells(_square, [7]) == [49]
        assert runner.dispatches == 0

    def test_unpicklable_fn_falls_back_serially(self):
        runner = ParallelRunner(workers=2)
        doubler = lambda x: 2 * x  # noqa: E731 - deliberately unpicklable
        assert runner.map_cells(doubler, [1, 2, 3]) == [2, 4, 6]
        assert runner.fallbacks == 1
        assert runner.dispatches == 0

    def test_unpicklable_cell_falls_back_serially(self):
        runner = ParallelRunner(workers=2)
        cells = [lambda: 1, lambda: 2]
        assert runner.map_cells(_call, cells) == [1, 2]
        assert runner.fallbacks == 1

    def test_unpicklable_later_cell_falls_back_at_dispatch(self, tmp_path):
        # cells[0] passes the pre-flight check; the open file handle in
        # a later cell raises TypeError at pool dispatch, which must
        # degrade to the serial fallback, not escape.
        runner = ParallelRunner(workers=2)
        with open(tmp_path / "cell.txt", "w") as handle:
            cells = [{"n": 1, "handle": None}, {"n": 2, "handle": handle}]
            assert runner.map_cells(_cell_n, cells) == [1, 2]
        assert runner.fallbacks == 1

    def test_map_models_alias(self):
        runner = ParallelRunner(workers=1)
        assert runner.map_models(_square, [2, 3]) == [4, 9]

    def test_invalid_workers_rejected(self):
        with pytest.raises(AnalysisError):
            ParallelRunner(workers=0)
        with pytest.raises(AnalysisError):
            ParallelRunner(workers=2, chunk_size=0)
        with pytest.raises(AnalysisError):
            CounterPoint(workers=0)

    def test_exceptions_propagate(self):
        runner = ParallelRunner(workers=2)
        with pytest.raises(ZeroDivisionError):
            runner.map_cells(_reciprocal, [1, 0, 2])

    def test_chunking(self):
        assert _chunks([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert _chunks([1], 4) == [[1]]
        assert _chunks([], 3) == [[]]
        assert _chunks(range(6), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_split_seeds_matches_serial_schedules(self):
        assert split_seeds(5, 3) == [5, 6, 7]
        assert split_seeds(0, 3, stride=1000) == [0, 1000, 2000]
        with pytest.raises(AnalysisError):
            split_seeds(0, -1)


def _reciprocal(x):
    return 1 / x


@pytest.fixture(scope="module")
def bundled():
    return [as_mudd(name) for name in bundled_model_names()]


@pytest.fixture(scope="module")
def small_dataset(bundled):
    return simulate_dataset(bundled[0], 4, n_uops=3000)


class TestParallelEqualsSerial:
    def test_sweep(self, bundled, small_dataset):
        serial = CounterPoint(backend="scipy").sweep(bundled[1], small_dataset)
        pooled = CounterPoint(backend="scipy", workers=2).sweep(
            bundled[1], small_dataset
        )
        assert serial.infeasible_names == pooled.infeasible_names
        assert serial.n_observations == pooled.n_observations
        assert serial.model_name == pooled.model_name

    def test_sweep_regions(self, bundled, small_dataset):
        serial = CounterPoint(backend="scipy").sweep(
            bundled[1], small_dataset, use_regions=True
        )
        pooled = CounterPoint(backend="scipy", workers=2).sweep(
            bundled[1], small_dataset, use_regions=True
        )
        assert serial.infeasible_names == pooled.infeasible_names

    def test_simulate_dataset(self, bundled):
        serial = CounterPoint().simulate_dataset(bundled[0], 5, n_uops=2000)
        pooled = CounterPoint(workers=2).simulate_dataset(
            bundled[0], 5, n_uops=2000
        )
        assert [o.name for o in serial] == [o.name for o in pooled]
        assert [o.totals for o in serial] == [o.totals for o in pooled]

    def test_cross_refute(self, bundled):
        models = bundled[:3]
        serial = CounterPoint(backend="scipy").cross_refute(
            models, n_observations=2, n_uops=3000
        )
        pooled = CounterPoint(backend="scipy", workers=2).cross_refute(
            models, n_observations=2, n_uops=3000
        )
        assert set(serial) == set(pooled)
        for row in serial:
            for name in serial[row]:
                assert (
                    serial[row][name].infeasible_names
                    == pooled[row][name].infeasible_names
                )

    def test_cross_refute_diagonal_feasible(self, bundled):
        pooled = CounterPoint(backend="scipy", workers=2).cross_refute(
            bundled[:3], n_observations=2, n_uops=3000
        )
        for row, sweeps in pooled.items():
            assert sweeps[row].feasible

    def test_closed_loop(self, bundled, tmp_path):
        names = [m.name for m in bundled[:3]]
        serial = closed_loop(names[0], names, n_uops=3000)
        pooled = closed_loop(
            names[0], names, n_uops=3000, workers=2,
            cache_dir=str(tmp_path / "cones"),
        )
        assert {k: v.feasible for k, v in serial.items()} == {
            k: v.feasible for k, v in pooled.items()
        }

    def test_direct_entry_points(self, bundled, small_dataset):
        runner = ParallelRunner(workers=2)
        cone = CounterPoint(backend="scipy").model_cone(
            bundled[1], counters=small_dataset[0].samples.counters
        )
        sweep = parallel_sweep(runner, cone, small_dataset, backend="scipy")
        assert sweep.n_observations == len(small_dataset)

        matrix = parallel_cross_refute(
            runner, bundled[:2], n_observations=2, n_uops=2000, backend="scipy"
        )
        assert set(matrix) == {m.name for m in bundled[:2]}

        dataset = parallel_simulate_dataset(runner, bundled[0], 3, n_uops=2000)
        assert len(dataset) == 3


class TestFacadeWiring:
    def test_workers_none_means_cpu_count(self):
        counterpoint = CounterPoint(workers=None)
        assert counterpoint._parallel()
        assert counterpoint.runner().workers >= 1

    def test_cache_dir_requires_caching(self, tmp_path):
        with pytest.raises(AnalysisError):
            CounterPoint(cache=False, cache_dir=str(tmp_path))

    def test_cache_dir_rejects_explicit_cache_instance(self, tmp_path):
        # An explicit memory cache would silently shadow cache_dir; the
        # combination must be refused, not half-honoured.
        from repro.cone.cache import ModelConeCache

        with pytest.raises(AnalysisError):
            CounterPoint(cache=ModelConeCache(), cache_dir=str(tmp_path))

    def test_cache_dir_uses_shared_disk_cache(self, tmp_path):
        from repro.cone.cache import shared_cache

        path = str(tmp_path / "cones")
        counterpoint = CounterPoint(cache_dir=path)
        assert counterpoint.cone_cache is shared_cache(path)
        assert counterpoint.cone_cache.disk is not None

    def test_runner_carries_cache_dir(self, tmp_path):
        path = str(tmp_path / "cones")
        counterpoint = CounterPoint(workers=2, cache_dir=path)
        assert counterpoint.runner().cache_dir == path


class TestParallelGuidedSearch:
    def test_search_matches_serial(self):
        from repro.explore import GuidedSearch
        from repro.models import FEATURES, build_model_cone, standard_dataset

        observations = standard_dataset()[:6]
        features = sorted(FEATURES)[:4]
        serial = GuidedSearch(build_model_cone, observations, features).run()
        pooled = GuidedSearch(
            build_model_cone,
            observations,
            features,
            runner=ParallelRunner(workers=2),
        ).run()
        assert serial.candidate == pooled.candidate
        assert {
            f: e.n_infeasible for f, e in serial.evaluations.items()
        } == {f: e.n_infeasible for f, e in pooled.evaluations.items()}

    def test_unpicklable_builder_falls_back(self):
        from repro.explore import GuidedSearch
        from repro.models import FEATURES, build_model_cone, standard_dataset

        observations = standard_dataset()[:4]
        features = sorted(FEATURES)[:3]
        runner = ParallelRunner(workers=2)
        builder = lambda fs: build_model_cone(fs)  # noqa: E731
        search = GuidedSearch(
            builder, observations, features, runner=runner
        )
        search.evaluate_many([frozenset({f}) for f in features])
        assert runner.fallbacks >= 1
        reference = GuidedSearch(build_model_cone, observations, features)
        for feature in features:
            assert (
                search.evaluate({feature}).n_infeasible
                == reference.evaluate({feature}).n_infeasible
            )
