"""Unit and property tests for exact rational linear algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinalgError
from repro.linalg import (
    as_fraction_matrix,
    as_fraction_vector,
    dot,
    identity,
    is_zero_vector,
    matmul,
    matvec,
    normalize_integer_vector,
    nullspace,
    rank,
    row_space_basis,
    rref,
    scale_to_integers,
    solve,
    transpose,
    vector_sub,
)


class TestConversions:
    def test_vector_from_ints(self):
        assert as_fraction_vector([1, 2]) == [Fraction(1), Fraction(2)]

    def test_vector_from_floats_is_exact(self):
        vec = as_fraction_vector([0.5])
        assert vec == [Fraction(1, 2)]

    def test_matrix_rejects_ragged_rows(self):
        with pytest.raises(LinalgError):
            as_fraction_matrix([[1, 2], [3]])

    def test_empty_matrix(self):
        assert as_fraction_matrix([]) == []


class TestBasicOps:
    def test_identity(self):
        eye = identity(3)
        assert eye[0] == [1, 0, 0]
        assert eye[2][2] == 1

    def test_transpose_roundtrip(self):
        m = as_fraction_matrix([[1, 2, 3], [4, 5, 6]])
        assert transpose(transpose(m)) == m

    def test_transpose_empty(self):
        assert transpose([]) == []

    def test_dot(self):
        assert dot(as_fraction_vector([1, 2]), as_fraction_vector([3, 4])) == 11

    def test_dot_length_mismatch(self):
        with pytest.raises(LinalgError):
            dot([Fraction(1)], [Fraction(1), Fraction(2)])

    def test_vector_sub(self):
        assert vector_sub(as_fraction_vector([3, 5]), as_fraction_vector([1, 2])) == [2, 3]

    def test_matvec(self):
        m = as_fraction_matrix([[1, 0], [0, 2]])
        assert matvec(m, as_fraction_vector([3, 4])) == [3, 8]

    def test_matmul_identity(self):
        m = as_fraction_matrix([[1, 2], [3, 4]])
        assert matmul(m, identity(2)) == m

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(LinalgError):
            matmul([[Fraction(1), Fraction(2)]], [[Fraction(1)]] * 3)

    def test_is_zero_vector(self):
        assert is_zero_vector([Fraction(0), Fraction(0)])
        assert not is_zero_vector([Fraction(0), Fraction(1)])


class TestRref:
    def test_already_reduced(self):
        m = as_fraction_matrix([[1, 0], [0, 1]])
        reduced, pivots = rref(m)
        assert reduced == m
        assert pivots == [0, 1]

    def test_requires_row_swap(self):
        m = as_fraction_matrix([[0, 1], [1, 0]])
        reduced, pivots = rref(m)
        assert reduced == [[1, 0], [0, 1]]
        assert pivots == [0, 1]

    def test_rank_deficient(self):
        m = as_fraction_matrix([[1, 2], [2, 4]])
        reduced, pivots = rref(m)
        assert pivots == [0]
        assert reduced[1] == [0, 0]

    def test_rational_pivots(self):
        m = as_fraction_matrix([[2, 4], [1, 3]])
        reduced, _ = rref(m)
        assert reduced == [[1, 0], [0, 1]]

    def test_empty(self):
        assert rref([]) == ([], [])


class TestRankNullspace:
    def test_rank_full(self):
        assert rank([[1, 0], [0, 1]]) == 2

    def test_rank_deficient(self):
        assert rank([[1, 2], [2, 4], [3, 6]]) == 1

    def test_nullspace_orthogonal_to_rows(self):
        m = as_fraction_matrix([[1, 2, 3], [0, 1, 1]])
        for vec in nullspace(m):
            assert is_zero_vector(matvec(m, vec))

    def test_nullspace_dimension(self):
        m = as_fraction_matrix([[1, 2, 3], [0, 1, 1]])
        assert len(nullspace(m)) == 1

    def test_nullspace_full_rank_square(self):
        assert nullspace([[1, 0], [0, 1]]) == []

    def test_row_space_basis_canonical(self):
        basis_a = row_space_basis([[1, 2], [3, 6]])
        basis_b = row_space_basis([[2, 4]])
        assert basis_a == basis_b


class TestSolve:
    def test_simple_system(self):
        x = solve([[2, 0], [0, 4]], [4, 8])
        assert x == [2, 2]

    def test_exact_rational_answer(self):
        x = solve([[3]], [1])
        assert x == [Fraction(1, 3)]

    def test_singular_raises(self):
        with pytest.raises(LinalgError):
            solve([[1, 1], [1, 1]], [1, 2])

    def test_nonsquare_raises(self):
        with pytest.raises(LinalgError):
            solve([[1, 2]], [1])

    def test_rhs_mismatch_raises(self):
        with pytest.raises(LinalgError):
            solve([[1, 0], [0, 1]], [1])

    def test_empty_system(self):
        assert solve([], []) == []


class TestNormalization:
    def test_scale_to_integers(self):
        assert scale_to_integers([Fraction(1, 2), Fraction(1, 3)]) == [3, 2]

    def test_scale_preserves_sign(self):
        assert scale_to_integers([Fraction(-1, 2), Fraction(1, 4)]) == [-2, 1]

    def test_scale_zero_vector(self):
        assert scale_to_integers([Fraction(0), Fraction(0)]) == [0, 0]

    def test_normalize_flips_sign(self):
        assert normalize_integer_vector([Fraction(-2), Fraction(4)]) == [1, -2]

    def test_normalize_coprime(self):
        assert normalize_integer_vector([6, 9]) == [2, 3]


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

small_fractions = st.builds(
    Fraction,
    st.integers(min_value=-6, max_value=6),
    st.integers(min_value=1, max_value=4),
)


def matrices(max_rows=4, max_cols=4):
    return st.integers(min_value=1, max_value=max_rows).flatmap(
        lambda r: st.integers(min_value=1, max_value=max_cols).flatmap(
            lambda c: st.lists(
                st.lists(small_fractions, min_size=c, max_size=c),
                min_size=r,
                max_size=r,
            )
        )
    )


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_rref_is_idempotent(matrix):
    reduced, _ = rref(matrix)
    again, _ = rref(reduced)
    assert again == reduced


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_rank_bounded_by_shape(matrix):
    r = rank(matrix)
    assert 0 <= r <= min(len(matrix), len(matrix[0]))


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_rank_nullity_theorem(matrix):
    n_cols = len(matrix[0])
    assert rank(matrix) + len(nullspace(matrix)) == n_cols


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_nullspace_vectors_annihilated(matrix):
    m = as_fraction_matrix(matrix)
    for vec in nullspace(m):
        assert is_zero_vector(matvec(m, vec))


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_transpose_preserves_rank(matrix):
    assert rank(matrix) == rank(transpose(as_fraction_matrix(matrix)))


@settings(max_examples=60, deadline=None)
@given(st.lists(small_fractions, min_size=1, max_size=6))
def test_normalize_integer_vector_is_canonical(vector):
    normalized = normalize_integer_vector(vector)
    assert normalize_integer_vector(normalized) == normalized
    # Scaling the input by a nonzero rational gives the same canonical form.
    scaled = [Fraction(-3, 2) * v for v in vector]
    assert normalize_integer_vector(scaled) == normalized
